//! Integration-test umbrella for the FNC-2 reproduction workspace.
//!
//! The library target is intentionally empty: the content of this package
//! is the workspace-spanning integration tests in `tests/` and the
//! runnable examples in `examples/`.
