//! Whole-system property test: random synthetic grammars (random sizes,
//! attribute profiles, seeds and class gadgets) must classify, generate,
//! and evaluate identically under the deterministic, demand-driven, and
//! space-optimized evaluators — on random trees.

use fnc2::visit::{DynamicEvaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_corpus::{synthetic, synthetic_tree, SynthProfile, TargetClass};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = SynthProfile> {
    (
        3usize..18,
        0usize..3,
        0usize..4,
        0u64..10_000,
    )
        .prop_map(|(phyla, attr_pairs, class, seed)| SynthProfile {
            name: "prop",
            phyla,
            attr_pairs,
            class: match class {
                0 => TargetClass::Oag0,
                1 => TargetClass::Oag1,
                2 => TargetClass::Dnc,
                _ => TargetClass::SncOnly,
            },
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evaluators_agree_on_random_grammars(
        profile in profile_strategy(),
        tree_target in 30usize..240,
        tree_seed in 0u64..1_000,
    ) {
        let grammar = synthetic(&profile);
        let compiled = Pipeline::new()
            .compile(grammar)
            .expect("synthetic grammars are SNC");
        let tree = synthetic_tree(&compiled.grammar, &profile, tree_target, tree_seed);
        let g = &compiled.grammar;

        let (plain, stats) = compiled.evaluate(&tree, &RootInputs::new()).expect("plain");
        prop_assert!(stats.evals > 0);
        let (demand, _) = DynamicEvaluator::new(g)
            .evaluate(&tree, &RootInputs::new())
            .expect("demand");
        let opt = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .expect("optimized");

        // Every instance agrees between plain and demand-driven.
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                prop_assert_eq!(
                    plain.get(g, n, attr),
                    demand.get(g, n, attr),
                    "node {:?} attr {} (profile {:?})",
                    n,
                    g.attr(attr).name(),
                    profile
                );
            }
        }
        // The optimized evaluator agrees on everything it keeps at nodes —
        // including the root outputs (always node-resident).
        let root_ph = g.root();
        for attr in g.synthesized(root_ph) {
            prop_assert_eq!(
                plain.get(g, tree.root(), attr),
                opt.node_values.get(g, tree.root(), attr),
                "root attr {} (profile {:?})",
                g.attr(attr).name(),
                profile
            );
        }
        // Storage accounting: final node-resident cells never exceed tree
        // storage; the high-water mark never exceeds total instances.
        prop_assert!(opt.stats.final_node_cells <= plain.live_count());
        prop_assert!(opt.stats.max_live_cells <= plain.live_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn long_inclusion_dominates_equality_on_random_grammars(
        profile in profile_strategy(),
    ) {
        use fnc2::analysis::{snc_test, snc_to_l_ordered, Inclusion};
        let grammar = synthetic(&profile);
        let snc = snc_test(&grammar);
        prop_assert!(snc.is_snc());
        let long = snc_to_l_ordered(&grammar, &snc, Inclusion::Long).expect("transforms");
        let eq = snc_to_l_ordered(&grammar, &snc, Inclusion::Equality).expect("transforms");
        prop_assert!(
            long.stats.partitions_per_phylum.iter().sum::<usize>()
                <= eq.stats.partitions_per_phylum.iter().sum::<usize>()
        );
        prop_assert!(long.stats.plans <= eq.stats.plans);
        // Both views produce complete partitions on every phylum.
        for ph in grammar.phyla() {
            for t in long.partitions_of(ph) {
                prop_assert!(t.is_complete(&grammar));
            }
        }
    }
}
