//! Whole-system property test: random synthetic grammars (random sizes,
//! attribute profiles, seeds and class gadgets) must classify, generate,
//! and evaluate identically under the deterministic, demand-driven, and
//! space-optimized evaluators — on random trees. Cases are drawn with the
//! in-repo seeded generator, so every run covers the same inputs.

use fnc2::visit::{DynamicEvaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_corpus::rng::Rng;
use fnc2_corpus::{synthetic, synthetic_tree, SynthProfile, TargetClass};

fn random_profile(rng: &mut Rng) -> SynthProfile {
    SynthProfile {
        name: "prop",
        phyla: rng.gen_usize(3, 17),
        attr_pairs: rng.gen_usize(0, 2),
        class: match rng.gen_usize(0, 3) {
            0 => TargetClass::Oag0,
            1 => TargetClass::Oag1,
            2 => TargetClass::Dnc,
            _ => TargetClass::SncOnly,
        },
        seed: rng.gen_range(0, 9_999) as u64,
    }
}

#[test]
fn evaluators_agree_on_random_grammars() {
    let mut rng = Rng::seed_from_u64(0x5e_ed);
    for _ in 0..24 {
        let profile = random_profile(&mut rng);
        let tree_target = rng.gen_usize(30, 239);
        let tree_seed = rng.gen_range(0, 999) as u64;

        let grammar = synthetic(&profile);
        let compiled = Pipeline::new()
            .compile(grammar)
            .expect("synthetic grammars are SNC");
        let tree = synthetic_tree(&compiled.grammar, &profile, tree_target, tree_seed);
        let g = &compiled.grammar;

        let (plain, stats) = compiled.evaluate(&tree, &RootInputs::new()).expect("plain");
        assert!(stats.evals > 0);
        let (demand, _) = DynamicEvaluator::new(g)
            .evaluate(&tree, &RootInputs::new())
            .expect("demand");
        let opt = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .expect("optimized");

        // Every instance agrees between plain and demand-driven.
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                assert_eq!(
                    plain.get(g, n, attr),
                    demand.get(g, n, attr),
                    "node {:?} attr {} (profile {:?})",
                    n,
                    g.attr(attr).name(),
                    profile
                );
            }
        }
        // The optimized evaluator agrees on everything it keeps at nodes —
        // including the root outputs (always node-resident).
        let root_ph = g.root();
        for attr in g.synthesized(root_ph) {
            assert_eq!(
                plain.get(g, tree.root(), attr),
                opt.node_values.get(g, tree.root(), attr),
                "root attr {} (profile {:?})",
                g.attr(attr).name(),
                profile
            );
        }
        // Storage accounting: final node-resident cells never exceed tree
        // storage; the high-water mark never exceeds total instances.
        assert!(opt.stats.final_node_cells <= plain.live_count());
        assert!(opt.stats.max_live_cells <= plain.live_count());
    }
}

#[test]
fn long_inclusion_dominates_equality_on_random_grammars() {
    use fnc2::analysis::{snc_test, snc_to_l_ordered, Inclusion};
    let mut rng = Rng::seed_from_u64(0x10_c4);
    for _ in 0..24 {
        let profile = random_profile(&mut rng);
        let grammar = synthetic(&profile);
        let snc = snc_test(&grammar);
        assert!(snc.is_snc());
        let long = snc_to_l_ordered(&grammar, &snc, Inclusion::Long).expect("transforms");
        let eq = snc_to_l_ordered(&grammar, &snc, Inclusion::Equality).expect("transforms");
        assert!(
            long.stats.partitions_per_phylum.iter().sum::<usize>()
                <= eq.stats.partitions_per_phylum.iter().sum::<usize>()
        );
        assert!(long.stats.plans <= eq.stats.plans);
        // Both views produce complete partitions on every phylum.
        for ph in grammar.phyla() {
            for t in long.partitions_of(ph) {
                assert!(t.is_complete(&grammar));
            }
        }
    }
}
