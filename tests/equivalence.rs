//! Seeded equivalence of the four evaluators.
//!
//! The reproduction's central internal invariant: for any tree of any
//! corpus grammar, the deterministic visit-sequence evaluator, the
//! demand-driven evaluator, the space-optimized evaluator, and the
//! incremental evaluator (after arbitrary edits) compute the same
//! attribute values. Inputs are drawn from the in-repo deterministic
//! generator (`fnc2_corpus::rng`), so every run covers the same cases.

use fnc2::ag::{Grammar, NodeId, Tree, TreeBuilder, Value};
use fnc2::incremental::{Equality, IncrementalEvaluator};
use fnc2::visit::{DynamicEvaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_corpus::rng::Rng;

/// Generates a random bit-string for the binary grammar.
fn random_bits(rng: &mut Rng) -> String {
    let int_len = rng.gen_usize(1, 23);
    let mut s: String = (0..int_len)
        .map(|_| if rng.gen_bool(0.5) { '1' } else { '0' })
        .collect();
    if rng.gen_bool(0.5) {
        s.push('.');
        let frac_len = rng.gen_usize(1, 11);
        s.extend((0..frac_len).map(|_| if rng.gen_bool(0.5) { '1' } else { '0' }));
    }
    s
}

#[test]
fn binary_evaluators_agree() {
    let compiled = Pipeline::new().compile(fnc2_corpus::binary()).unwrap();
    let g = &compiled.grammar;
    let mut rng = Rng::seed_from_u64(0xb17);
    for _ in 0..64 {
        let bits = random_bits(&mut rng);
        let tree = fnc2_corpus::binary_tree(g, &bits);
        let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
        let (b, _) = DynamicEvaluator::new(g)
            .evaluate(&tree, &RootInputs::new())
            .unwrap();
        let c = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .unwrap();
        let number = g.phylum_by_name("Number").unwrap();
        for attr in g.phylum(number).attrs() {
            assert_eq!(
                a.get(g, tree.root(), *attr),
                b.get(g, tree.root(), *attr),
                "bits {bits}"
            );
            assert_eq!(
                a.get(g, tree.root(), *attr),
                c.node_values.get(g, tree.root(), *attr),
                "bits {bits}"
            );
        }
        // Exhaustive evaluation decorates every instance identically.
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for attr in g.phylum(ph).attrs() {
                assert_eq!(a.get(g, n, *attr), b.get(g, n, *attr), "bits {bits}");
            }
        }
    }
}

/// A random item-spec for the blocks grammar.
fn random_blocks_spec(rng: &mut Rng) -> String {
    let n = rng.gen_usize(0, 11);
    let items: Vec<String> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.5) {
                format!("d:v{}", rng.gen_usize(0, 3))
            } else {
                format!("u:v{}", rng.gen_usize(0, 5))
            }
        })
        .collect();
    items.join(" ")
}

#[test]
fn blocks_evaluators_agree() {
    let compiled = Pipeline::new().compile(fnc2_corpus::blocks()).unwrap();
    let g = &compiled.grammar;
    let mut rng = Rng::seed_from_u64(0xb10c);
    for _ in 0..48 {
        let outer = random_blocks_spec(&mut rng);
        let inner = random_blocks_spec(&mut rng);
        let spec = format!("{outer} [ {inner} ]");
        let tree = fnc2_corpus::blocks_tree(g, &spec);
        let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
        let (b, _) = DynamicEvaluator::new(g)
            .evaluate(&tree, &RootInputs::new())
            .unwrap();
        let c = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .unwrap();
        let prog = g.phylum_by_name("Prog").unwrap();
        let errors = g.attr_by_name(prog, "errors").unwrap();
        assert_eq!(
            a.get(g, tree.root(), errors),
            b.get(g, tree.root(), errors),
            "spec {spec}"
        );
        assert_eq!(
            a.get(g, tree.root(), errors),
            c.node_values.get(g, tree.root(), errors),
            "spec {spec}"
        );
    }
}

// ---------------------------------------------------------------------------
// Mini-Pascal: a full front-end grammar through all three evaluators
// ---------------------------------------------------------------------------

#[test]
fn minipascal_evaluators_agree() {
    let compiled = Pipeline::new()
        .compile(fnc2_corpus::minipascal().0)
        .unwrap();
    let g = &compiled.grammar;
    for blocks in [0, 1, 3, 6] {
        let src = fnc2_corpus::sample_program(blocks);
        let tree = fnc2_corpus::parse_minipascal(g, &src).unwrap();
        let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
        let (b, _) = DynamicEvaluator::new(g)
            .evaluate(&tree, &RootInputs::new())
            .unwrap();
        let c = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .unwrap();
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for attr in g.phylum(ph).attrs() {
                assert_eq!(a.get(g, n, *attr), b.get(g, n, *attr), "blocks {blocks}");
                // The space plan keeps node storage only where needed, so
                // compare wherever the optimized run materialized a value.
                if let Some(v) = c.node_values.get(g, n, *attr) {
                    assert_eq!(a.get(g, n, *attr), Some(v), "blocks {blocks}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pathological corpus grammars (AG 4/5/7 shapes): multi-partition phyla
// and OAG(k) repairs must not change any value
// ---------------------------------------------------------------------------

fn pathological_tree(g: &Grammar, root_prod: &str, leaf_prod: &str, leaves: usize) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let kids: Vec<NodeId> = (0..leaves)
        .map(|_| tb.op(leaf_prod, &[]).unwrap())
        .collect();
    let root = tb.op(root_prod, &kids).unwrap();
    tb.finish_root(root).unwrap()
}

#[test]
fn pathological_evaluators_agree() {
    let cases = [
        (fnc2_corpus::snc_only(), "ctx_a", "leafx", 1),
        (fnc2_corpus::snc_only(), "ctx_b", "leafx", 1),
        (fnc2_corpus::oag1_not_oag0(), "cross", "leafx", 2),
        (fnc2_corpus::dnc_not_oag(3), "cross0", "leaf0", 2),
        (fnc2_corpus::dnc_not_oag(3), "cross2", "leaf2", 2),
    ];
    for (grammar, root_prod, leaf_prod, leaves) in cases {
        let name = format!("{}/{root_prod}", grammar.name());
        let compiled = Pipeline::new().compile(grammar).unwrap();
        let g = &compiled.grammar;
        let tree = pathological_tree(g, root_prod, leaf_prod, leaves);
        let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
        let (b, _) = DynamicEvaluator::new(g)
            .evaluate(&tree, &RootInputs::new())
            .unwrap();
        let c = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .unwrap();
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for attr in g.phylum(ph).attrs() {
                assert_eq!(a.get(g, n, *attr), b.get(g, n, *attr), "{name}");
                if let Some(v) = c.node_values.get(g, n, *attr) {
                    assert_eq!(a.get(g, n, *attr), Some(v), "{name}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generated grammars with incremental edit scripts: the fuzzing oracle run
// as a deterministic regression (all four evaluators + space-plan
// re-validation per case)
// ---------------------------------------------------------------------------

#[test]
fn generated_grammars_with_edit_scripts_agree() {
    use fnc2::fuzz::{render_reproducer, run_case, CaseParams};
    for case in 0..12 {
        let mut p = CaseParams::for_case(0x9e4e, case);
        p.edits = p.edits.max(2);
        if let Err(d) = run_case(&p) {
            panic!(
                "case {case} diverged at `{}`: {}\n{}",
                d.stage,
                d.detail,
                render_reproducer(&d)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Work-stealing batch driver vs. the sequential exhaustive evaluator, over
// fuzz-generated grammars at 1, 2, 4 and 8 threads
// ---------------------------------------------------------------------------

#[test]
fn batch_driver_is_deterministic_across_thread_counts() {
    use fnc2::analysis::{classify, Inclusion};
    use fnc2::fuzz::{build_tree, gen::build_grammar, CaseParams};
    use fnc2::visit::{build_visit_seqs, Evaluator};

    for case in 0..6 {
        let params = CaseParams::for_case(0xba7c4, case);
        let gg = build_grammar(&params);
        let g = &gg.grammar;
        let cls = classify(g, 2, Inclusion::Long).expect("generated grammar transforms");
        let lo = cls.l_ordered.as_ref().expect("generated grammar is SNC");
        let seqs = build_visit_seqs(g, lo);
        let ev = Evaluator::new(g, &seqs);

        // A batch of distinct trees of the same grammar.
        let trees: Vec<Tree> = (0..23)
            .map(|t| {
                let tp = CaseParams {
                    seed: params
                        .seed
                        .wrapping_add(u64::wrapping_mul(t, 0x9e37_79b9_7f4a_7c15)),
                    ..params
                };
                build_tree(&gg, &tp)
            })
            .collect();
        let inputs = RootInputs::new();

        // Sequential reference: evaluate() in a plain loop.
        let reference: Vec<_> = trees
            .iter()
            .map(|t| ev.evaluate(t, &inputs).expect("sequential evaluation"))
            .collect();

        for threads in [1usize, 2, 4, 8] {
            let (results, stats) = fnc2::par::batch_evaluate(&ev, &trees, &inputs, threads);
            assert_eq!(stats.trees, trees.len() as u64, "case {case}");
            for (i, r) in results.iter().enumerate() {
                let (vals, estats) = r.as_ref().expect("batch evaluation");
                let (ref_vals, ref_stats) = &reference[i];
                assert_eq!(
                    estats, ref_stats,
                    "case {case} tree {i} at {threads} threads: stats diverge"
                );
                for (n, _) in trees[i].preorder() {
                    let ph = trees[i].phylum(g, n);
                    for &attr in g.phylum(ph).attrs() {
                        assert_eq!(
                            vals.get(g, n, attr),
                            ref_vals.get(g, n, attr),
                            "case {case} tree {i} at {threads} threads: node {n:?} attr {} diverges",
                            g.attr(attr).name()
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hash-consed evaluation vs. plain, across batch thread counts: interning
// (local per-worker tables or one shared sharded table) must be invisible
// in every value and every stats block
// ---------------------------------------------------------------------------

#[test]
fn interned_batch_matches_plain_across_thread_counts() {
    use std::sync::Arc;

    use fnc2::ag::SharedInterner;
    use fnc2::par::batch_evaluate;
    use fnc2::visit::Evaluator;

    let mut rng = Rng::seed_from_u64(0x1e7a);
    for corpus in ["binary", "blocks"] {
        let (compiled, trees): (_, Vec<Tree>) = match corpus {
            "binary" => {
                let compiled = Pipeline::new().compile(fnc2_corpus::binary()).unwrap();
                let trees = (0..24)
                    .map(|_| fnc2_corpus::binary_tree(&compiled.grammar, &random_bits(&mut rng)))
                    .collect();
                (compiled, trees)
            }
            _ => {
                let compiled = Pipeline::new().compile(fnc2_corpus::blocks()).unwrap();
                let trees = (0..24)
                    .map(|_| {
                        let spec = format!(
                            "{} [ {} ]",
                            random_blocks_spec(&mut rng),
                            random_blocks_spec(&mut rng)
                        );
                        fnc2_corpus::blocks_tree(&compiled.grammar, &spec)
                    })
                    .collect();
                (compiled, trees)
            }
        };
        let g = &compiled.grammar;
        let inputs = RootInputs::new();

        // Plain sequential reference: no interner anywhere.
        let plain = Evaluator::new(g, &compiled.seqs);
        let reference: Vec<_> = trees
            .iter()
            .map(|t| plain.evaluate(t, &inputs).expect("plain evaluation"))
            .collect();

        let local = Evaluator::new(g, &compiled.seqs).with_interning(true);
        let shared = Evaluator::new(g, &compiled.seqs)
            .with_shared_interner(Arc::new(SharedInterner::new(8)));
        for (backend, ev) in [("local", &local), ("shared", &shared)] {
            for threads in [1usize, 2, 4, 8] {
                let (results, _) = batch_evaluate(ev, &trees, &inputs, threads);
                for (i, r) in results.iter().enumerate() {
                    let (vals, stats) = r.as_ref().expect("interned batch evaluation");
                    let (ref_vals, ref_stats) = &reference[i];
                    assert_eq!(
                        stats, ref_stats,
                        "{corpus}/{backend} tree {i} at {threads} threads: stats diverge"
                    );
                    for (n, _) in trees[i].preorder() {
                        let ph = trees[i].phylum(g, n);
                        for &attr in g.phylum(ph).attrs() {
                            assert_eq!(
                                vals.get(g, n, attr),
                                ref_vals.get(g, n, attr),
                                "{corpus}/{backend} tree {i} at {threads} threads: \
                                 node {n:?} attr {} diverges",
                                g.attr(attr).name()
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental vs. from-scratch under random edit sequences
// ---------------------------------------------------------------------------

fn sum_grammar() -> Grammar {
    use fnc2::ag::{GrammarBuilder, Occ};
    let mut g = GrammarBuilder::new("sum");
    let s = g.phylum("S");
    let e = g.phylum("E");
    let total = g.syn(s, "total");
    let depth = g.inh(e, "depth");
    let sum = g.syn(e, "sum");
    g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
    g.func("addd", 3, |v| {
        Value::Int(v[0].as_int() + v[1].as_int() + v[2].as_int())
    });
    let root = g.production("root", s, &[e]);
    g.copy(root, Occ::lhs(total), Occ::new(1, sum));
    g.constant(root, Occ::new(1, depth), Value::Int(0));
    let fork = g.production("fork", e, &[e, e]);
    g.call(fork, Occ::new(1, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(fork, Occ::new(2, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(
        fork,
        Occ::lhs(sum),
        "addd",
        [
            Occ::new(1, sum).into(),
            Occ::new(2, sum).into(),
            Occ::lhs(depth).into(),
        ],
    );
    let leaf = g.production("leafe", e, &[]);
    g.copy(leaf, Occ::lhs(sum), fnc2::ag::Arg::Token);
    g.finish().unwrap()
}

/// Builds a tree from a shape term: leaves carry the next value.
fn build_shape(g: &Grammar, tb: &mut TreeBuilder, shape: &ShapeTree, next: &mut i64) -> NodeId {
    match shape {
        ShapeTree::Leaf => {
            *next += 1;
            tb.node_with_token(
                g.production_by_name("leafe").unwrap(),
                &[],
                Some(Value::Int(*next * 3 % 17)),
            )
            .unwrap()
        }
        ShapeTree::Fork(a, b) => {
            let x = build_shape(g, tb, a, next);
            let y = build_shape(g, tb, b, next);
            tb.op("fork", &[x, y]).unwrap()
        }
    }
}

#[derive(Clone, Debug)]
enum ShapeTree {
    Leaf,
    Fork(Box<ShapeTree>, Box<ShapeTree>),
}

/// A random shape of bounded depth, forking with decreasing probability.
fn random_shape(rng: &mut Rng, depth: usize) -> ShapeTree {
    if depth == 0 || rng.gen_bool(0.4) {
        ShapeTree::Leaf
    } else {
        ShapeTree::Fork(
            Box::new(random_shape(rng, depth - 1)),
            Box::new(random_shape(rng, depth - 1)),
        )
    }
}

fn tree_of(g: &Grammar, shape: &ShapeTree) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let mut next = 0;
    let body = build_shape(g, &mut tb, shape, &mut next);
    let root = tb.op("root", &[body]).unwrap();
    tb.finish_root(root).unwrap()
}

#[test]
fn incremental_matches_from_scratch() {
    let g = sum_grammar();
    let mut rng = Rng::seed_from_u64(0x1c);
    for _ in 0..32 {
        let base = random_shape(&mut rng, 5);
        let tree = tree_of(&g, &base);
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();

        let n_edits = rng.gen_usize(1, 3);
        for _ in 0..n_edits {
            let shape = random_shape(&mut rng, 5);
            let pick = rng.gen_usize(0, 999);
            // Pick a node deriving E (any non-root node).
            let candidates: Vec<NodeId> = inc
                .tree()
                .preorder()
                .map(|(n, _)| n)
                .filter(|&n| inc.tree().node(n).parent().is_some())
                .collect();
            let at = candidates[pick % candidates.len()];
            let mut tb = TreeBuilder::new(&g);
            let mut next = 100;
            let sub_root = build_shape(&g, &mut tb, &shape, &mut next);
            let sub = tb.finish(sub_root);
            inc.replace_subtree(at, &sub).unwrap();

            // From-scratch on the edited tree must agree everywhere live.
            let (want, _) = DynamicEvaluator::new(&g)
                .evaluate(inc.tree(), &RootInputs::new())
                .unwrap();
            for (n, _) in inc.tree().preorder() {
                let ph = inc.tree().phylum(&g, n);
                for attr in g.phylum(ph).attrs() {
                    assert_eq!(
                        inc.value(n, *attr),
                        want.get(&g, n, *attr),
                        "node {:?} attr {}",
                        n,
                        g.attr(*attr).name()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pathological shapes under default budgets: 100k-deep chains, 10k-child
// flat nodes, and value-ballooning concat spines must evaluate (or be
// stopped by a budget) without any evaluator blowing the call stack
// ---------------------------------------------------------------------------

#[test]
fn deep_chain_evaluates_under_all_four_evaluators() {
    const LINKS: usize = 100_000;
    let compiled = Pipeline::new().compile(fnc2_corpus::chain()).unwrap();
    let g = &compiled.grammar;
    let tree = fnc2_corpus::chain_tree(g, LINKS);
    let want = Value::Int(fnc2_corpus::chain_expected(LINKS));
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();

    let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
    assert_eq!(a.get(g, tree.root(), out), Some(&want), "exhaustive");

    let (b, _) = DynamicEvaluator::new(g)
        .evaluate(&tree, &RootInputs::new())
        .unwrap();
    assert_eq!(b.get(g, tree.root(), out), Some(&want), "dynamic");

    let c = compiled
        .evaluate_optimized(&tree, &RootInputs::new())
        .unwrap();
    assert_eq!(
        c.node_values.get(g, tree.root(), out),
        Some(&want),
        "space-optimized"
    );

    let inc = IncrementalEvaluator::new(g, fnc2_corpus::chain_tree(g, LINKS), Equality::default())
        .unwrap();
    assert_eq!(
        inc.value(inc.tree().root(), out),
        Some(&want),
        "incremental"
    );
}

#[test]
fn wide_flat_tree_evaluates_under_all_four_evaluators() {
    const WIDTH: usize = 10_000;
    let compiled = Pipeline::new().compile(fnc2_corpus::flat(WIDTH)).unwrap();
    let g = &compiled.grammar;
    let tree = fnc2_corpus::flat_tree(g);
    let want = Value::Int(fnc2_corpus::flat_expected(WIDTH));
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();

    let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
    assert_eq!(a.get(g, tree.root(), out), Some(&want), "exhaustive");

    let (b, _) = DynamicEvaluator::new(g)
        .evaluate(&tree, &RootInputs::new())
        .unwrap();
    assert_eq!(b.get(g, tree.root(), out), Some(&want), "dynamic");

    let c = compiled
        .evaluate_optimized(&tree, &RootInputs::new())
        .unwrap();
    assert_eq!(
        c.node_values.get(g, tree.root(), out),
        Some(&want),
        "space-optimized"
    );

    let inc = IncrementalEvaluator::new(g, fnc2_corpus::flat_tree(g), Equality::default()).unwrap();
    assert_eq!(
        inc.value(inc.tree().root(), out),
        Some(&want),
        "incremental"
    );
}

#[test]
fn balloon_grammar_agrees_while_in_budget() {
    const DOUBLINGS: usize = 12;
    let compiled = Pipeline::new().compile(fnc2_corpus::balloon()).unwrap();
    let g = &compiled.grammar;
    let tree = fnc2_corpus::balloon_tree(g, DOUBLINGS);
    let want = Value::Int(fnc2_corpus::balloon_expected(DOUBLINGS));
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();

    let (a, _) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
    assert_eq!(a.get(g, tree.root(), out), Some(&want), "exhaustive");
    let (b, _) = DynamicEvaluator::new(g)
        .evaluate(&tree, &RootInputs::new())
        .unwrap();
    assert_eq!(b.get(g, tree.root(), out), Some(&want), "dynamic");
    let c = compiled
        .evaluate_optimized(&tree, &RootInputs::new())
        .unwrap();
    assert_eq!(
        c.node_values.get(g, tree.root(), out),
        Some(&want),
        "space-optimized"
    );
    let inc = IncrementalEvaluator::new(
        g,
        fnc2_corpus::balloon_tree(g, DOUBLINGS),
        Equality::default(),
    )
    .unwrap();
    assert_eq!(
        inc.value(inc.tree().root(), out),
        Some(&want),
        "incremental"
    );
}

#[test]
fn exceeded_budgets_surface_as_classified_errors() {
    use fnc2::guard::EvalBudget;
    use fnc2::visit::{build_visit_seqs, Evaluator};

    let compiled = Pipeline::new().compile(fnc2_corpus::chain()).unwrap();
    let g = &compiled.grammar;
    let seqs = build_visit_seqs(g, compiled.classification.l_ordered.as_ref().unwrap());
    let ev = Evaluator::new(g, &seqs);
    let tree = fnc2_corpus::chain_tree(g, 5_000);
    let inputs = RootInputs::new();

    // Step budget: far fewer steps than instances.
    let err = ev
        .evaluate_guarded(
            &tree,
            &inputs,
            &EvalBudget::default().with_max_steps(100),
            None,
        )
        .unwrap_err();
    assert!(err.is_budget(), "steps: {err}");

    // Depth budget: shallower than the spine.
    let err = ev
        .evaluate_guarded(
            &tree,
            &inputs,
            &EvalBudget::default().with_max_depth(64),
            None,
        )
        .unwrap_err();
    assert!(err.is_budget(), "depth: {err}");

    // Value-cell budget on the ballooning grammar: stops the geometric
    // growth long before it would materialize 2^24 cells.
    let bg = Pipeline::new().compile(fnc2_corpus::balloon()).unwrap();
    let bseqs = build_visit_seqs(&bg.grammar, bg.classification.l_ordered.as_ref().unwrap());
    let bev = Evaluator::new(&bg.grammar, &bseqs);
    let btree = fnc2_corpus::balloon_tree(&bg.grammar, 24);
    let err = bev
        .evaluate_guarded(
            &btree,
            &inputs,
            &EvalBudget::default().with_max_value_cells(10_000),
            None,
        )
        .unwrap_err();
    assert!(err.is_budget(), "cells: {err}");

    // The dynamic evaluator honors the same budgets.
    let err = DynamicEvaluator::new(g)
        .evaluate_guarded(
            &tree,
            &inputs,
            &EvalBudget::default().with_max_steps(100),
            None,
        )
        .unwrap_err();
    assert!(err.is_budget(), "dynamic steps: {err}");
}

// ---------------------------------------------------------------------------
// Guarded batch determinism under injected worker panics: whatever the
// thread count, the surviving trees must be bit-identical to a no-fault
// run and the poisoned trees must surface as classified outcomes
// ---------------------------------------------------------------------------

#[test]
fn guarded_batch_survives_injected_panics_deterministically() {
    use fnc2::guard::{EvalBudget, FaultPlan, InjectedFault, PlannedFault, INJECTED_PANIC_MSG};
    use fnc2::par::{batch_evaluate_guarded, TreeOutcome};
    use fnc2::visit::{build_visit_seqs, Evaluator};

    let compiled = Pipeline::new().compile(fnc2_corpus::chain()).unwrap();
    let g = &compiled.grammar;
    let seqs = build_visit_seqs(g, compiled.classification.l_ordered.as_ref().unwrap());
    let ev = Evaluator::new(g, &seqs);
    let trees: Vec<Tree> = (0..10)
        .map(|i| fnc2_corpus::chain_tree(g, 50 + 37 * i))
        .collect();
    let inputs = RootInputs::new();

    // No-fault reference, computed once.
    let reference: Vec<_> = trees
        .iter()
        .map(|t| ev.evaluate(t, &inputs).expect("reference").0)
        .collect();

    let plan = FaultPlan::with_faults(vec![
        PlannedFault {
            tree: 1,
            fault: InjectedFault::PanicAtStep { step: 9 },
            transient: true,
        },
        PlannedFault {
            tree: 3,
            fault: InjectedFault::PanicAtStep { step: 17 },
            transient: false,
        },
        PlannedFault {
            tree: 5,
            fault: InjectedFault::FailRule { step: 4 },
            transient: false,
        },
        PlannedFault {
            tree: 7,
            fault: InjectedFault::PanicOnEntry,
            transient: false,
        },
    ]);

    for threads in [1usize, 2, 4, 8] {
        let report = batch_evaluate_guarded(
            &ev,
            &trees,
            &inputs,
            threads,
            &EvalBudget::default(),
            1,
            Some(&plan),
        );
        assert_eq!(report.outcomes.len(), trees.len(), "{threads} threads");
        assert!(report.panics_caught >= 1, "{threads} threads");
        assert!(report.retries >= 1, "{threads} threads");
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match (i, outcome) {
                (3 | 7, TreeOutcome::Panicked(msg)) => {
                    assert!(msg.contains(INJECTED_PANIC_MSG), "{threads} threads: {msg}")
                }
                (5, TreeOutcome::Failed(e)) => {
                    assert!(e.is_budget(), "{threads} threads: {e}")
                }
                (_, TreeOutcome::Ok(vals, _)) => {
                    // Survivors (including the retried transient tree 1)
                    // are bit-identical to the no-fault reference.
                    for (n, _) in trees[i].preorder() {
                        let ph = trees[i].phylum(g, n);
                        for &attr in g.phylum(ph).attrs() {
                            assert_eq!(
                                vals.get(g, n, attr),
                                reference[i].get(g, n, attr),
                                "{threads} threads: tree {i} node {n:?}"
                            );
                        }
                    }
                }
                (_, other) => {
                    panic!(
                        "{threads} threads: tree {i} unexpected outcome {}",
                        other.label()
                    )
                }
            }
        }
    }
}
