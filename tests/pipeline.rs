//! End-to-end pipeline tests across the whole corpus: classification,
//! visit-sequence generation, space planning, evaluation, translators, and
//! the companion processors — the full Figure 2 wiring.

use fnc2::analysis::{AgClass, Inclusion};
use fnc2::visit::RootInputs;
use fnc2::Pipeline;
use fnc2_corpus as corpus;

#[test]
fn every_evaluable_corpus_grammar_compiles_and_runs() {
    let grammars = vec![
        corpus::binary(),
        corpus::desk(),
        corpus::blocks(),
        corpus::minipascal().0,
        corpus::snc_only(),
        corpus::oag1_not_oag0(),
        corpus::dnc_not_oag(3),
    ];
    for g in grammars {
        let name = g.name().to_string();
        let compiled = Pipeline::new()
            .compile(g)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            compiled.report.transform.is_some(),
            "{name}: transform stats"
        );
        let space = compiled.report.space.as_ref().expect("space stats");
        assert_eq!(
            space.occ_total(),
            compiled
                .grammar
                .productions()
                .map(|p| compiled.grammar.occurrences(p).len())
                .sum::<usize>(),
            "{name}: occurrence accounting"
        );
    }
}

#[test]
fn synthetic_profiles_compile_and_evaluate() {
    for p in &corpus::TABLE1_PROFILES {
        let g = corpus::synthetic(p);
        let compiled = Pipeline::new()
            .compile(g)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let tree = corpus::synthetic_tree(&compiled.grammar, p, 300, 42);
        let (plain, stats) = compiled.evaluate(&tree, &RootInputs::new()).unwrap();
        assert!(stats.evals > 0, "{}", p.name);
        let opt = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .unwrap();
        // Root outputs agree between plain and optimized.
        let root_ph = compiled.grammar.root();
        for attr in compiled.grammar.synthesized(root_ph) {
            assert_eq!(
                plain.get(&compiled.grammar, tree.root(), attr),
                opt.node_values.get(&compiled.grammar, tree.root(), attr),
                "{}: root attr {}",
                p.name,
                compiled.grammar.attr(attr).name()
            );
        }
        // The optimizer stores a solid majority of occurrences out of the
        // tree (the paper's §4.1 shape).
        let space = compiled.report.space.as_ref().unwrap();
        assert!(
            space.pct_node() < 50.0,
            "{}: {:.0}% left at nodes",
            p.name,
            space.pct_node()
        );
    }
}

#[test]
fn instrumented_pipeline_reports_phases_and_rule_firings() {
    use fnc2::obs::{Event, Obs};

    // The doc-comment `count` grammar from the fnc2 crate root.
    let source = r#"
        attribute grammar count;
          phylum S;
          operator leaf : S ::= ;
          operator node : S ::= S;
          synthesized n : int of S;
          for leaf { S.n := 0; }
          for node { S$1.n := S$2.n + 1; }
        end
    "#;
    let mut obs = Obs::with_trace(256);
    let compiled = Pipeline::new()
        .compile_olga_recorded(source, &mut obs)
        .unwrap();

    // Every Figure-3 cascade stage shows up, in order, with the analysis
    // sub-phases nested one level deep.
    let phases: Vec<(&str, usize)> = obs
        .phases
        .spans()
        .iter()
        .map(|s| (s.name, s.depth))
        .collect();
    assert_eq!(
        phases,
        vec![
            ("olga.parse", 0),
            ("olga.check", 0),
            ("olga.lower", 0),
            ("analysis", 0),
            ("analysis.snc", 1),
            ("analysis.dnc", 1),
            ("analysis.oag", 1),
            ("analysis.transform", 1),
            ("lint", 0),
            ("visit.sequences", 0),
            ("space.analysis", 0),
        ]
    );

    // Evaluating a small tree under the tracer fires semantic rules.
    let mut tb = fnc2::ag::TreeBuilder::new(&compiled.grammar);
    let a = tb.op("leaf", &[]).unwrap();
    let b = tb.op("node", &[a]).unwrap();
    let tree = tb.finish_root(b).unwrap();
    let (_, stats) = compiled
        .evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
        .unwrap();
    let fired = obs
        .events
        .as_ref()
        .unwrap()
        .count_matching(|e| matches!(e, Event::RuleFired { .. }));
    assert!(fired > 0, "no RuleFired events captured");
    assert_eq!(fired as u64, obs.metrics.counter("eval.evals"));
    assert_eq!(stats.evals as u64, obs.metrics.counter("eval.evals"));
}

#[test]
fn classes_match_the_table1_ladder() {
    use corpus::TargetClass;
    for p in &corpus::TABLE1_PROFILES {
        let g = corpus::synthetic(p);
        let c = fnc2::analysis::classify(&g, 1, Inclusion::Long).unwrap();
        let want = match p.class {
            TargetClass::Oag0 => AgClass::Oag0,
            TargetClass::Oag1 => AgClass::OagK(1),
            TargetClass::Dnc => AgClass::Dnc,
            TargetClass::SncOnly => AgClass::Snc,
        };
        assert_eq!(c.class, want, "{}", p.name);
    }
}

#[test]
fn translators_cover_the_corpus_olga_ags() {
    // Generate C and Lisp for the mini-Pascal AG; both texts are
    // structurally complete.
    let units = fnc2::olga::parse_units(corpus::MINIPASCAL_OLGA).unwrap();
    let mut compiler = fnc2::olga::Compiler::new();
    let mut ag = None;
    for u in units {
        match u {
            fnc2::olga::ast::Unit::Module(m) => compiler.add_module(m).unwrap(),
            fnc2::olga::ast::Unit::Ag(a) => ag = Some(a),
        }
    }
    let checked = compiler.check_ag(ag.unwrap()).unwrap();
    let (grammar, _) = fnc2::olga::lower(&checked).unwrap();
    let compiled = Pipeline::new().compile(grammar).unwrap();
    let c = fnc2::codegen::to_c(&checked, &compiled.grammar, &compiled.seqs);
    assert!(c.contains("evaluate_root"));
    assert_eq!(c.matches('{').count(), c.matches('}').count());
    let l = fnc2::codegen::to_lisp(&checked, &compiled.grammar, &compiled.seqs);
    assert!(l.contains("evaluate-root"));
}

#[test]
fn long_inclusion_never_worse_than_equality() {
    // On every corpus grammar the long-inclusion transformation registers
    // at most as many partitions (and plans) as the classical one.
    let grammars = vec![
        corpus::binary(),
        corpus::desk(),
        corpus::blocks(),
        corpus::minipascal().0,
        corpus::snc_only(),
        corpus::synthetic(&corpus::TABLE1_PROFILES[4]),
    ];
    for g in grammars {
        let snc = fnc2::analysis::snc_test(&g);
        assert!(snc.is_snc(), "{}", g.name());
        let long = fnc2::analysis::snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let eq = fnc2::analysis::snc_to_l_ordered(&g, &snc, Inclusion::Equality).unwrap();
        assert!(
            long.stats.partitions_per_phylum.iter().sum::<usize>()
                <= eq.stats.partitions_per_phylum.iter().sum::<usize>(),
            "{}: {:?} vs {:?}",
            g.name(),
            long.stats.partitions_per_phylum,
            eq.stats.partitions_per_phylum
        );
        assert!(long.stats.plans <= eq.stats.plans, "{}", g.name());
    }
}

#[test]
fn asx_is_clean_on_real_grammars() {
    for g in [corpus::binary(), corpus::desk(), corpus::minipascal().0] {
        let report = fnc2::tools::analyze(&g);
        assert!(report.is_clean(), "{}: {:?}", g.name(), report.diags);
    }
}

#[test]
fn visit_overhead_of_long_inclusion_is_small() {
    // §2.1.1: partition replacement "tends to increase the number of
    // visits", but "on all the practical AGs we have used, this increase
    // is less than 2% in average". Measure dynamically on the corpus.
    for g in [
        corpus::binary(),
        corpus::desk(),
        corpus::blocks(),
        corpus::minipascal().0,
    ] {
        let name = g.name().to_string();
        let snc = fnc2::analysis::snc_test(&g);
        let long = fnc2::analysis::snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let eq = fnc2::analysis::snc_to_l_ordered(&g, &snc, Inclusion::Equality).unwrap();
        let seqs_long = fnc2::visit::build_visit_seqs(&g, &long);
        let seqs_eq = fnc2::visit::build_visit_seqs(&g, &eq);
        let tree = match name.as_str() {
            "binary" => corpus::binary_tree(&g, "110101101.0101"),
            "desk" => {
                // reuse the static evaluator corpus path via a quick tree
                corpus::binary_tree(&corpus::binary(), "1");
                // build a small desk tree inline
                let mut tb = fnc2::ag::TreeBuilder::new(&g);
                let l = tb
                    .node_with_token(
                        g.production_by_name("lit").unwrap(),
                        &[],
                        Some(fnc2::ag::Value::Int(4)),
                    )
                    .unwrap();
                let r = tb.op("prog", &[l]).unwrap();
                tb.finish_root(r).unwrap()
            }
            "blocks" => corpus::blocks_tree(&g, "d:a u:a [ d:b u:b u:a ]"),
            _ => corpus::parse_minipascal(&g, &corpus::sample_program(4)).unwrap(),
        };
        let (_, s1) = fnc2::visit::Evaluator::new(&g, &seqs_long)
            .evaluate(&tree, &RootInputs::new())
            .unwrap();
        let (_, s2) = fnc2::visit::Evaluator::new(&g, &seqs_eq)
            .evaluate(&tree, &RootInputs::new())
            .unwrap();
        let overhead = s1.visits as f64 / s2.visits as f64;
        assert!(
            overhead <= 1.02,
            "{name}: visit overhead {overhead:.3} ({} vs {})",
            s1.visits,
            s2.visits
        );
    }
}
