//! The circularity trace (paper §3.1): when an AG fails the SNC test,
//! FNC-2 explains *why* with the chain of semantic rules closing the cycle,
//! "allowing to take full advantage of the power of the SNC class".
//!
//! Run with `cargo run --example circularity_trace`.

use fnc2::{Pipeline, PipelineError};

fn main() {
    // A subtly circular grammar: the inherited `env` of a block depends on
    // its own synthesized `defs`, which (by a typo) includes the part of
    // the block computed *under* that env.
    let result = Pipeline::new().compile_olga(
        r#"
        attribute grammar scoped;
          phylum Prog, Block;
          root Prog;
          operator prog : Prog ::= Block;
          operator blk  : Block ::= ;
          synthesized out : int of Prog;
          synthesized defs : int of Block;
          inherited env : int of Block;
          for prog {
            Block.env := Block.defs;   -- intended: defs of the *header* only
            Prog.out := Block.defs;
          }
          for blk {
            Block.defs := Block.env;   -- typo: defs must not read env
          }
        end
        "#,
    );
    match result {
        Err(PipelineError::NotSnc(trace)) => {
            println!("the generator rejected the grammar:\n");
            println!("{trace}");
            println!("fix: compute `defs` from the block's own declarations, not from `env`.");
        }
        Ok(_) => println!("unexpected: the grammar passed"),
        Err(other) => println!("unexpected error: {other}"),
    }

    // The ladder in one glance: the corpus witnesses and their classes.
    println!("\nclass ladder on the corpus witnesses:");
    for (name, g) in [
        ("circular", fnc2_corpus::circular()),
        ("nc_not_snc", fnc2_corpus::nc_not_snc()),
        ("snc_only (AG5 shape)", fnc2_corpus::snc_only()),
        ("oag1_not_oag0 (AG7 shape)", fnc2_corpus::oag1_not_oag0()),
        ("dnc_not_oag (AG4 shape)", fnc2_corpus::dnc_not_oag(3)),
        ("binary", fnc2_corpus::binary()),
    ] {
        let c = fnc2::analysis::classify(&g, 1, fnc2::analysis::Inclusion::Long)
            .expect("classification runs");
        println!("  {name:<24} -> {}", c.class);
    }
}
