//! Modularity and the companion processors (paper §2.3, §3.3, Figure 4):
//! an application as a set of OLGA modules plus an AG, the `mkfnc2`
//! dependency graph and Table-4-style statistics, the `asx` diagnostics,
//! and a `ppat` unparser for the AG's output trees.
//!
//! Run with `cargo run --example olga_pipeline`.

use fnc2::tools::{analyze_project, render_stats, Item, PpatSpec, SourceFile, Unparser};
use fnc2::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- an application: two library modules + one AG -----------------
    let arith = r#"
module arith;
  export max2, clamp;
  function max2(a : int, b : int) : int = if a > b then a else b end;
  function clamp(x : int, hi : int) : int = if x > hi then hi else x end;
end
"#;
    let trees = r#"
module trees;
  import max2 from arith;
  export grow;
  function grow(n : int) : tree =
    if n = 0 then @leaf(0) else @fork(grow(n - 1), @leaf(max2(n, 1))) end;
end
"#;
    let ag = r#"
attribute grammar shaper;
  import grow, max2 from arith;      -- wrong module on purpose? no: see below
  phylum S;
  operator mk : S ::= ;
  synthesized shape : tree of S;
  synthesized depth : int of S;
  function measure(t : tree) : int =
    case t of @leaf(_) => 1 | @fork(a, b) => 1 + max2(measure(a), measure(b)) end;
  for mk {
    S.shape := grow(4);
    S.depth := measure(S.shape);
  }
end
"#;
    // `grow` lives in `trees`, `max2` in `arith`:
    let ag = ag.replace(
        "import grow, max2 from arith;      -- wrong module on purpose? no: see below",
        "import grow from trees;\n  import max2 from arith;",
    );

    // ---- mkfnc2: dependency graph + Table-4 statistics ------------------
    let files = vec![
        SourceFile {
            name: "arith.olga".into(),
            subsystem: "lib".into(),
            text: arith.into(),
        },
        SourceFile {
            name: "trees.olga".into(),
            subsystem: "lib".into(),
            text: trees.into(),
        },
        SourceFile {
            name: "shaper.olga".into(),
            subsystem: "ag".into(),
            text: ag.clone(),
        },
    ];
    let project = analyze_project(&files)?;
    println!("build order: {}", project.build_order.join(" -> "));
    println!(
        "\nsource statistics (Table 4 style):\n{}",
        render_stats(&project.stats)
    );

    // ---- compile the whole application ---------------------------------
    let source = format!("{arith}\n{trees}\n{ag}");
    let compiled = Pipeline::new().compile_olga(&source)?;
    println!("generator report:\n{}\n", compiled.report);

    // asx diagnostics on the abstract syntax.
    let report = fnc2::tools::analyze(&compiled.grammar);
    if report.is_clean() {
        println!("asx: abstract syntax is clean");
    } else {
        for d in &report.diags {
            println!("asx: {d}");
        }
    }

    // ---- evaluate and unparse the output tree with ppat ----------------
    let mut tb = fnc2::ag::TreeBuilder::new(&compiled.grammar);
    let root = tb.op("mk", &[])?;
    let tree = tb.finish_root(root)?;
    let (values, _) = compiled.evaluate(&tree, &Default::default())?;
    let s = compiled.grammar.phylum_by_name("S").expect("phylum");
    let shape = compiled.grammar.attr_by_name(s, "shape").expect("attr");
    let depth = compiled.grammar.attr_by_name(s, "depth").expect("attr");
    println!(
        "\noutput tree depth = {}",
        values
            .get(&compiled.grammar, tree.root(), depth)
            .expect("evaluated")
    );

    let mut spec = PpatSpec::new();
    spec.template(
        "fork",
        vec![
            Item::Text("(".into()),
            Item::Indent,
            Item::Newline,
            Item::Child(1),
            Item::Newline,
            Item::Child(2),
            Item::Dedent,
            Item::Newline,
            Item::Text(")".into()),
        ],
    );
    spec.template("leaf", vec![Item::Text("leaf ".into()), Item::Child(1)]);
    let unparser = Unparser::generate_unchecked(spec);
    println!(
        "unparsed output tree:\n{}",
        unparser.unparse_term(
            values
                .get(&compiled.grammar, tree.root(), shape)
                .expect("evaluated")
        )
    );
    Ok(())
}
