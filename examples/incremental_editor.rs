//! Incremental evaluation (paper §2.1.2): keep a decorated tree, apply
//! subtree replacements, and watch how few instances the semantic-control
//! propagation reevaluates compared to exhaustive reevaluation — including
//! a coarse, application-specific equality that cuts propagation earlier.
//!
//! Run with `cargo run --example incremental_editor`.

use fnc2::ag::{Grammar, GrammarBuilder, NodeId, Occ, TreeBuilder, Value};
use fnc2::incremental::{Equality, IncrementalEvaluator};

/// A fold over leaves with a depth attribute threaded down.
fn sum_grammar() -> Grammar {
    let mut g = GrammarBuilder::new("sum");
    let s = g.phylum("S");
    let e = g.phylum("E");
    let total = g.syn(s, "total");
    let depth = g.inh(e, "depth");
    let sum = g.syn(e, "sum");
    g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    let root = g.production("root", s, &[e]);
    g.copy(root, Occ::lhs(total), Occ::new(1, sum));
    g.constant(root, Occ::new(1, depth), Value::Int(0));
    let fork = g.production("fork", e, &[e, e]);
    g.call(fork, Occ::new(1, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(fork, Occ::new(2, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(
        fork,
        Occ::lhs(sum),
        "add",
        [Occ::new(1, sum).into(), Occ::new(2, sum).into()],
    );
    let leaf = g.production("leafe", e, &[]);
    g.copy(leaf, Occ::lhs(sum), fnc2::ag::Arg::Token);
    g.finish().expect("well-defined")
}

fn balanced(g: &Grammar, tb: &mut TreeBuilder, depth: usize, next: &mut i64) -> NodeId {
    if depth == 0 {
        let leaf = g.production_by_name("leafe").expect("leafe");
        *next += 1;
        tb.node_with_token(leaf, &[], Some(Value::Int(*next)))
            .expect("leaf builds")
    } else {
        let a = balanced(g, tb, depth - 1, next);
        let b = balanced(g, tb, depth - 1, next);
        tb.op("fork", &[a, b]).expect("fork builds")
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = sum_grammar();
    let mut tb = TreeBuilder::new(&g);
    let mut next = 0;
    let body = balanced(&g, &mut tb, 10, &mut next); // 1024 leaves
    let root = tb.op("root", &[body])?;
    let tree = tb.finish_root(root)?;

    let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default())?;
    let instances = inc.instance_count();
    let s = g.phylum_by_name("S").expect("phylum");
    let total = g.attr_by_name(s, "total").expect("attribute");
    println!(
        "initial: {} attribute instances, total = {}",
        instances,
        inc.value(inc.tree().root(), total).expect("evaluated")
    );

    // Edit one leaf at a time and watch the economy.
    for edit in 1..=3 {
        let victim = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).children().is_empty())
            .map(|(n, _)| n)
            .expect("a leaf exists");
        let mut tb = TreeBuilder::new(&g);
        let leaf = g.production_by_name("leafe").expect("leafe");
        let nl = tb.node_with_token(leaf, &[], Some(Value::Int(1000 * edit)))?;
        let sub = tb.finish(nl);
        let stats = inc.replace_subtree(victim, &sub)?;
        println!(
            "edit {edit}: reevaluated {} of {} instances ({} changed, {} cut); total = {}",
            stats.reevaluated,
            instances,
            stats.changed,
            stats.cut,
            inc.value(inc.tree().root(), total).expect("evaluated")
        );
    }

    // An adapted equality (paper: "the notion of equality used in this
    // comparison can be adapted to the problem at hand"): only the sign
    // matters, so same-sign edits stop propagating immediately.
    let g2 = sum_grammar();
    let mut tb = TreeBuilder::new(&g2);
    let mut next = 0;
    let body = balanced(&g2, &mut tb, 10, &mut next);
    let root = tb.op("root", &[body])?;
    let tree = tb.finish_root(root)?;
    let sign_eq = Equality::new(|a, b| a.as_int().signum() == b.as_int().signum());
    let mut coarse = IncrementalEvaluator::new(&g2, tree, sign_eq)?;
    let victim = coarse
        .tree()
        .preorder()
        .find(|&(n, _)| coarse.tree().node(n).children().is_empty())
        .map(|(n, _)| n)
        .expect("a leaf exists");
    let mut tb = TreeBuilder::new(&g2);
    let leaf = g2.production_by_name("leafe").expect("leafe");
    let nl = tb.node_with_token(leaf, &[], Some(Value::Int(999_999)))?;
    let sub = tb.finish(nl);
    let stats = coarse.replace_subtree(victim, &sub)?;
    println!(
        "coarse equality: reevaluated {} instance(s), {} changed (sign unchanged, wave cut at the leaf)",
        stats.reevaluated, stats.changed
    );
    Ok(())
}
