//! Attribute-coupled composition (paper §2.3): an application as a chain
//! of AG modules, each "a tree-to-tree mapping" — here a **desugaring**
//! phase whose output tree feeds an **evaluation** phase.
//!
//! Phase 1 (OLGA AG `sugar`): a surface expression language with `neg`,
//! `double` and `square` sugar; its single synthesized attribute is the
//! desugared *output tree* over the core operators.
//! Phase 2 (OLGA AG `core`): evaluates core trees.
//!
//! The glue is `fnc2::ag::term_to_tree`: the paper's scheme of interfacing
//! evaluators "providing that the latter be also based on the tree-to-tree
//! mapping paradigm".
//!
//! Run with `cargo run --example two_phase_compiler`.

use fnc2::ag::{term_to_tree, TreeBuilder, Value};
use fnc2::Pipeline;

const SUGAR: &str = r#"
attribute grammar sugar;
  phylum E;
  operator lit    : E ::= ;
  operator add    : E ::= E E;
  operator neg    : E ::= E;        -- sugar: 0 - e
  operator double : E ::= E;        -- sugar: e + e
  operator square : E ::= E;        -- sugar: e * e
  synthesized out : tree of E;
  for lit    { E.out := @clit(token()); }
  for add    { E$1.out := @cadd(E$2.out, E$3.out); }
  for neg    { E$1.out := @csub(@clit(0), E$2.out); }
  for double { E$1.out := @cadd(E$2.out, E$2.out); }
  for square { E$1.out := @cmul(E$2.out, E$2.out); }
end
"#;

const CORE: &str = r#"
attribute grammar core;
  phylum C;
  operator clit : C ::= ;
  operator cadd : C ::= C C;
  operator csub : C ::= C C;
  operator cmul : C ::= C C;
  synthesized v : int of C;
  for clit { C.v := token(); }
  for cadd { C$1.v := C$2.v + C$3.v; }
  for csub { C$1.v := C$2.v - C$3.v; }
  for cmul { C$1.v := C$2.v * C$3.v; }
end
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sugar = Pipeline::new().compile_olga(SUGAR)?;
    let core = Pipeline::new().compile_olga(CORE)?;
    println!("phase 1 (desugar): {}", sugar.report.class);
    println!("phase 2 (evaluate): {}\n", core.report.class);

    // Surface program: square(double(3)) + neg(4)  ==  (3+3)^2 - 4 = 32.
    let g1 = &sugar.grammar;
    let mut tb = TreeBuilder::new(g1);
    let three = tb.node_with_token(
        g1.production_by_name("lit").expect("lit"),
        &[],
        Some(Value::Int(3)),
    )?;
    let doubled = tb.op("double", &[three])?;
    let squared = tb.op("square", &[doubled])?;
    let four = tb.node_with_token(
        g1.production_by_name("lit").expect("lit"),
        &[],
        Some(Value::Int(4)),
    )?;
    let negged = tb.op("neg", &[four])?;
    let surface = tb.op("add", &[squared, negged])?;
    let tree1 = tb.finish_root(surface)?;

    // Run phase 1: the output attribute is a term over the core operators.
    let (vals1, _) = sugar.evaluate(&tree1, &Default::default())?;
    let e = g1.phylum_by_name("E").expect("phylum");
    let out = g1.attr_by_name(e, "out").expect("attr");
    let term = vals1
        .get(g1, tree1.root(), out)
        .expect("evaluated")
        .as_term()
        .clone();
    println!(
        "desugared tree: {}",
        Value::Term(std::sync::Arc::new(term.clone()))
    );

    // Feed it to phase 2 as an input tree.
    let tree2 = term_to_tree(&core.grammar, &term)?;
    let (vals2, _) = core.evaluate(&tree2, &Default::default())?;
    let c = core.grammar.phylum_by_name("C").expect("phylum");
    let v = core.grammar.attr_by_name(c, "v").expect("attr");
    println!(
        "evaluated: {}",
        vals2
            .get(&core.grammar, tree2.root(), v)
            .expect("evaluated")
    );
    assert_eq!(
        vals2.get(&core.grammar, tree2.root(), v),
        Some(&Value::Int(32))
    );
    println!("\n(square(double(3)) + neg(4) = 32 — two AGs, one intermediate tree)");
    Ok(())
}
