//! Quickstart: write an attribute grammar in OLGA, run the FNC-2 pipeline,
//! evaluate a tree, and look at the generator's report.
//!
//! Run with `cargo run --example quickstart`.

use fnc2::ag::TreeBuilder;
use fnc2::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Knuth's binary-number grammar, in OLGA.
    let compiled = Pipeline::new().compile_olga(
        r#"
        attribute grammar binary;
          phylum Number, Seq, Bit;
          root Number;
          operator number : Number ::= Seq;
          operator pair   : Seq ::= Seq Bit;
          operator single : Seq ::= Bit;
          operator zero   : Bit ::= ;
          operator one    : Bit ::= ;
          synthesized value : real of Number, Seq, Bit;
          synthesized length : int of Seq;
          inherited scale : int of Seq, Bit;
          function pow2(n : int) : real =
            if n = 0 then 1.0
            else if n < 0 then 1.0 / pow2(0 - n) else 2.0 * pow2(n - 1) end
            end;
          for number { Seq.scale := 0; }
          for pair {
            Seq$1.value := Seq$2.value + Bit.value;
            Seq$1.length := Seq$2.length + 1;
            Seq$2.scale := Seq$1.scale + 1;
          }
          for single { Seq.length := 1; }
          for zero { Bit.value := 0.0; }
          for one  { Bit.value := pow2(Bit.scale); }
        end
        "#,
    )?;

    println!("generator report for `binary`:");
    println!("{}\n", compiled.report);

    // Build the tree of "1101" and evaluate it.
    let g = &compiled.grammar;
    let mut tb = TreeBuilder::new(g);
    let mut seq = {
        let b = tb.op("one", &[])?;
        tb.op("single", &[b])?
    };
    for c in "101".chars() {
        let b = tb.op(if c == '1' { "one" } else { "zero" }, &[])?;
        seq = tb.op("pair", &[seq, b])?;
    }
    let root = tb.op("number", &[seq])?;
    let tree = tb.finish_root(root)?;

    let (values, stats) = compiled.evaluate(&tree, &Default::default())?;
    let number = g.phylum_by_name("Number").expect("phylum");
    let value = g.attr_by_name(number, "value").expect("attribute");
    println!(
        "value of 1101 = {}   ({} visits, {} rule evaluations)",
        values.get(g, tree.root(), value).expect("evaluated"),
        stats.visits,
        stats.evals
    );

    // The space-optimized evaluator computes the same thing with far
    // fewer live cells.
    let outcome = compiled.evaluate_optimized(&tree, &Default::default())?;
    println!(
        "optimized: max {} live cells (tree storage would hold {} instances)",
        outcome.stats.max_live_cells,
        values.live_count()
    );
    Ok(())
}
