//! The corpus flagship end to end: a mini-Pascal compiler whose semantic
//! analysis and P-code generation are one OLGA attribute grammar (the
//! paper's "compiler from full ISO Pascal to P-code" at reproduction
//! scale). Also prints a slice of the generated C translation — the
//! paper's C back end.
//!
//! Run with `cargo run --example minipascal_compiler`.

use fnc2::Pipeline;
use fnc2_corpus::{minipascal, parse_minipascal};

const PROGRAM: &str = r#"
program demo;
var n : integer;
var sum : integer;
var even : boolean;
begin
  n := 10;
  sum := 0;
  while 0 < n do
    sum := sum + n * n;
    even := not (n = 1);
    if even then n := n - 2 else n := n - 1 end
  end;
  write sum
end.
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (grammar, info) = minipascal();
    println!(
        "mini-Pascal AG: {} operators, {} rules ({} auto-generated copies)\n",
        grammar.production_count(),
        grammar.rule_count(),
        info.auto_copies
    );

    let compiled = Pipeline::new().compile(grammar)?;
    println!("generator report:\n{}\n", compiled.report);

    let tree = parse_minipascal(&compiled.grammar, PROGRAM)?;
    println!("parsed {} tree nodes", tree.size());

    let (values, stats) = compiled.evaluate(&tree, &Default::default())?;
    let g = &compiled.grammar;
    let prog = g.phylum_by_name("Prog").expect("phylum");
    let code = g.attr_by_name(prog, "code").expect("attribute");
    let errs = g.attr_by_name(prog, "errs").expect("attribute");

    let errors = values.get(g, tree.root(), errs).expect("evaluated");
    if errors.as_list().is_empty() {
        println!("type checking: ok");
    } else {
        println!("type errors:");
        for e in errors.as_list() {
            println!("  {e}");
        }
    }

    println!(
        "\nP-code ({} visits, {} evaluations):",
        stats.visits, stats.evals
    );
    for instr in values
        .get(g, tree.root(), code)
        .expect("evaluated")
        .as_list()
    {
        println!("  {instr}");
    }

    // The C translation (paper §3.2). Print its head.
    let checked = {
        let units = fnc2::olga::parse_units(fnc2_corpus::MINIPASCAL_OLGA)?;
        let mut compiler = fnc2::olga::Compiler::new();
        let mut ag = None;
        for u in units {
            match u {
                fnc2::olga::ast::Unit::Module(m) => compiler.add_module(m)?,
                fnc2::olga::ast::Unit::Ag(a) => ag = Some(a),
            }
        }
        compiler.check_ag(ag.expect("AG present"))?
    };
    let c_text = fnc2::codegen::to_c(&checked, &compiled.grammar, &compiled.seqs);
    println!(
        "\ngenerated C translation: {} lines; first visit function:",
        c_text.lines().count()
    );
    let mut show = false;
    for line in c_text.lines() {
        if line.starts_with("static void visit_") {
            show = true;
        }
        if show {
            println!("  {line}");
            if line == "}" {
                break;
            }
        }
    }
    Ok(())
}
