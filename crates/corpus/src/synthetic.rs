//! Seeded synthetic attribute grammars matched to Table 1's size and class
//! profiles.
//!
//! The paper's seven AGs are parts of FNC-2 itself (mkfnc2's dependency
//! graph, asx well-definedness, OLGA type-checking, …) whose OLGA sources
//! are not available. Per DESIGN.md, the substitution is a generator that
//! reproduces their *measured shape*: phylum/operator/occurrence/rule
//! counts in the paper's range, a realistic copy-rule proportion, and the
//! same smallest-class ladder (four OAG(0) rows, one DNC row, one row that
//! is not OAG(k) for any k, one OAG(1) row).

use fnc2_ag::{Arg, Grammar, GrammarBuilder, Occ, PhylumId, Value};

use crate::rng::Rng;

/// The class a synthetic grammar is steered into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetClass {
    /// Plain ordered (Kastens).
    Oag0,
    /// Ordered only after one repair.
    Oag1,
    /// Doubly non-circular but not OAG(k) for small k.
    Dnc,
    /// Strongly non-circular only (two partitions on some phylum).
    SncOnly,
}

/// A Table 1 row profile.
#[derive(Clone, Copy, Debug)]
pub struct SynthProfile {
    /// Row label ("AG1" … "AG7").
    pub name: &'static str,
    /// Number of pipeline phyla.
    pub phyla: usize,
    /// Extra inherited/synthesized attribute *pairs* per phylum (0–3).
    pub attr_pairs: usize,
    /// Target class.
    pub class: TargetClass,
    /// RNG seed (deterministic grammars).
    pub seed: u64,
}

/// The seven profiles standing in for the paper's AG 1–7 (sizes in the
/// paper's range; AG5 is the big not-OAG(k) one, AG7 the OAG(1) one).
pub const TABLE1_PROFILES: [SynthProfile; 7] = [
    SynthProfile {
        name: "AG1",
        phyla: 20,
        attr_pairs: 1,
        class: TargetClass::Oag0,
        seed: 101,
    },
    SynthProfile {
        name: "AG2",
        phyla: 33,
        attr_pairs: 2,
        class: TargetClass::Oag0,
        seed: 102,
    },
    SynthProfile {
        name: "AG3",
        phyla: 35,
        attr_pairs: 2,
        class: TargetClass::Oag0,
        seed: 103,
    },
    SynthProfile {
        name: "AG4",
        phyla: 44,
        attr_pairs: 2,
        class: TargetClass::Dnc,
        seed: 104,
    },
    SynthProfile {
        name: "AG5",
        phyla: 74,
        attr_pairs: 3,
        class: TargetClass::SncOnly,
        seed: 105,
    },
    SynthProfile {
        name: "AG6",
        phyla: 28,
        attr_pairs: 1,
        class: TargetClass::Oag0,
        seed: 106,
    },
    SynthProfile {
        name: "AG7",
        phyla: 48,
        attr_pairs: 2,
        class: TargetClass::Oag1,
        seed: 107,
    },
];

/// Generates a synthetic grammar for a profile. Deterministic in the seed.
pub fn synthetic(profile: &SynthProfile) -> Grammar {
    let mut rng = Rng::seed_from_u64(profile.seed);
    let mut g = GrammarBuilder::new(profile.name);
    g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
    g.func("add", 2, |a| Value::Int(a[0].as_int() + a[1].as_int()));
    g.func("pair2", 2, |a| Value::tuple([a[0].clone(), a[1].clone()]));

    let root = g.phylum("Root");
    let out = g.syn(root, "out");

    // Pipeline phyla X0..X{n-1}, each with a down/up pair plus
    // `attr_pairs` extra pairs (one of which lives in a later visit for a
    // third of the phyla, giving real 2-visit partitions).
    struct Ph {
        id: PhylumId,
        down: fnc2_ag::AttrId,
        up: fnc2_ag::AttrId,
        extra: Vec<(fnc2_ag::AttrId, fnc2_ag::AttrId)>,
        two_visit: bool,
    }
    let n = profile.phyla.max(2);
    let mut phs: Vec<Ph> = Vec::with_capacity(n);
    for i in 0..n {
        let id = g.phylum(format!("X{i}"));
        let down = g.inh(id, "down");
        let up = g.syn(id, "up");
        let pairs = if profile.attr_pairs == 0 {
            0
        } else {
            rng.gen_usize(0, profile.attr_pairs)
        };
        let extra = (0..pairs)
            .map(|k| {
                let i_ = g.inh(id, format!("e{k}"));
                let s_ = g.syn(id, format!("f{k}"));
                (i_, s_)
            })
            .collect();
        phs.push(Ph {
            id,
            down,
            up,
            extra,
            two_visit: i % 3 == 1,
        });
    }

    // Root production drives X0.
    let rp = g.production("start", root, &[phs[0].id]);
    g.constant(rp, Occ::new(1, phs[0].down), Value::Int(0));
    for &(e, _) in &phs[0].extra {
        g.constant(rp, Occ::new(1, e), Value::Int(1));
    }
    g.copy(rp, Occ::lhs(out), Occ::new(1, phs[0].up));

    // Per phylum: a leaf, a chain to the next phylum, sometimes a fork and
    // a self-recursion. Rule mix: mostly copies (the realistic profile the
    // space optimizer feeds on), some computed.
    for i in 0..n {
        let x = &phs[i];
        // leaf
        let leaf = g.production(format!("leaf{i}"), x.id, &[]);
        g.copy(leaf, Occ::lhs(x.up), Occ::lhs(x.down));
        for (k, &(e, s)) in x.extra.iter().enumerate() {
            if x.two_visit && k == 0 {
                // f0 depends on up's inputs only; e0 is consumed by a
                // *later* computation fed back by the context: model by
                // s := e (still one visit at the leaf; the 2-visit order
                // is forced by the chain production below).
                g.copy(leaf, Occ::lhs(s), Occ::lhs(e));
            } else if rng.gen_bool(0.5) {
                g.copy(leaf, Occ::lhs(s), Occ::lhs(e));
            } else {
                g.call(leaf, Occ::lhs(s), "succ", [Occ::lhs(e).into()]);
            }
        }
        // chain to the next phylum.
        if i + 1 < n {
            let y = &phs[i + 1];
            let chain = g.production(format!("chain{i}"), x.id, &[y.id]);
            g.copy(chain, Occ::new(1, y.down), Occ::lhs(x.down));
            g.copy(chain, Occ::lhs(x.up), Occ::new(1, y.up));
            // Define each of the child's extra inherited attributes once.
            for (k, &(ye, _)) in y.extra.iter().enumerate() {
                match x.extra.get(k) {
                    Some(&(e, _)) if x.two_visit && k == 0 => {
                        // Forces a second visit on y: its extra inherited
                        // depends on its own up.
                        g.call(
                            chain,
                            Occ::new(1, ye),
                            "add",
                            [Occ::lhs(e).into(), Occ::new(1, y.up).into()],
                        );
                    }
                    Some(&(e, _)) => g.copy(chain, Occ::new(1, ye), Occ::lhs(e)),
                    None => g.copy(chain, Occ::new(1, ye), Occ::lhs(x.down)),
                }
            }
            // Define each of x's extra synthesized attributes once.
            for (k, &(e, s)) in x.extra.iter().enumerate() {
                match y.extra.get(k) {
                    Some(&(_, ys)) => g.copy(chain, Occ::lhs(s), Occ::new(1, ys)),
                    None => g.copy(chain, Occ::lhs(s), Occ::lhs(e)),
                }
            }
        }
        // self recursion for every 4th phylum: forces stack storage.
        if i % 4 == 2 {
            let rec = g.production(format!("rec{i}"), x.id, &[x.id]);
            g.call(rec, Occ::new(1, x.down), "succ", [Occ::lhs(x.down).into()]);
            g.call(
                rec,
                Occ::lhs(x.up),
                "add",
                [Occ::new(1, x.up).into(), Occ::lhs(x.down).into()],
            );
            for &(e, s) in &x.extra {
                g.copy(rec, Occ::new(1, e), Occ::lhs(e));
                g.copy(rec, Occ::lhs(s), Occ::new(1, s));
            }
        }
        // binary fork for every 5th phylum.
        if i % 5 == 3 && i + 1 < n {
            let y = &phs[i + 1];
            let fork = g.production(format!("fork{i}"), x.id, &[y.id, y.id]);
            g.copy(fork, Occ::new(1, y.down), Occ::lhs(x.down));
            g.call(
                fork,
                Occ::new(2, y.down),
                "succ",
                [Occ::new(1, y.up).into()],
            );
            g.call(
                fork,
                Occ::lhs(x.up),
                "add",
                [Occ::new(1, y.up).into(), Occ::new(2, y.up).into()],
            );
            // Define both children's extra inherited attributes once.
            for pos in [1u16, 2] {
                for (k, &(ye, _)) in y.extra.iter().enumerate() {
                    match x.extra.get(k) {
                        Some(&(e, _)) if pos == 2 => {
                            g.call(fork, Occ::new(2, ye), "succ", [Occ::lhs(e).into()]);
                        }
                        Some(&(e, _)) => g.copy(fork, Occ::new(pos, ye), Occ::lhs(e)),
                        None => g.copy(fork, Occ::new(pos, ye), Occ::lhs(x.down)),
                    }
                }
            }
            // Define x's extra synthesized attributes once.
            for (k, &(e, s)) in x.extra.iter().enumerate() {
                match y.extra.get(k) {
                    Some(&(_, ys)) => g.call(
                        fork,
                        Occ::lhs(s),
                        "add",
                        [Occ::new(1, ys).into(), Occ::new(2, ys).into()],
                    ),
                    None => g.copy(fork, Occ::lhs(s), Occ::lhs(e)),
                }
            }
        }
    }

    // Class gadget, attached as extra root alternatives.
    match profile.class {
        TargetClass::Oag0 => {}
        TargetClass::Oag1 => attach_cross(&mut g, root, out, 1),
        TargetClass::Dnc => attach_cross(&mut g, root, out, 3),
        TargetClass::SncOnly => attach_snc_only(&mut g, root, out),
    }

    g.finish().expect("synthetic grammar is well-defined")
}

/// The OAG(0)-breaking crossing gadget (`pairs` independent copies).
fn attach_cross(g: &mut GrammarBuilder, root: PhylumId, out: fnc2_ag::AttrId, pairs: usize) {
    for k in 0..pairs {
        let x = g.phylum(format!("Cross{k}"));
        let i1 = g.inh(x, "i1");
        let s1 = g.syn(x, "s1");
        let s2 = g.syn(x, "s2");
        let leaf = g.production(format!("crossleaf{k}"), x, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        g.constant(leaf, Occ::lhs(s2), Value::Int(1));
        let cross = g.production(format!("cross{k}"), root, &[x, x]);
        g.copy(cross, Occ::new(1, i1), Occ::new(2, s2));
        g.copy(cross, Occ::new(2, i1), Occ::new(1, s2));
        g.call(
            cross,
            Occ::lhs(out),
            "add",
            [Occ::new(1, s1).into(), Occ::new(2, s1).into()],
        );
    }
}

/// The AG5-style gadget: two contexts forcing opposite visit orders.
fn attach_snc_only(g: &mut GrammarBuilder, root: PhylumId, out: fnc2_ag::AttrId) {
    let x = g.phylum("Twist");
    let i1 = g.inh(x, "i1");
    let i2 = g.inh(x, "i2");
    let s1 = g.syn(x, "s1");
    let s2 = g.syn(x, "s2");
    let ctx_a = g.production("twist_a", root, &[x]);
    g.constant(ctx_a, Occ::new(1, i1), Value::Int(0));
    g.copy(ctx_a, Occ::new(1, i2), Occ::new(1, s1));
    g.call(
        ctx_a,
        Occ::lhs(out),
        "pair2",
        [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
    );
    let ctx_b = g.production("twist_b", root, &[x]);
    g.constant(ctx_b, Occ::new(1, i2), Value::Int(0));
    g.copy(ctx_b, Occ::new(1, i1), Occ::new(1, s2));
    g.call(
        ctx_b,
        Occ::lhs(out),
        "pair2",
        [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
    );
    let leaf = g.production("twistleaf", x, &[]);
    g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
    g.copy(leaf, Occ::lhs(s2), Occ::lhs(i2));
    let _ = Arg::Token; // silence unused-import lints on some configs
}

/// Builds a random tree of roughly `target` nodes for a synthetic grammar
/// (following `chain`/`leaf` productions; forks and recursion with small
/// probability so trees stay bounded).
pub fn synthetic_tree(
    g: &Grammar,
    profile: &SynthProfile,
    target: usize,
    seed: u64,
) -> fnc2_ag::Tree {
    let _ = profile;
    let mut rng = Rng::seed_from_u64(seed);
    let mut tb = fnc2_ag::TreeBuilder::new(g);
    // Recursive descent over phylum indices.
    fn grow(
        g: &Grammar,
        tb: &mut fnc2_ag::TreeBuilder,
        rng: &mut Rng,
        i: usize,
        budget: &mut isize,
    ) -> fnc2_ag::NodeId {
        *budget -= 1;
        let leaf = g.production_by_name(&format!("leaf{i}")).expect("leaf");
        let chain = g.production_by_name(&format!("chain{i}"));
        let rec = g.production_by_name(&format!("rec{i}"));
        if *budget <= 0 {
            return tb.node(leaf, &[]).expect("leaf builds");
        }
        if let Some(r) = rec {
            // Spend the remaining budget on recursion chains: depth is the
            // input-size knob of synthetic workloads.
            let reps = if *budget > 8 {
                rng.gen_range(1, (*budget / 20).clamp(1, 64) as i64) as usize
            } else {
                0
            };
            if reps > 0 {
                *budget -= reps as isize;
                let mut cur = grow(g, tb, rng, i, budget);
                for _ in 0..reps {
                    cur = tb.node(r, &[cur]).expect("rec builds");
                }
                return cur;
            }
        }
        match chain {
            Some(c) => {
                let child = grow(g, tb, rng, i + 1, budget);
                tb.node(c, &[child]).expect("chain builds")
            }
            None => tb.node(leaf, &[]).expect("leaf builds"),
        }
    }
    let mut budget = target as isize;
    let first = grow(g, &mut tb, &mut rng, 0, &mut budget);
    let start = g.production_by_name("start").expect("start");
    let root = tb.node(start, &[first]).expect("start builds");
    tb.finish_root(root).expect("root phylum")
}

#[cfg(test)]
mod tests {
    use fnc2_analysis::{classify, AgClass, Inclusion};

    use super::*;

    #[test]
    fn profiles_hit_their_classes() {
        for p in &TABLE1_PROFILES {
            let g = synthetic(p);
            let c = classify(&g, 1, Inclusion::Long).unwrap();
            let want = match p.class {
                TargetClass::Oag0 => AgClass::Oag0,
                TargetClass::Oag1 => AgClass::OagK(1),
                TargetClass::Dnc => AgClass::Dnc,
                TargetClass::SncOnly => AgClass::Snc,
            };
            assert_eq!(c.class, want, "profile {}", p.name);
            assert!(c.is_evaluable());
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = synthetic(&TABLE1_PROFILES[0]);
        let b = synthetic(&TABLE1_PROFILES[0]);
        assert_eq!(a.production_count(), b.production_count());
        assert_eq!(a.rule_count(), b.rule_count());
        assert_eq!(a.copy_rule_count(), b.copy_rule_count());
    }

    #[test]
    fn sizes_scale_with_profile() {
        let small = synthetic(&TABLE1_PROFILES[0]);
        let big = synthetic(&TABLE1_PROFILES[4]);
        assert!(big.phylum_count() > 2 * small.phylum_count());
        assert!(big.rule_count() > 2 * small.rule_count());
        // A realistic copy-rule proportion (> 40%).
        let ratio = big.copy_rule_count() as f64 / big.rule_count() as f64;
        assert!(ratio > 0.4, "copy ratio {ratio}");
    }

    #[test]
    fn synthetic_trees_evaluate() {
        let p = &TABLE1_PROFILES[0];
        let g = synthetic(p);
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        let seqs = fnc2_visit::build_visit_seqs(&g, &c.l_ordered.unwrap());
        let ev = fnc2_visit::Evaluator::new(&g, &seqs);
        let tree = synthetic_tree(&g, p, 200, 7);
        assert!(tree.size() >= 20);
        let (vals, stats) = ev.evaluate(&tree, &Default::default()).unwrap();
        let root = g.phylum_by_name("Root").unwrap();
        let out = g.attr_by_name(root, "out").unwrap();
        assert!(vals.get(&g, tree.root(), out).is_some());
        assert!(stats.evals > 0);
    }
}
