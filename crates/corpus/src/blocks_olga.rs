//! The block-structured scope checker written in OLGA — the corpus's
//! multi-visit exercise of the full language chain: declarations anywhere
//! in a block are visible throughout it, which forces two visits per list
//! phylum (collect `defs` bottom-up, then push `env` down and collect
//! `errs`). Uses the `concat` rule model for error collection.

use fnc2_ag::Grammar;
use fnc2_olga::{compile_ag_source, LowerInfo};

/// The OLGA source: definitions tracked as a name list, membership via a
/// recursive lookup, error collection via the `concat` rule model.
pub const BLOCKS_OLGA_LIST: &str = r#"
attribute grammar blocks2;
  phylum Prog, Items, Item;
  root Prog;
  operator prog   : Prog ::= Items;
  operator cons   : Items ::= Item Items;
  operator nil    : Items ::= ;
  operator decl   : Item ::= ;
  operator use    : Item ::= ;
  operator nested : Item ::= Items;

  synthesized errs : list of string of Prog, Items, Item with concat;
  synthesized defs : list of string of Items, Item with concat;
  inherited env : list of string of Items, Item;

  function member(k : string, l : list of string) : bool =
    case l of [] => false | x :: rest => x = k or member(k, rest) end;

  for prog {
    Items.env := Items.defs;
  }
  -- cons: defs and errs come from the concat model; env copies down.
  for nil { Items.defs := []; Items.errs := []; }
  for decl {
    Item.defs := [token()];
    Item.errs := [];
  }
  for use {
    Item.defs := [];
    Item.errs :=
      if member(token(), Item.env) then [] else ["undeclared " ++ token()] end;
  }
  for nested {
    Item.defs := [];
    Items.env := Item.env ++ Items.defs;
  }
end
"#;

/// Compiles the OLGA source.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a corpus bug).
pub fn blocks_olga() -> (Grammar, LowerInfo) {
    compile_ag_source(BLOCKS_OLGA_LIST).expect("embedded blocks AG compiles")
}

#[cfg(test)]
mod tests {
    use fnc2_analysis::{classify, AgClass, Inclusion};
    use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

    use super::*;

    fn tree_from_spec(g: &Grammar, spec: &str) -> fnc2_ag::Tree {
        // Reuse the builder-corpus spec syntax: d:x, u:x, [ … ].
        // (Identical abstract operator names.)
        crate::blocks_tree_generic(g, spec)
    }

    #[test]
    fn two_visits_from_olga() {
        let (g, info) = blocks_olga();
        assert!(info.auto_copies >= 2, "env copies generated: {info:?}");
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        assert_eq!(c.class, AgClass::Oag0);
        let lo = c.l_ordered.unwrap();
        let items = g.phylum_by_name("Items").unwrap();
        assert_eq!(
            lo.partitions_of(items)[0].visit_count(),
            2,
            "defs in visit 1, env/errs in visit 2"
        );
    }

    #[test]
    fn scope_semantics_match_the_builder_version() {
        let (g, _) = blocks_olga();
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &c.l_ordered.unwrap());
        let ev = Evaluator::new(&g, &seqs);
        for (spec, want) in [
            ("u:x d:x u:y", vec!["undeclared y"]),
            ("d:a [ u:a u:b ] u:b", vec!["undeclared b", "undeclared b"]),
            ("[ d:p u:p ] u:p", vec!["undeclared p"]),
        ] {
            let tree = tree_from_spec(&g, spec);
            let (vals, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
            let prog = g.phylum_by_name("Prog").unwrap();
            let errs = g.attr_by_name(prog, "errs").unwrap();
            let got: Vec<String> = vals
                .get(&g, tree.root(), errs)
                .unwrap()
                .as_list()
                .iter()
                .map(|v| v.as_str().to_string())
                .collect();
            assert_eq!(got, want, "spec {spec}");
        }
    }
}
