//! The desk calculator written in OLGA — the same language as
//! [`classic::desk`](crate::desk) (a `let`-bound environment threaded
//! down as an inherited map, values synthesized back up), but arriving
//! through the whole front-end chain so that tools needing *source* (the
//! compiled-table cache, the CI smoke tests, `fnc2c compile`) have a
//! small canonical L-attributed input alongside the mini-Pascal flagship.

use fnc2_ag::Grammar;
use fnc2_olga::{compile_ag_source, LowerInfo};

/// The OLGA source of the desk-calculator AG.
///
/// `letx`'s token is the bound name; `var`'s token is the name looked
/// up; `lit`'s value is derived from its token (its length — OLGA has no
/// string-to-int builtin, and the corpus only needs a deterministic
/// integer out of the leaf). `zero` is the token-free leaf, which keeps
/// the minimal derivation evaluable under default (integer) tokens.
pub const DESK_OLGA: &str = r#"
-- A desk calculator: the canonical L-attributed AG.
attribute grammar desk;
  phylum Prog, Expr;
  root Prog;

  operator prog : Prog ::= Expr;
  operator add  : Expr ::= Expr Expr;
  operator mul  : Expr ::= Expr Expr;
  operator letx : Expr ::= Expr Expr;
  operator zero : Expr ::= ;
  operator var  : Expr ::= ;
  operator lit  : Expr ::= ;

  type env = map of int;

  synthesized value : int of Prog, Expr;
  inherited  env : env of Expr;

  function deref(e : env, k : string) : int =
    if bound(e, k) then lookup(e, k) else 0 end;

  for prog {
    Prog.value := Expr.value;
    Expr.env := empty_map();
  }
  for add {
    Expr$1.value := Expr$2.value + Expr$3.value;
    Expr$2.env := Expr$1.env;
    Expr$3.env := Expr$1.env;
  }
  for mul {
    Expr$1.value := Expr$2.value * Expr$3.value;
    Expr$2.env := Expr$1.env;
    Expr$3.env := Expr$1.env;
  }
  for letx {
    Expr$2.env := Expr$1.env;
    Expr$3.env := insert(Expr$1.env, token(), Expr$2.value);
    Expr$1.value := Expr$3.value;
  }
  for zero { Expr.value := 0; }
  for var { Expr.value := deref(Expr.env, token()); }
  for lit { Expr.value := strlen(token()); }
end
"#;

/// Compiles [`DESK_OLGA`] through the full front end.
///
/// # Panics
///
/// Panics if the embedded source stops compiling — a corpus regression.
#[must_use]
pub fn desk_olga() -> (Grammar, LowerInfo) {
    compile_ag_source(DESK_OLGA).expect("embedded desk AG compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desk_olga_compiles_and_is_oag() {
        let (g, _) = desk_olga();
        assert_eq!(g.phylum_count(), 2);
        assert_eq!(g.production_count(), 7);
        let cls = fnc2_analysis::classify(&g, 1, fnc2_analysis::Inclusion::Long).unwrap();
        assert!(
            cls.is_evaluable(),
            "desk must be evaluable: {:?}",
            cls.class
        );
    }
}
