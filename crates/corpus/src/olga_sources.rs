//! Sized OLGA source generators — the Table 2/3 workloads.
//!
//! The paper measures the bootstrapped system on FNC-2's own OLGA sources:
//! seven AGs (Table 2) and six declaration/definition module pairs C1/F1 …
//! C6/F6 (Table 3, 86–3188 lines). Those sources are not available; the
//! substitution generates well-typed OLGA texts of matching line counts so
//! the same pipeline phases (input = lex+parse, typing = check,
//! translator = to-C) run at the same scale.

/// The Table 3 module names with the paper's line counts.
pub const TABLE3_MODULES: [(&str, usize); 12] = [
    ("C1", 189),
    ("F1", 372),
    ("C2", 320),
    ("F2", 3188),
    ("C3", 268),
    ("F3", 1083),
    ("C4", 390),
    ("F4", 1186),
    ("C5", 391),
    ("F5", 905),
    ("C6", 86),
    ("F6", 268),
];

/// Generates a well-typed OLGA module of approximately `lines` lines.
///
/// Declaration modules (`Cn`) are mostly types/constants/signature-ish
/// one-line functions; definition modules (`Fn`) carry larger recursive
/// function bodies — matching the paper's split.
pub fn module_source(name: &str, lines: usize) -> String {
    let declaration_style = name.starts_with('C');
    let mut out = format!("module {};\n", name.to_lowercase());
    // Rough line accounting: header + end = 2.
    let mut remaining = lines.saturating_sub(2);
    let mut k = 0usize;
    while remaining > 0 {
        if declaration_style {
            // ~3 lines per item.
            out.push_str(&format!(
                "  type ty{k} = map of tuple(int, string);\n  const k{k} : int = {k} * 2 + 1;\n  function get{k}(e : ty{k}, n : string) : int =\n    if bound(e, n) then case lookup(e, n) of (a, _) => a end else 0 end;\n"
            ));
            remaining = remaining.saturating_sub(4);
        } else {
            // ~8 lines per item: a recursive worker and a wrapper.
            out.push_str(&format!(
                "  function sum{k}(l : list of int, acc : int) : int =\n    case l of\n      [] => acc\n    | x :: r => sum{k}(r, acc + x * {k})\n    end;\n  function wrap{k}(n : int) : int =\n    let base = n + {k} in\n      if base < 0 then 0 - base else sum{k}([base, base + 1, base + 2], 0) end\n    end;\n"
            ));
            remaining = remaining.saturating_sub(9);
        }
        k += 1;
    }
    out.push_str("end\n");
    out
}

/// Generates a well-typed OLGA attribute grammar of approximately `lines`
/// lines: a chain of phyla with threaded attributes and per-operator
/// computed rules, the shape of the system's own AGs.
pub fn sized_ag_source(name: &str, lines: usize) -> String {
    let mut out = String::new();
    // Leading helper module (counted).
    out.push_str(&format!(
        "module lib_{name};\n  export step;\n  function step(x : int, k : int) : int =\n    if x < 0 then 0 - x + k else x + k end;\nend\n\nattribute grammar {name};\n  import step from lib_{name};\n"
    ));
    // Each segment adds a phylum + two operators + rules: ~12 lines.
    let segments = (lines.saturating_sub(20) / 12).max(1);
    out.push_str("  phylum S0");
    for i in 1..=segments {
        out.push_str(&format!(", S{i}"));
    }
    out.push_str(";\n  root S0;\n");
    for i in 0..segments {
        out.push_str(&format!("  operator mk{i} : S{i} ::= S{};\n", i + 1));
    }
    out.push_str(&format!("  operator stop : S{segments} ::= ;\n"));
    for i in 0..=segments {
        out.push_str(&format!("  synthesized up{i} : int of S{i};\n"));
        if i > 0 {
            out.push_str(&format!("  inherited dn{i} : int of S{i};\n"));
        }
    }
    for i in 0..segments {
        out.push_str(&format!(
            "  for mk{i} {{\n    S{}.dn{} := {};\n    S{i}.up{i} := step(S{}.up{}, {i});\n  }}\n",
            i + 1,
            i + 1,
            if i == 0 {
                "1".to_string()
            } else {
                format!("S{i}.dn{i} + 1")
            },
            i + 1,
            i + 1,
        ));
    }
    out.push_str(&format!(
        "  for stop {{ S{segments}.up{segments} := S{segments}.dn{segments}; }}\nend\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_sources_check_and_match_size() {
        for (name, lines) in TABLE3_MODULES {
            let src = module_source(name, lines);
            let actual = src.lines().count();
            assert!(
                actual.abs_diff(lines) <= 12,
                "{name}: wanted ~{lines}, got {actual}"
            );
            fnc2_olga::compile_modules(&src)
                .unwrap_or_else(|e| panic!("{name} fails to check: {e}"));
        }
    }

    #[test]
    fn sized_ags_compile_and_classify() {
        for lines in [150, 400] {
            let src = sized_ag_source("g", lines);
            let (grammar, _) = fnc2_olga::compile_ag_source(&src).unwrap_or_else(|e| panic!("{e}"));
            let c = fnc2_analysis::classify(&grammar, 0, fnc2_analysis::Inclusion::Long).unwrap();
            assert!(c.is_evaluable());
            assert!(grammar.production_count() >= 5);
        }
    }
}
