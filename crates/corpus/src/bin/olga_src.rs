//! Prints an embedded corpus OLGA source by name — plumbing for shell
//! scripts and CI jobs that feed `fnc2c` real grammars without keeping a
//! second copy of the sources in the tree.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(name), None) = (args.next(), args.next()) else {
        eprintln!("usage: olga_src <minipascal | desk | blocks>");
        return ExitCode::FAILURE;
    };
    let src = match name.as_str() {
        "minipascal" => fnc2_corpus::MINIPASCAL_OLGA,
        "desk" => fnc2_corpus::DESK_OLGA,
        "blocks" => fnc2_corpus::BLOCKS_OLGA_LIST,
        other => {
            eprintln!("olga_src: unknown corpus grammar `{other}` (minipascal, desk, blocks)");
            return ExitCode::FAILURE;
        }
    };
    print!("{src}");
    ExitCode::SUCCESS
}
