//! A tiny deterministic PRNG (SplitMix64) for the synthetic corpus,
//! property tests, and benchmarks.
//!
//! The repo builds offline, so the corpus cannot lean on an external
//! `rand`; SplitMix64 is more than enough for seeded test-input shaping
//! (it is *not* cryptographic and is not meant to be).

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`; the same seed always yields the
    /// same stream.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range: {lo} > {hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform `usize` in `lo..=hi`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as i64, hi as i64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_usize(0, items.len() - 1)]
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_usize(0, i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_inclusive_and_covered() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(2, 6);
            assert!((2..=6).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.gen_range(3, 3), 3);
    }

    #[test]
    fn bool_probability_is_roughly_right() {
        let mut r = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
