//! The classic attribute grammars every AG paper exercises.

use fnc2_ag::{Arg, Grammar, GrammarBuilder, Occ, Tree, TreeBuilder, Value};

/// Knuth's binary-number grammar (the 1968 original, with fractions):
/// `Number ::= Seq | Seq '.' Seq`, `value` synthesized, `scale` inherited.
pub fn binary() -> Grammar {
    let mut g = GrammarBuilder::new("binary");
    let number = g.phylum("Number");
    let seq = g.phylum("Seq");
    let bit = g.phylum("Bit");

    let n_value = g.syn(number, "value");
    let s_value = g.syn(seq, "value");
    let s_len = g.syn(seq, "length");
    let s_scale = g.inh(seq, "scale");
    let b_value = g.syn(bit, "value");
    let b_scale = g.inh(bit, "scale");

    g.func("add", 2, |a| Value::Real(a[0].as_real() + a[1].as_real()));
    g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
    g.func("neg", 1, |a| Value::Int(-a[0].as_int()));
    g.func("sub_len", 1, |a| Value::Int(-a[0].as_int()));
    g.func("pow2", 1, |a| Value::Real(2f64.powi(a[0].as_int() as i32)));

    // number : Number ::= Seq
    let number_p = g.production("number", number, &[seq]);
    g.copy(number_p, Occ::lhs(n_value), Occ::new(1, s_value));
    g.constant(number_p, Occ::new(1, s_scale), Value::Int(0));

    // fraction : Number ::= Seq Seq   ("b1…bn . c1…cm")
    let fraction = g.production("fraction", number, &[seq, seq]);
    g.call(
        fraction,
        Occ::lhs(n_value),
        "add",
        [Occ::new(1, s_value).into(), Occ::new(2, s_value).into()],
    );
    g.constant(fraction, Occ::new(1, s_scale), Value::Int(0));
    // The fractional part's scale is -length.
    g.call(
        fraction,
        Occ::new(2, s_scale),
        "sub_len",
        [Occ::new(2, s_len).into()],
    );

    // pair : Seq ::= Seq Bit
    let pair = g.production("pair", seq, &[seq, bit]);
    g.call(
        pair,
        Occ::lhs(s_value),
        "add",
        [Occ::new(1, s_value).into(), Occ::new(2, b_value).into()],
    );
    g.call(pair, Occ::lhs(s_len), "succ", [Occ::new(1, s_len).into()]);
    g.call(
        pair,
        Occ::new(1, s_scale),
        "succ",
        [Occ::lhs(s_scale).into()],
    );
    g.copy(pair, Occ::new(2, b_scale), Occ::lhs(s_scale));

    // single : Seq ::= Bit
    let single = g.production("single", seq, &[bit]);
    g.copy(single, Occ::lhs(s_value), Occ::new(1, b_value));
    g.constant(single, Occ::lhs(s_len), Value::Int(1));
    g.copy(single, Occ::new(1, b_scale), Occ::lhs(s_scale));

    let zero = g.production("zero", bit, &[]);
    g.constant(zero, Occ::lhs(b_value), Value::Real(0.0));
    let one = g.production("one", bit, &[]);
    g.call(one, Occ::lhs(b_value), "pow2", [Occ::lhs(b_scale).into()]);

    g.finish().expect("binary grammar is well-defined")
}

/// Builds the tree of a binary literal like `"1101"` or `"110.01"`.
///
/// # Panics
///
/// Panics on characters other than `0`, `1` and at most one `.`.
pub fn binary_tree(g: &Grammar, text: &str) -> Tree {
    fn seq(tb: &mut TreeBuilder, bits: &str) -> fnc2_ag::NodeId {
        let mut it = bits.chars();
        let first = it.next().expect("nonempty bit string");
        let mut cur = {
            let b = tb
                .op(if first == '1' { "one" } else { "zero" }, &[])
                .unwrap();
            tb.op("single", &[b]).unwrap()
        };
        for c in it {
            let b = tb.op(if c == '1' { "one" } else { "zero" }, &[]).unwrap();
            cur = tb.op("pair", &[cur, b]).unwrap();
        }
        cur
    }
    let mut tb = TreeBuilder::new(g);
    let root = match text.split_once('.') {
        None => {
            let s = seq(&mut tb, text);
            tb.op("number", &[s]).unwrap()
        }
        Some((int, frac)) => {
            let a = seq(&mut tb, int);
            let b = seq(&mut tb, frac);
            tb.op("fraction", &[a, b]).unwrap()
        }
    };
    tb.finish_root(root).expect("root phylum")
}

/// A desk calculator with an environment of variables: `let`-bound names
/// threaded down as an inherited map — the canonical L-attributed AG.
pub fn desk() -> Grammar {
    let mut g = GrammarBuilder::new("desk");
    let prog = g.phylum("Prog");
    let expr = g.phylum("Expr");

    let p_value = g.syn(prog, "value");
    let e_value = g.syn(expr, "value");
    let e_env = g.inh(expr, "env");

    g.func("add", 2, |a| {
        Value::Int(a[0].as_int().wrapping_add(a[1].as_int()))
    });
    g.func("mul", 2, |a| {
        Value::Int(a[0].as_int().wrapping_mul(a[1].as_int()))
    });
    g.func("bind", 3, |a| a[0].map_insert(a[1].as_str(), a[2].clone()));
    g.func("deref", 2, |a| {
        a[0].map_get(a[1].as_str())
            .cloned()
            .unwrap_or(Value::Int(0))
    });

    // prog : Prog ::= Expr
    let prog_p = g.production("prog", prog, &[expr]);
    g.copy(prog_p, Occ::lhs(p_value), Occ::new(1, e_value));
    g.constant(prog_p, Occ::new(1, e_env), Value::empty_map());

    // add : Expr ::= Expr Expr
    let add = g.production("add", expr, &[expr, expr]);
    g.call(
        add,
        Occ::lhs(e_value),
        "add",
        [Occ::new(1, e_value).into(), Occ::new(2, e_value).into()],
    );
    g.copy(add, Occ::new(1, e_env), Occ::lhs(e_env));
    g.copy(add, Occ::new(2, e_env), Occ::lhs(e_env));

    // mul : Expr ::= Expr Expr
    let mul = g.production("mul", expr, &[expr, expr]);
    g.call(
        mul,
        Occ::lhs(e_value),
        "mul",
        [Occ::new(1, e_value).into(), Occ::new(2, e_value).into()],
    );
    g.copy(mul, Occ::new(1, e_env), Occ::lhs(e_env));
    g.copy(mul, Occ::new(2, e_env), Occ::lhs(e_env));

    // let : Expr ::= Expr Expr   (token = name; env of body is extended)
    let let_p = g.production("letx", expr, &[expr, expr]);
    g.copy(let_p, Occ::new(1, e_env), Occ::lhs(e_env));
    g.call(
        let_p,
        Occ::new(2, e_env),
        "bind",
        [
            Occ::lhs(e_env).into(),
            Arg::Token,
            Occ::new(1, e_value).into(),
        ],
    );
    g.copy(let_p, Occ::lhs(e_value), Occ::new(2, e_value));

    // var : Expr ::=   (token = name)
    let var = g.production("var", expr, &[]);
    g.call(
        var,
        Occ::lhs(e_value),
        "deref",
        [Occ::lhs(e_env).into(), Arg::Token],
    );

    // lit : Expr ::=   (token = value)
    let lit = g.production("lit", expr, &[]);
    g.copy(lit, Occ::lhs(e_value), Arg::Token);

    g.finish().expect("desk grammar is well-defined")
}

/// A block-structured scope checker: declarations anywhere in a block are
/// visible throughout it, so every block takes **two visits** — collect the
/// declarations bottom-up, then distribute the environment and check uses.
/// The classic OAG example whose phyla genuinely need 2-visit partitions.
pub fn blocks() -> Grammar {
    let mut g = GrammarBuilder::new("blocks");
    let prog = g.phylum("Prog");
    let items = g.phylum("Items");
    let item = g.phylum("Item");

    let p_errors = g.syn(prog, "errors");
    // Visit 1: collect declared names (synthesized).
    let is_decls = g.syn(items, "decls");
    let i_decls = g.syn(item, "decls");
    // Visit 2: the complete environment comes down, errors go up.
    let is_env = g.inh(items, "env");
    let i_env = g.inh(item, "env");
    let is_errors = g.syn(items, "errors");
    let i_errors = g.syn(item, "errors");

    g.func("union", 2, |a| {
        let mut m = a[0].as_map().clone();
        for (k, v) in a[1].as_map() {
            m.insert(k.clone(), v.clone());
        }
        Value::Map(std::sync::Arc::new(m))
    });
    g.func("decl1", 1, |a| {
        Value::empty_map().map_insert(a[0].as_str(), Value::Bool(true))
    });
    g.func("check_use", 2, |a| {
        if a[0].map_get(a[1].as_str()).is_some() {
            Value::list([])
        } else {
            Value::list([Value::str(format!("undeclared `{}`", a[1].as_str()))])
        }
    });
    g.func("cat", 2, |a| {
        Value::list(a[0].as_list().iter().chain(a[1].as_list()).cloned())
    });

    // prog : Prog ::= Items — env of the block = its own declarations.
    let prog_p = g.production("prog", prog, &[items]);
    g.copy(prog_p, Occ::lhs(p_errors), Occ::new(1, is_errors));
    g.copy(prog_p, Occ::new(1, is_env), Occ::new(1, is_decls));

    // cons : Items ::= Item Items
    let cons = g.production("cons", items, &[item, items]);
    g.call(
        cons,
        Occ::lhs(is_decls),
        "union",
        [Occ::new(1, i_decls).into(), Occ::new(2, is_decls).into()],
    );
    g.copy(cons, Occ::new(1, i_env), Occ::lhs(is_env));
    g.copy(cons, Occ::new(2, is_env), Occ::lhs(is_env));
    g.call(
        cons,
        Occ::lhs(is_errors),
        "cat",
        [Occ::new(1, i_errors).into(), Occ::new(2, is_errors).into()],
    );

    // nil : Items ::=
    let nil = g.production("nil", items, &[]);
    g.constant(nil, Occ::lhs(is_decls), Value::empty_map());
    g.constant(nil, Occ::lhs(is_errors), Value::list([]));

    // decl : Item ::=   (token = declared name)
    let decl = g.production("decl", item, &[]);
    g.call(decl, Occ::lhs(i_decls), "decl1", [Arg::Token]);
    g.constant(decl, Occ::lhs(i_errors), Value::list([]));

    // use : Item ::=    (token = used name)
    let use_p = g.production("use", item, &[]);
    g.constant(use_p, Occ::lhs(i_decls), Value::empty_map());
    g.call(
        use_p,
        Occ::lhs(i_errors),
        "check_use",
        [Occ::lhs(i_env).into(), Arg::Token],
    );

    // nested : Item ::= Items — an inner block: its declarations are
    // private (nothing exported), and it sees the outer environment
    // extended with its own declarations.
    let nested = g.production("nested", item, &[items]);
    g.constant(nested, Occ::lhs(i_decls), Value::empty_map());
    g.call(
        nested,
        Occ::new(1, is_env),
        "union",
        [Occ::lhs(i_env).into(), Occ::new(1, is_decls).into()],
    );
    g.copy(nested, Occ::lhs(i_errors), Occ::new(1, is_errors));

    g.finish().expect("blocks grammar is well-defined")
}

/// Builds a `blocks` tree from a tiny spec string: `d:x` declares x,
/// `u:x` uses x, `[ … ]` opens a nested block. Items are whitespace
/// separated.
///
/// # Panics
///
/// Panics on malformed specs.
pub fn blocks_tree(g: &Grammar, spec: &str) -> Tree {
    blocks_tree_generic(g, spec)
}

/// Generic spec-driven tree builder shared by the builder-API `blocks`
/// grammar and the OLGA `blocks2` grammar (identical operator names).
///
/// # Panics
///
/// Panics on malformed specs.
pub fn blocks_tree_generic(g: &Grammar, spec: &str) -> Tree {
    #[derive(Debug)]
    enum ItemSpec {
        Decl(String),
        Use(String),
        Block(Vec<ItemSpec>),
    }
    fn parse(tokens: &mut std::iter::Peekable<std::str::SplitWhitespace>) -> Vec<ItemSpec> {
        let mut out = Vec::new();
        while let Some(&t) = tokens.peek() {
            match t {
                "]" => {
                    tokens.next();
                    break;
                }
                "[" => {
                    tokens.next();
                    out.push(ItemSpec::Block(parse(tokens)));
                }
                t if t.starts_with("d:") => {
                    out.push(ItemSpec::Decl(t[2..].to_string()));
                    tokens.next();
                }
                t if t.starts_with("u:") => {
                    out.push(ItemSpec::Use(t[2..].to_string()));
                    tokens.next();
                }
                other => panic!("bad item spec `{other}`"),
            }
        }
        out
    }
    fn build_items(g: &Grammar, tb: &mut TreeBuilder, items: &[ItemSpec]) -> fnc2_ag::NodeId {
        match items.split_first() {
            None => tb.op("nil", &[]).unwrap(),
            Some((first, rest)) => {
                let item = match first {
                    ItemSpec::Decl(n) => tb
                        .node_with_token(
                            g.production_by_name("decl").unwrap(),
                            &[],
                            Some(Value::str(n)),
                        )
                        .unwrap(),
                    ItemSpec::Use(n) => tb
                        .node_with_token(
                            g.production_by_name("use").unwrap(),
                            &[],
                            Some(Value::str(n)),
                        )
                        .unwrap(),
                    ItemSpec::Block(inner) => {
                        let body = build_items(g, tb, inner);
                        tb.op("nested", &[body]).unwrap()
                    }
                };
                let tail = build_items(g, tb, rest);
                tb.op("cons", &[item, tail]).unwrap()
            }
        }
    }
    let mut tokens = spec.split_whitespace().peekable();
    let items = parse(&mut tokens);
    let mut tb = TreeBuilder::new(g);
    let body = build_items(g, &mut tb, &items);
    let root = tb.op("prog", &[body]).unwrap();
    tb.finish_root(root).expect("root phylum")
}

#[cfg(test)]
mod tests {
    use fnc2_ag::AttrValues;

    use super::*;

    fn evaluate(g: &Grammar, tree: &Tree) -> AttrValues {
        let ev = fnc2_visit::DynamicEvaluator::new(g);
        let (values, _) = ev
            .evaluate(tree, &fnc2_visit::RootInputs::new())
            .expect("evaluation succeeds");
        values
    }

    #[test]
    fn binary_values() {
        let g = binary();
        for (text, want) in [("1101", 13.0), ("110.01", 6.25), ("0", 0.0), ("1.1", 1.5)] {
            let tree = binary_tree(&g, text);
            let vals = evaluate(&g, &tree);
            let number = g.phylum_by_name("Number").unwrap();
            let value = g.attr_by_name(number, "value").unwrap();
            assert_eq!(
                vals.get(&g, tree.root(), value),
                Some(&Value::Real(want)),
                "value of {text}"
            );
        }
    }

    #[test]
    fn desk_evaluates_lets() {
        let g = desk();
        // let x = 2+3 in x * x
        let mut tb = TreeBuilder::new(&g);
        let lit2 = tb
            .node_with_token(
                g.production_by_name("lit").unwrap(),
                &[],
                Some(Value::Int(2)),
            )
            .unwrap();
        let lit3 = tb
            .node_with_token(
                g.production_by_name("lit").unwrap(),
                &[],
                Some(Value::Int(3)),
            )
            .unwrap();
        let sum = tb.op("add", &[lit2, lit3]).unwrap();
        let x1 = tb
            .node_with_token(
                g.production_by_name("var").unwrap(),
                &[],
                Some(Value::str("x")),
            )
            .unwrap();
        let x2 = tb
            .node_with_token(
                g.production_by_name("var").unwrap(),
                &[],
                Some(Value::str("x")),
            )
            .unwrap();
        let body = tb.op("mul", &[x1, x2]).unwrap();
        let letx = tb
            .node_with_token(
                g.production_by_name("letx").unwrap(),
                &[sum, body],
                Some(Value::str("x")),
            )
            .unwrap();
        let root = tb.op("prog", &[letx]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        let vals = evaluate(&g, &tree);
        let prog = g.phylum_by_name("Prog").unwrap();
        let value = g.attr_by_name(prog, "value").unwrap();
        assert_eq!(vals.get(&g, tree.root(), value), Some(&Value::Int(25)));
    }

    #[test]
    fn blocks_scoping() {
        let g = blocks();
        // x declared after use is still fine; y is undeclared; inner block
        // sees outer declarations.
        let tree = blocks_tree(&g, "u:x d:x u:y [ u:x d:z u:z ]");
        let vals = evaluate(&g, &tree);
        let prog = g.phylum_by_name("Prog").unwrap();
        let errors = g.attr_by_name(prog, "errors").unwrap();
        let errs = vals
            .get(&g, tree.root(), errors)
            .unwrap()
            .as_list()
            .to_vec();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].as_str(), "undeclared `y`");
    }

    #[test]
    fn blocks_needs_two_visits() {
        let g = blocks();
        let c = fnc2_analysis::classify(&g, 1, fnc2_analysis::Inclusion::Long).unwrap();
        assert_eq!(c.class, fnc2_analysis::AgClass::Oag0);
        let lo = c.l_ordered.unwrap();
        let items = g.phylum_by_name("Items").unwrap();
        assert_eq!(lo.partitions_of(items)[0].visit_count(), 2);
    }

    #[test]
    fn classics_classify() {
        for (g, want) in [
            (binary(), fnc2_analysis::AgClass::Oag0),
            (desk(), fnc2_analysis::AgClass::Oag0),
        ] {
            let c = fnc2_analysis::classify(&g, 1, fnc2_analysis::Inclusion::Long).unwrap();
            assert_eq!(c.class, want, "grammar {}", g.name());
        }
    }
}
