//! Pathological tree *shapes* for the robustness suite: grammars that are
//! classification-friendly (plain SNC, one visit) but whose instances
//! stress the evaluators' resource envelope — chains deep enough to
//! overflow any recursive driver, nodes wide enough to stress per-visit
//! fan-out, and concat rules whose values balloon geometrically so the
//! value-cell budget has something real to meter.

use fnc2_ag::{Grammar, GrammarBuilder, NodeId, Occ, Tree, TreeBuilder, Value};

/// A chain grammar: `root : S ::= C`, `link : C ::= C`, `nil : C ::= ;`
/// with an inherited `level` counting down the spine and a synthesized
/// `depth` counting back up. On a chain of `n` links the root's `out` is
/// `2 n`: every link contributes one increment in each direction, so the
/// value doubles as a self-check of both attribute flows.
pub fn chain() -> Grammar {
    let mut g = GrammarBuilder::new("chain");
    let s = g.phylum("S");
    let c = g.phylum("C");
    g.set_root(s);
    let out = g.syn(s, "out");
    let level = g.inh(c, "level");
    let depth = g.syn(c, "depth");
    g.func("inc", 1, |v| Value::Int(v[0].as_int() + 1));
    let root = g.production("root", s, &[c]);
    g.constant(root, Occ::new(1, level), Value::Int(0));
    g.copy(root, Occ::lhs(out), Occ::new(1, depth));
    let link = g.production("link", c, &[c]);
    g.call(link, Occ::new(1, level), "inc", [Occ::lhs(level).into()]);
    g.call(link, Occ::lhs(depth), "inc", [Occ::new(1, depth).into()]);
    let nil = g.production("nil", c, &[]);
    g.copy(nil, Occ::lhs(depth), Occ::lhs(level));
    g.finish().expect("well-defined")
}

/// Builds a chain tree with `links` `link` nodes above the `nil` leaf.
/// `links = 100_000` gives a tree more than 100k deep — any evaluator
/// still recursing over the spine dies here, which is the point.
pub fn chain_tree(g: &Grammar, links: usize) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let mut spine = tb.op("nil", &[]).expect("nil");
    for _ in 0..links {
        spine = tb.op("link", &[spine]).expect("link");
    }
    let root = tb.op("root", &[spine]).expect("root");
    tb.finish_root(root).expect("chain tree")
}

/// The expected root `out` of [`chain_tree`] with `links` links.
pub fn chain_expected(links: usize) -> i64 {
    2 * links as i64
}

/// A flat grammar with one `wide : S ::= C × width` production: a single
/// node owning `width` children, each child seeded with its position and
/// the root summing all of them. `flat(10_000)` puts ten thousand child
/// visits (and a 10k-ary semantic rule) inside one visit sequence.
pub fn flat(width: usize) -> Grammar {
    assert!(width >= 1, "at least one child");
    let mut g = GrammarBuilder::new("flat");
    let s = g.phylum("S");
    let c = g.phylum("C");
    g.set_root(s);
    let out = g.syn(s, "out");
    let seed = g.inh(c, "seed");
    let v = g.syn(c, "v");
    g.func("inc", 1, |vals| Value::Int(vals[0].as_int() + 1));
    g.func("sum_all", width, |vals| {
        Value::Int(vals.iter().map(Value::as_int).sum())
    });
    let rhs = vec![c; width];
    let wide = g.production("wide", s, &rhs);
    for j in 1..=width {
        g.constant(wide, Occ::new(j as u16, seed), Value::Int(j as i64));
    }
    let args: Vec<_> = (1..=width).map(|j| Occ::new(j as u16, v).into()).collect();
    g.call(wide, Occ::lhs(out), "sum_all", args);
    let leaf = g.production("leaf", c, &[]);
    g.call(leaf, Occ::lhs(v), "inc", [Occ::lhs(seed).into()]);
    g.finish().expect("well-defined")
}

/// Builds the single flat tree of a [`flat`] grammar: one `wide` node with
/// as many `leaf` children as the grammar's `wide` production declares.
pub fn flat_tree(g: &Grammar) -> Tree {
    let wide = g.production_by_name("wide").expect("flat grammar");
    let width = g.production(wide).rhs().len();
    let mut tb = TreeBuilder::new(g);
    let leaves: Vec<NodeId> = (0..width)
        .map(|_| tb.op("leaf", &[]).expect("leaf"))
        .collect();
    let root = tb.op("wide", &leaves).expect("wide");
    tb.finish_root(root).expect("flat tree")
}

/// The expected root `out` of [`flat_tree`]: `seed + 1` summed over seeds
/// `1..=width`.
pub fn flat_expected(width: usize) -> i64 {
    let w = width as i64;
    w * (w + 3) / 2
}

/// A value-ballooning concat grammar: each `grow` link doubles the list
/// flowing up the spine (`blob := blob ++ blob`), so a chain of `d` grow
/// nodes materializes a list of `2^d` elements — geometric growth that
/// only a value-cell budget can stop before memory does. The root reports
/// the final length, so survivors are still cheap to check.
pub fn balloon() -> Grammar {
    let mut g = GrammarBuilder::new("balloon");
    let s = g.phylum("S");
    let c = g.phylum("C");
    g.set_root(s);
    let out = g.syn(s, "out");
    let blob = g.syn(c, "blob");
    g.func("double", 1, |v| {
        let items = v[0].as_list();
        Value::list(items.iter().chain(items.iter()).cloned())
    });
    g.func("len", 1, |v| Value::Int(v[0].as_list().len() as i64));
    let root = g.production("root", s, &[c]);
    g.call(root, Occ::lhs(out), "len", [Occ::new(1, blob).into()]);
    let grow = g.production("grow", c, &[c]);
    g.call(grow, Occ::lhs(blob), "double", [Occ::new(1, blob).into()]);
    let base = g.production("base", c, &[]);
    g.constant(base, Occ::lhs(blob), Value::list([Value::Int(1)]));
    g.finish().expect("well-defined")
}

/// Builds a balloon tree with `doublings` `grow` nodes: the root sees a
/// list of `2^doublings` elements.
pub fn balloon_tree(g: &Grammar, doublings: usize) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let mut spine = tb.op("base", &[]).expect("base");
    for _ in 0..doublings {
        spine = tb.op("grow", &[spine]).expect("grow");
    }
    let root = tb.op("root", &[spine]).expect("root");
    tb.finish_root(root).expect("balloon tree")
}

/// The expected root `out` of [`balloon_tree`] with `doublings` grows.
pub fn balloon_expected(doublings: usize) -> i64 {
    1_i64 << doublings
}

#[cfg(test)]
mod tests {
    use fnc2_analysis::{classify, Inclusion};
    use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

    use super::*;

    fn eval_out(g: &Grammar, tree: &Tree) -> i64 {
        let cls = classify(g, 1, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(g, cls.l_ordered.as_ref().unwrap());
        let ev = Evaluator::new(g, &seqs);
        let (vals, _) = ev.evaluate(tree, &RootInputs::new()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let out = g.attr_by_name(s, "out").unwrap();
        vals.get(g, tree.root(), out).unwrap().as_int()
    }

    #[test]
    fn chain_self_checks() {
        let g = chain();
        let t = chain_tree(&g, 500);
        assert_eq!(eval_out(&g, &t), chain_expected(500));
    }

    #[test]
    fn flat_self_checks() {
        let g = flat(64);
        let t = flat_tree(&g);
        assert_eq!(eval_out(&g, &t), flat_expected(64));
    }

    #[test]
    fn balloon_self_checks() {
        let g = balloon();
        let t = balloon_tree(&g, 10);
        assert_eq!(eval_out(&g, &t), balloon_expected(10));
    }
}
