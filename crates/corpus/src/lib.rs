//! # fnc2-corpus — the attribute-grammar corpus of the reproduction
//!
//! Real and synthetic AGs standing in for the paper's evaluation inputs
//! (which were FNC-2's own OLGA sources): the classics (Knuth's binary
//! numbers, a desk calculator, a two-visit block scope checker), the
//! mini-Pascal → P-code compiler written in OLGA, the class-ladder witness
//! grammars, and a seeded synthetic generator matched to Table 1's size
//! profiles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blocks_olga;
mod classic;
mod desk_olga;
mod minipascal;
mod olga_sources;
mod pathological;
pub mod rng;
mod shapes;
mod synthetic;

pub use blocks_olga::{blocks_olga, BLOCKS_OLGA_LIST};
pub use classic::{binary, binary_tree, blocks, blocks_tree, blocks_tree_generic, desk};
pub use desk_olga::{desk_olga, DESK_OLGA};
pub use minipascal::{
    minipascal, minipascal_scanner, parse_minipascal, sample_program, MINIPASCAL_OLGA,
};
pub use olga_sources::{module_source, sized_ag_source, TABLE3_MODULES};
pub use pathological::{circular, dnc_not_oag, nc_not_snc, oag1_not_oag0, snc_only};
pub use shapes::{
    balloon, balloon_expected, balloon_tree, chain, chain_expected, chain_tree, flat,
    flat_expected, flat_tree,
};
pub use synthetic::{synthetic, synthetic_tree, SynthProfile, TargetClass, TABLE1_PROFILES};
