//! Witness grammars separating the AG class ladder — including the shapes
//! behind Table 1's class column (an OAG(1)-not-OAG(0) grammar like AG 7,
//! an SNC grammar that is not OAG(k) for any k like AG 5, and a DNC
//! grammar outside the tested OAG levels like AG 4).

use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};

/// A circular AG: fails even the plain non-circularity test.
pub fn circular() -> Grammar {
    let mut g = GrammarBuilder::new("circular");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let out = g.syn(s, "out");
    let i = g.inh(a, "i");
    let sy = g.syn(a, "s");
    let root = g.production("root", s, &[a]);
    g.copy(root, Occ::lhs(out), Occ::new(1, sy));
    g.copy(root, Occ::new(1, i), Occ::new(1, sy));
    let leaf = g.production("leaf", a, &[]);
    g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
    g.finish().expect("well-defined (though circular)")
}

/// Non-circular but not strongly non-circular: two leaf productions
/// realize IO graphs `{i1→s1}` and `{i2→s2}` whose *union* closes a cycle
/// with the crossing context, while no single derivation does.
pub fn nc_not_snc() -> Grammar {
    let mut g = GrammarBuilder::new("nc_not_snc");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let out = g.syn(s, "out");
    let i1 = g.inh(a, "i1");
    let i2 = g.inh(a, "i2");
    let s1 = g.syn(a, "s1");
    let s2 = g.syn(a, "s2");
    g.func("pair2", 2, |v| Value::tuple([v[0].clone(), v[1].clone()]));
    let root = g.production("root", s, &[a]);
    g.copy(root, Occ::new(1, i1), Occ::new(1, s2));
    g.copy(root, Occ::new(1, i2), Occ::new(1, s1));
    g.call(
        root,
        Occ::lhs(out),
        "pair2",
        [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
    );
    let leaf1 = g.production("leaf1", a, &[]);
    g.copy(leaf1, Occ::lhs(s1), Occ::lhs(i1));
    g.constant(leaf1, Occ::lhs(s2), Value::Int(0));
    let leaf2 = g.production("leaf2", a, &[]);
    g.copy(leaf2, Occ::lhs(s2), Occ::lhs(i2));
    g.constant(leaf2, Occ::lhs(s1), Value::Int(0));
    g.finish().expect("well-defined")
}

/// Strongly non-circular but **not DNC** and not OAG(k) for any k — the AG 5
/// shape: two contexts impose opposite visit orders on `X`, so the
/// SNC → l-ordered transformation must keep **two** partitions for `X`
/// (matching the paper's "max 2" on AG 5), and `DS(X)` is cyclic.
pub fn snc_only() -> Grammar {
    let mut g = GrammarBuilder::new("snc_only");
    let s = g.phylum("S");
    let x = g.phylum("X");
    let out = g.syn(s, "out");
    let i1 = g.inh(x, "i1");
    let i2 = g.inh(x, "i2");
    let s1 = g.syn(x, "s1");
    let s2 = g.syn(x, "s2");
    g.func("pair2", 2, |v| Value::tuple([v[0].clone(), v[1].clone()]));
    // Context A: s1 feeds i2 (order i1 s1 i2 s2).
    let ctx_a = g.production("ctx_a", s, &[x]);
    g.constant(ctx_a, Occ::new(1, i1), Value::Int(0));
    g.copy(ctx_a, Occ::new(1, i2), Occ::new(1, s1));
    g.call(
        ctx_a,
        Occ::lhs(out),
        "pair2",
        [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
    );
    // Context B: s2 feeds i1 (order i2 s2 i1 s1).
    let ctx_b = g.production("ctx_b", s, &[x]);
    g.constant(ctx_b, Occ::new(1, i2), Value::Int(0));
    g.copy(ctx_b, Occ::new(1, i1), Occ::new(1, s2));
    g.call(
        ctx_b,
        Occ::lhs(out),
        "pair2",
        [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
    );
    // X's subtree: s1 from i1, s2 from i2, independently.
    let leafx = g.production("leafx", x, &[]);
    g.copy(leafx, Occ::lhs(s1), Occ::lhs(i1));
    g.copy(leafx, Occ::lhs(s2), Occ::lhs(i2));
    g.finish().expect("well-defined")
}

/// DNC and OAG(1) but **not OAG(0)** — the AG 7 shape: Kastens' partition
/// puts both synthesized attributes in the final set, but the crossing
/// production needs `s2` a visit earlier; one repair (delaying `i1`) fixes
/// it, which is exactly what "directing the system to test for OAG(k)"
/// discovers by trial and error.
pub fn oag1_not_oag0() -> Grammar {
    let mut g = GrammarBuilder::new("oag1_not_oag0");
    let s = g.phylum("S");
    let x = g.phylum("X");
    let out = g.syn(s, "out");
    let i1 = g.inh(x, "i1");
    let s1 = g.syn(x, "s1");
    let s2 = g.syn(x, "s2");
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    // cross : S ::= X X with i1(1) := s2(2) and i1(2) := s2(1).
    let cross = g.production("cross", s, &[x, x]);
    g.copy(cross, Occ::new(1, i1), Occ::new(2, s2));
    g.copy(cross, Occ::new(2, i1), Occ::new(1, s2));
    g.call(
        cross,
        Occ::lhs(out),
        "add",
        [Occ::new(1, s1).into(), Occ::new(2, s1).into()],
    );
    // leafx : s1 := i1 ; s2 := 1 (s2 is i1-independent).
    let leafx = g.production("leafx", x, &[]);
    g.copy(leafx, Occ::lhs(s1), Occ::lhs(i1));
    g.constant(leafx, Occ::lhs(s2), Value::Int(1));
    g.finish().expect("well-defined")
}

/// DNC but not OAG(k) for `k < pairs` — stacks `pairs` independent
/// OAG(0) conflicts, each needing its own repair; with the default budget
/// this lands in the "DNC" row of the class column (the AG 4 shape).
pub fn dnc_not_oag(pairs: usize) -> Grammar {
    assert!(pairs >= 1, "at least one crossing pair");
    let mut g = GrammarBuilder::new("dnc_not_oag");
    let s = g.phylum("S");
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    let out = g.syn(s, "out");
    let mut phyla = Vec::new();
    for k in 0..pairs {
        let x = g.phylum(format!("X{k}"));
        let i1 = g.inh(x, "i1");
        let s1 = g.syn(x, "s1");
        let s2 = g.syn(x, "s2");
        phyla.push((x, i1, s1, s2));
        let leaf = g.production(format!("leaf{k}"), x, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        g.constant(leaf, Occ::lhs(s2), Value::Int(1));
    }
    // One root production per pair (S has several alternatives).
    for (k, &(x, i1, s1, s2)) in phyla.iter().enumerate() {
        let cross = g.production(format!("cross{k}"), s, &[x, x]);
        g.copy(cross, Occ::new(1, i1), Occ::new(2, s2));
        g.copy(cross, Occ::new(2, i1), Occ::new(1, s2));
        g.call(
            cross,
            Occ::lhs(out),
            "add",
            [Occ::new(1, s1).into(), Occ::new(2, s1).into()],
        );
    }
    g.finish().expect("well-defined")
}

#[cfg(test)]
mod tests {
    use fnc2_analysis::{classify, nc_test, AgClass, Inclusion};

    use super::*;

    #[test]
    fn ladder_is_strict() {
        assert_eq!(
            classify(&circular(), 1, Inclusion::Long).unwrap().class,
            AgClass::NotSnc
        );
        let nns = nc_not_snc();
        assert!(nc_test(&nns, 64).is_nc());
        assert_eq!(
            classify(&nns, 1, Inclusion::Long).unwrap().class,
            AgClass::NotSnc
        );
        assert_eq!(
            classify(&snc_only(), 1, Inclusion::Long).unwrap().class,
            AgClass::Snc
        );
        assert_eq!(
            classify(&oag1_not_oag0(), 0, Inclusion::Long)
                .unwrap()
                .class,
            AgClass::Dnc,
            "with max_k = 0 it falls through to the transformation"
        );
        assert_eq!(
            classify(&oag1_not_oag0(), 1, Inclusion::Long)
                .unwrap()
                .class,
            AgClass::OagK(1)
        );
        // Several independent conflicts: k = 1 is not enough.
        assert_eq!(
            classify(&dnc_not_oag(3), 1, Inclusion::Long).unwrap().class,
            AgClass::Dnc
        );
    }

    #[test]
    fn snc_only_needs_two_partitions() {
        let g = snc_only();
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        let lo = c.l_ordered.unwrap();
        let x = g.phylum_by_name("X").unwrap();
        assert_eq!(lo.partitions_of(x).len(), 2, "the AG 5 'max 2' shape");
    }

    #[test]
    fn snc_only_is_evaluable() {
        // Both contexts evaluate correctly despite the opposite orders.
        let g = snc_only();
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        let lo = c.l_ordered.unwrap();
        let seqs = fnc2_visit::build_visit_seqs(&g, &lo);
        let ev = fnc2_visit::Evaluator::new(&g, &seqs);
        for ctx in ["ctx_a", "ctx_b"] {
            let mut tb = fnc2_ag::TreeBuilder::new(&g);
            let leaf = tb.op("leafx", &[]).unwrap();
            let root = tb.op(ctx, &[leaf]).unwrap();
            let tree = tb.finish_root(root).unwrap();
            let (vals, _) = ev.evaluate(&tree, &Default::default()).unwrap();
            let s = g.phylum_by_name("S").unwrap();
            let out = g.attr_by_name(s, "out").unwrap();
            let v = vals.get(&g, tree.root(), out).unwrap();
            assert_eq!(v.as_tuple().len(), 2, "{ctx}: {v:?}");
        }
    }
}
