//! Storage assignment: global variables, global stacks, tree nodes.
//!
//! Implements paper §2.2:
//!
//! * **variables** — a temporary object whose instances are never alive
//!   simultaneously (checked per sequence, plus the may-evaluate test on
//!   intervening `VISIT`s) lives in one global variable;
//! * **stacks** — remaining temporaries live on global stacks, with
//!   *accesses below the top at statically-computed depth* and *delayed
//!   pops* (Julié & Parigot's relaxations of Kastens' top-only discipline),
//!   validated by a per-sequence symbolic stack simulation;
//! * **tree nodes** — the last resort (non-temporaries, and objects whose
//!   stack discipline cannot be made consistent across contexts);
//! * **packing** — variables and stacks are grouped greedily, driven by the
//!   number of **copy rules** each grouping eliminates (FNC-2's criterion,
//!   replacing Kastens' mere-feasibility grouping);
//! * **copy-rule elimination** — a copy whose source and target share a
//!   variable becomes a no-op; a copy whose source is on top of the shared
//!   stack and dies at the copy is a top *rename*.

use std::collections::{HashMap, HashSet};

use fnc2_ag::{Grammar, ONode, Occ, ProductionId, RuleBody};
use fnc2_visit::{Instr, VisitSeqs};

use crate::flat::{FlatItem, FlatProgram, InstanceKind};
use crate::lifetime::{interval_hits_visit, Lifetimes};
use crate::object::{Object, ObjectIndex};

/// Final storage location of an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Storage {
    /// A global variable (index into the evaluator's variable file).
    Variable(usize),
    /// A global stack (index into the evaluator's stack file).
    Stack(usize),
    /// At the tree node (the unoptimized fallback).
    Node,
}

/// How an `EVAL` argument is fetched at run time.
#[derive(Clone, Debug, PartialEq)]
pub enum ReadPath {
    /// Embedded constant / lexical token: resolved by the rule itself.
    Immediate,
    /// Read global variable `.0`.
    Variable(usize),
    /// Read stack `.0` at depth `.1` below the top.
    Stack(usize, usize),
    /// Read from the tree-node store.
    Node,
}

/// What an `EVAL` does with its result.
#[derive(Clone, Debug, PartialEq)]
pub enum WritePath {
    /// Write global variable `.0`.
    Variable(usize),
    /// Push onto stack `.0`.
    Stack(usize),
    /// Store at the tree node.
    Node,
    /// Eliminated copy into a shared variable: no action.
    SkipVariable,
    /// Eliminated copy on a shared stack: the top value is renamed.
    SkipStackTop,
}

/// Resolved access information for one instruction position.
#[derive(Clone, Debug, Default)]
pub struct StepAccess {
    /// For `EVAL` positions: how to fetch each rule argument.
    pub args: Vec<ReadPath>,
    /// For `EVAL` positions: where the result goes.
    pub write: Option<WritePath>,
    /// Stacks to pop (by id, possibly repeated) after this position.
    pub pops_after: Vec<usize>,
}

/// Per-sequence access table, parallel to the flattened items.
#[derive(Clone, Debug)]
pub struct SeqAccess {
    /// `steps[pos]` describes flattened position `pos`.
    pub steps: Vec<StepAccess>,
}

/// Aggregate statistics — the Table 1 space-optimization block.
#[derive(Clone, Debug, Default)]
pub struct SpaceStats {
    /// Attribute occurrences stored in global variables (static count).
    pub occ_variables: usize,
    /// Attribute occurrences stored on global stacks.
    pub occ_stacks: usize,
    /// Attribute occurrences stored at tree nodes (non-temporaries).
    pub occ_node: usize,
    /// Variable-class objects before packing.
    pub variables_before: usize,
    /// Variables after packing.
    pub variables_after: usize,
    /// Stack-class objects before packing.
    pub stacks_before: usize,
    /// Stacks after packing.
    pub stacks_after: usize,
    /// Total copy rules in the grammar.
    pub copies_total: usize,
    /// Copy rules eliminated.
    pub copies_eliminated: usize,
    /// Copy rules theoretically eliminable (source and target of compatible
    /// class and pairwise groupable).
    pub copies_eliminable: usize,
    /// Fraction of objects that are temporary.
    pub temporary_ratio: f64,
}

impl SpaceStats {
    /// % of occurrences in variables.
    pub fn pct_variables(&self) -> f64 {
        pct(self.occ_variables, self.occ_total())
    }
    /// % of occurrences in stacks.
    pub fn pct_stacks(&self) -> f64 {
        pct(self.occ_stacks, self.occ_total())
    }
    /// % of occurrences at tree nodes.
    pub fn pct_node(&self) -> f64 {
        pct(self.occ_node, self.occ_total())
    }
    /// Total occurrences counted.
    pub fn occ_total(&self) -> usize {
        self.occ_variables + self.occ_stacks + self.occ_node
    }
    /// % of all copy rules eliminated.
    pub fn pct_eliminated_of_copies(&self) -> f64 {
        pct(self.copies_eliminated, self.copies_total)
    }
    /// % of theoretically eliminable copy rules actually eliminated.
    pub fn pct_eliminated_of_possible(&self) -> f64 {
        pct(self.copies_eliminated, self.copies_eliminable)
    }
}

fn pct(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * a as f64 / b as f64
    }
}

/// The complete space plan: storage map, access tables, statistics.
#[derive(Clone, Debug)]
pub struct SpacePlan {
    /// Storage per object index.
    pub storage: Vec<Storage>,
    /// Number of variables allocated.
    pub n_variables: usize,
    /// Number of stacks allocated.
    pub n_stacks: usize,
    /// Copy rules eliminated, keyed by (production, target).
    pub eliminated: HashSet<(ProductionId, ONode)>,
    /// Access tables per sequence.
    pub access: HashMap<(ProductionId, usize), SeqAccess>,
    /// Statistics.
    pub stats: SpaceStats,
}

impl SpacePlan {
    /// The storage of object `o`.
    pub fn storage_of(&self, objects: &ObjectIndex, o: Object) -> Storage {
        self.storage[objects.index(o)]
    }
}

/// Storage *class* during solving (pre-packing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Variable,
    Stack,
    Node,
}

/// Computes the space plan for a grammar under given visit sequences.
pub fn plan_storage(
    grammar: &Grammar,
    seqs: &VisitSeqs,
    fp: &FlatProgram,
    objects: &ObjectIndex,
    lt: &Lifetimes,
) -> SpacePlan {
    let n = objects.len();

    // ---- Phase A: singleton classification -----------------------------
    let mut class = vec![Class::Node; n];
    for (oi, o) in objects.iter() {
        if !lt.temporary[oi] {
            continue;
        }
        // The driver supplies/reads the root's attributes directly; keep
        // them at the node.
        if let Object::Attr(a) = o {
            if grammar.attr(a).phylum() == grammar.root() {
                continue;
            }
        }
        if variable_feasible(grammar, fp, lt, objects, &[oi]) {
            class[oi] = Class::Variable;
        } else if StackSim::run(grammar, seqs, fp, objects, &[oi], &HashSet::new()).is_some() {
            class[oi] = Class::Stack;
        }
    }

    let variables_before = class.iter().filter(|&&c| c == Class::Variable).count();
    let stacks_before = class.iter().filter(|&&c| c == Class::Stack).count();

    // ---- Phase B: copy-driven packing ----------------------------------
    // Union-find over objects of the same class, merged greedily in order
    // of copy-rule benefit.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }

    // Candidate pairs: copy rules between same-class objects.
    let mut benefit: HashMap<(usize, usize), usize> = HashMap::new();
    for p in grammar.productions() {
        for rule in grammar.production(p).rules() {
            let Some((src, dst)) = copy_objects(grammar, p, rule) else {
                continue;
            };
            let (si, di) = (objects.index(src), objects.index(dst));
            if si == di || class[si] != class[di] || class[si] == Class::Node {
                continue;
            }
            let key = (si.min(di), si.max(di));
            *benefit.entry(key).or_insert(0) += 1;
        }
    }
    let mut candidates: Vec<((usize, usize), usize)> = benefit.into_iter().collect();
    candidates.sort_by_key(|&((a, b), ben)| (std::cmp::Reverse(ben), a, b));

    for ((a, b), _) in candidates {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            continue;
        }
        // Group members if merged.
        let members: Vec<usize> = (0..n)
            .filter(|&x| {
                class[x] != Class::Node && {
                    let r = find(&mut parent, x);
                    r == ra || r == rb
                }
            })
            .collect();
        let ok = match class[a] {
            Class::Variable => variable_feasible(grammar, fp, lt, objects, &members),
            Class::Stack => {
                StackSim::run(grammar, seqs, fp, objects, &members, &HashSet::new()).is_some()
            }
            Class::Node => false,
        };
        if ok {
            parent[rb] = ra;
        }
    }

    // ---- Final numbering ------------------------------------------------
    let mut var_ids: HashMap<usize, usize> = HashMap::new();
    let mut stack_ids: HashMap<usize, usize> = HashMap::new();
    let mut storage = vec![Storage::Node; n];
    for oi in 0..n {
        match class[oi] {
            Class::Node => {}
            Class::Variable => {
                let r = find(&mut parent, oi);
                let next = var_ids.len();
                let id = *var_ids.entry(r).or_insert(next);
                storage[oi] = Storage::Variable(id);
            }
            Class::Stack => {
                let r = find(&mut parent, oi);
                let next = stack_ids.len();
                let id = *stack_ids.entry(r).or_insert(next);
                storage[oi] = Storage::Stack(id);
            }
        }
    }

    // ---- Copy elimination ------------------------------------------------
    // Variables: every copy between objects sharing a variable is a no-op
    // (feasibility coalesced their intervals).
    // Stacks: a copy whose source dies at the copy with the source on top
    // becomes a rename; validated per sequence by the final simulation.
    let mut eliminated: HashSet<(ProductionId, ONode)> = HashSet::new();
    for p in grammar.productions() {
        for rule in grammar.production(p).rules() {
            let Some((src, dst)) = copy_objects(grammar, p, rule) else {
                continue;
            };
            let (si, di) = (objects.index(src), objects.index(dst));
            match (storage[si], storage[di]) {
                (Storage::Variable(x), Storage::Variable(y)) if x == y => {
                    eliminated.insert((p, rule.target()));
                }
                (Storage::Stack(x), Storage::Stack(y)) if x == y => {
                    // Tentative; verified by the final simulation below
                    // (dropped again if any sequence rejects the rename).
                    eliminated.insert((p, rule.target()));
                }
                _ => {}
            }
        }
    }

    // ---- Final simulation + access tables --------------------------------
    // Iterate because dropping one stack elimination can affect another
    // sequence's simulation.
    let (access, eliminated) = loop {
        match build_access(
            grammar,
            seqs,
            fp,
            objects,
            &storage,
            &eliminated,
            &stack_ids,
        ) {
            Ok(access) => break (access, eliminated.clone()),
            Err(reject) => {
                let mut e = eliminated.clone();
                let removed = e.remove(&reject);
                assert!(removed, "rejection must name a tentative elimination");
                eliminated = e;
            }
        }
    };

    // ---- Statistics -------------------------------------------------------
    let mut stats = SpaceStats {
        variables_before,
        variables_after: var_ids.len(),
        stacks_before,
        stacks_after: stack_ids.len(),
        copies_total: grammar.copy_rule_count(),
        copies_eliminated: eliminated.len(),
        temporary_ratio: lt.temporary_ratio(),
        ..SpaceStats::default()
    };
    // Occurrence-weighted storage proportions (the paper's static figures).
    for p in grammar.productions() {
        for occ in grammar.occurrences(p) {
            match storage[objects.index(Object::Attr(occ.attr))] {
                Storage::Variable(_) => stats.occ_variables += 1,
                Storage::Stack(_) => stats.occ_stacks += 1,
                Storage::Node => stats.occ_node += 1,
            }
        }
    }
    // Theoretically eliminable copies: pairwise-groupable same-class pairs.
    for p in grammar.productions() {
        for rule in grammar.production(p).rules() {
            let Some((src, dst)) = copy_objects(grammar, p, rule) else {
                continue;
            };
            let (si, di) = (objects.index(src), objects.index(dst));
            if si == di {
                stats.copies_eliminable += 1; // same object: trivially shared
                continue;
            }
            let ok = match (class[si], class[di]) {
                (Class::Variable, Class::Variable) => {
                    variable_feasible(grammar, fp, lt, objects, &[si, di])
                }
                (Class::Stack, Class::Stack) => {
                    StackSim::run(grammar, seqs, fp, objects, &[si, di], &HashSet::new()).is_some()
                }
                _ => false,
            };
            if ok {
                stats.copies_eliminable += 1;
            }
        }
    }

    SpacePlan {
        storage,
        n_variables: var_ids.len(),
        n_stacks: stack_ids.len(),
        eliminated,
        access,
        stats,
    }
}

/// If `rule` is a copy between occurrences/locals, its (source, target)
/// objects.
fn copy_objects(
    grammar: &Grammar,
    p: ProductionId,
    rule: &fnc2_ag::SemRule,
) -> Option<(Object, Object)> {
    if !rule.is_copy() {
        return None;
    }
    let src = rule.read_nodes().next()?;
    let to_obj = |n: ONode| match n {
        ONode::Attr(o) => Object::Attr(o.attr),
        ONode::Local(l) => Object::Local(p, l),
    };
    let _ = grammar;
    Some((to_obj(src), to_obj(rule.target())))
}

// ---------------------------------------------------------------------------
// Variable feasibility
// ---------------------------------------------------------------------------

/// True if the objects `members` can share one global variable: in every
/// sequence, the (copy-coalesced) live intervals of their instances are
/// pairwise disjoint, and no interval contains a `VISIT` that may evaluate
/// a member.
fn variable_feasible(
    grammar: &Grammar,
    fp: &FlatProgram,
    lt: &Lifetimes,
    objects: &ObjectIndex,
    members: &[usize],
) -> bool {
    let member_set: HashSet<usize> = members.iter().copied().collect();
    for (&key, insts) in &fp.instances {
        // Instances of member objects, with their intervals.
        let mine: Vec<&crate::flat::Instance> = insts
            .iter()
            .filter(|i| member_set.contains(&objects.index(i.object)))
            .collect();
        if mine.is_empty() {
            continue;
        }
        // Coalesce copy-linked instances (the copy target holds the same
        // value, so overlap between source and target is harmless).
        let mut comp: HashMap<ONode, usize> = HashMap::new();
        for (idx, inst) in mine.iter().enumerate() {
            comp.insert(inst.node, idx);
        }
        let mut uf: Vec<usize> = (0..mine.len()).collect();
        fn find(uf: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while uf[r] != r {
                r = uf[r];
            }
            uf[x] = r;
            r
        }
        for rule in grammar.production(key.0).rules() {
            if !rule.is_copy() {
                continue;
            }
            let Some(src) = rule.read_nodes().next() else {
                continue;
            };
            if let (Some(&a), Some(&b)) = (comp.get(&src), comp.get(&rule.target())) {
                let (ra, rb) = (find(&mut uf, a), find(&mut uf, b));
                uf[rb] = ra;
            }
        }
        // Merge intervals per component.
        let mut merged: HashMap<usize, (usize, usize)> = HashMap::new();
        for (idx, inst) in mine.iter().enumerate() {
            let r = find(&mut uf, idx);
            let e = merged.entry(r).or_insert((inst.def_pos, inst.last_use()));
            e.0 = e.0.min(inst.def_pos);
            e.1 = e.1.max(inst.last_use());
        }
        // Pairwise disjoint across components. Touching endpoints are safe:
        // at any single position, reads happen before the write (an `EVAL`
        // reads its arguments first; a `VISIT` handoff is validated by the
        // per-sequence checks of the visited phylum's own productions).
        let ivals: Vec<(usize, usize)> = merged.values().copied().collect();
        for (i, &(d1, u1)) in ivals.iter().enumerate() {
            for &(d2, u2) in &ivals[i + 1..] {
                if d1 < u2 && d2 < u1 {
                    return false;
                }
            }
        }
        // No intervening VISIT may evaluate any member — except the VISITs
        // that *use* the instance: during those the visited subtree sees
        // the instance as its own LHS occurrence and its sequences are
        // checked directly.
        for inst in &mine {
            for &m in members {
                if interval_hits_visit(
                    grammar,
                    fp,
                    &lt.may_eval,
                    key,
                    inst.def_pos,
                    inst.last_use(),
                    m,
                    &inst.uses,
                ) {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Stack simulation
// ---------------------------------------------------------------------------

/// What the final simulation records for the runtime.
#[derive(Clone, Debug, Default)]
struct SimRecord {
    /// (position, instance node) → depth below top at that read.
    depths: HashMap<(usize, ONode), usize>,
    /// position → number of pops to execute after it.
    pops: HashMap<usize, usize>,
    /// positions whose Eval became a stack-top rename.
    renames: HashSet<usize>,
}

/// Symbolic per-sequence stack simulation for one group of objects.
struct StackSim;

impl StackSim {
    /// Runs the simulation for `members` over every sequence; returns the
    /// per-sequence records, or `None` if the group is infeasible.
    /// `eliminate` holds (production, target) copies tentatively turned
    /// into top renames; if a rename is invalid the simulation fails (the
    /// caller retries without it).
    fn run(
        grammar: &Grammar,
        seqs: &VisitSeqs,
        fp: &FlatProgram,
        objects: &ObjectIndex,
        members: &[usize],
        eliminate: &HashSet<(ProductionId, ONode)>,
    ) -> Option<HashMap<(ProductionId, usize), SimRecord>> {
        let member_set: HashSet<usize> = members.iter().copied().collect();
        let mut out = HashMap::new();
        for (&key, fs) in &fp.seqs {
            let rec = Self::run_seq(grammar, seqs, fp, objects, &member_set, eliminate, key, fs)?;
            out.insert(key, rec);
        }
        Some(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_seq(
        grammar: &Grammar,
        seqs: &VisitSeqs,
        fp: &FlatProgram,
        objects: &ObjectIndex,
        members: &HashSet<usize>,
        eliminate: &HashSet<(ProductionId, ONode)>,
        key: (ProductionId, usize),
        fs: &crate::flat::FlatSeq,
    ) -> Option<SimRecord> {
        let (p, _pi) = key;
        let prod = grammar.production(p);
        let insts = fp.instances_of(key);
        let by_node: HashMap<ONode, &crate::flat::Instance> =
            insts.iter().map(|i| (i.node, i)).collect();
        let is_member = |n: ONode| -> bool {
            by_node
                .get(&n)
                .map(|i| members.contains(&objects.index(i.object)))
                .unwrap_or(false)
        };
        // Pop schedule: position → instances whose last use is there (and
        // that this sequence must pop: ChildInh, ChildSyn, Local). Member
        // child-side instances are also bucketed by child position so the
        // VISIT handoff checks don't rescan every instance of a wide
        // production at every visit.
        let mut pops_at: HashMap<usize, Vec<ONode>> = HashMap::new();
        let mut member_child: HashMap<u16, Vec<&crate::flat::Instance>> = HashMap::new();
        for inst in insts {
            if !members.contains(&objects.index(inst.object)) {
                continue;
            }
            if matches!(
                inst.kind,
                InstanceKind::ChildInh | InstanceKind::ChildSyn | InstanceKind::Local
            ) {
                pops_at.entry(inst.last_use()).or_default().push(inst.node);
            }
            if matches!(inst.kind, InstanceKind::ChildInh | InstanceKind::ChildSyn) {
                if let ONode::Attr(o) = inst.node {
                    member_child.entry(o.pos).or_default().push(inst);
                }
            }
        }

        let mut rec = SimRecord::default();
        // The symbolic stack plus a mirror index (node → stack slot) so
        // membership and depth queries stay O(1) on stacks holding one
        // instance per child of a wide production.
        let mut stack: Vec<ONode> = Vec::new();
        let mut in_stack: HashMap<ONode, usize> = HashMap::new();
        let mut pending: HashSet<ONode> = HashSet::new();
        let mut baseline = 0usize;

        // Executes the pops scheduled at `pos` (dead instances), delaying
        // any that are not on top, and draining delayed pops that surface.
        // For EVAL positions this runs between the reads and the push, so
        // dead sources never get trapped under the fresh value.
        let do_pops = |stack: &mut Vec<ONode>,
                       in_stack: &mut HashMap<ONode, usize>,
                       pending: &mut HashSet<ONode>,
                       rec: &mut SimRecord,
                       pops_at: &HashMap<usize, Vec<ONode>>,
                       pos: usize|
         -> bool {
            let drain = |stack: &mut Vec<ONode>,
                         in_stack: &mut HashMap<ONode, usize>,
                         pending: &mut HashSet<ONode>,
                         rec: &mut SimRecord| {
                while let Some(top) = stack.last().copied() {
                    if pending.remove(&top) {
                        stack.pop();
                        in_stack.remove(&top);
                        *rec.pops.entry(pos).or_insert(0) += 1;
                    } else {
                        break;
                    }
                }
            };
            if let Some(nodes) = pops_at.get(&pos) {
                for &node in nodes {
                    if stack.last() == Some(&node) {
                        stack.pop();
                        in_stack.remove(&node);
                        *rec.pops.entry(pos).or_insert(0) += 1;
                        drain(stack, in_stack, pending, rec);
                    } else if in_stack.contains_key(&node) {
                        pending.insert(node); // delayed pop
                    } else {
                        return false;
                    }
                }
            }
            true
        };

        for (pos, item) in fs.items.iter().enumerate() {
            match item {
                FlatItem::Begin(v) => {
                    // Virtual pushes for the LHS inherited of this visit.
                    let mut virt: Vec<ONode> = insts
                        .iter()
                        .filter(|i| {
                            i.kind == InstanceKind::LhsInh
                                && members.contains(&objects.index(i.object))
                                && fs.visit_at(i.def_pos) == *v
                                && i.def_pos == pos
                        })
                        .map(|i| i.node)
                        .collect();
                    if virt.len() > 1 {
                        return None; // ambiguous handoff order
                    }
                    virt.sort();
                    for n in virt {
                        in_stack.insert(n, stack.len());
                        stack.push(n);
                    }
                    baseline = stack.len();
                }
                FlatItem::Leave(v) => {
                    if !pending.is_empty() {
                        return None; // unresolvable delayed pops
                    }
                    // Top region must be exactly this visit's LHS syn.
                    let syn: Vec<ONode> = insts
                        .iter()
                        .filter(|i| {
                            i.kind == InstanceKind::LhsSyn
                                && members.contains(&objects.index(i.object))
                                && fs.visit_at(i.def_pos) == *v
                        })
                        .map(|i| i.node)
                        .collect();
                    if stack.len() != baseline + syn.len() {
                        return None;
                    }
                    let mut top: Vec<ONode> = stack[stack.len() - syn.len()..].to_vec();
                    top.sort();
                    let mut syn_sorted = syn;
                    syn_sorted.sort();
                    if top != syn_sorted {
                        return None;
                    }
                }
                FlatItem::Op { instr, .. } => match instr {
                    Instr::Eval(target) => {
                        let rule = grammar.rule_for(p, *target).expect("rule exists");
                        // Reads first.
                        for read in rule.read_nodes() {
                            if is_member(read) {
                                let at = *in_stack.get(&read)?;
                                rec.depths.insert((pos, read), stack.len() - 1 - at);
                            }
                        }
                        // Rename elimination claims the top before pops.
                        let mut renamed = false;
                        if is_member(*target) && eliminate.contains(&(p, *target)) {
                            // Rename: source must be on top and die here.
                            let src = rule.read_nodes().next().expect("copy has a source");
                            if stack.last() != Some(&src) || !is_member(src) {
                                return None;
                            }
                            let src_inst = by_node[&src];
                            if src_inst.last_use() != pos {
                                return None;
                            }
                            // The source's scheduled pop at `pos` is
                            // superseded by the rename.
                            if let Some(v) = pops_at.get_mut(&pos) {
                                v.retain(|&n| n != src);
                            }
                            *stack.last_mut().expect("nonempty") = *target;
                            in_stack.remove(&src);
                            in_stack.insert(*target, stack.len() - 1);
                            rec.renames.insert(pos);
                            renamed = true;
                        }
                        // Dead sources are popped before the fresh push so
                        // they are not trapped under it.
                        if !do_pops(
                            &mut stack,
                            &mut in_stack,
                            &mut pending,
                            &mut rec,
                            &pops_at,
                            pos,
                        ) {
                            return None;
                        }
                        if is_member(*target) && !renamed {
                            in_stack.insert(*target, stack.len());
                            stack.push(*target);
                        }
                    }
                    Instr::Visit {
                        child,
                        visit,
                        partition,
                    } => {
                        let ph = prod.phylum_at(*child);
                        let part = &seqs.partitions_of(ph)[*partition];
                        let of_child = member_child.get(child).map(Vec::as_slice).unwrap_or(&[]);
                        // Handoff check: this visit's inherited members must
                        // be exactly the topmost items, in canonical order.
                        let mut handoff: Vec<ONode> = of_child
                            .iter()
                            .filter(|i| {
                                i.kind == InstanceKind::ChildInh
                                    && matches!(i.node, ONode::Attr(o)
                                        if part.visit_of(o.attr) == Some(*visit))
                            })
                            .map(|i| i.node)
                            .collect();
                        handoff.sort();
                        if !handoff.is_empty() {
                            if stack.len() < handoff.len() {
                                return None;
                            }
                            if stack[stack.len() - handoff.len()..] != handoff[..] {
                                return None;
                            }
                        }
                        // The child's synthesized members of this visit
                        // materialize on top, in canonical order.
                        let mut syn: Vec<ONode> = of_child
                            .iter()
                            .filter(|i| {
                                i.kind == InstanceKind::ChildSyn
                                    && matches!(i.node, ONode::Attr(o)
                                        if part.visit_of(o.attr) == Some(*visit))
                            })
                            .map(|i| i.node)
                            .collect();
                        syn.sort();
                        for n in syn {
                            in_stack.insert(n, stack.len());
                            stack.push(n);
                        }
                        if !do_pops(
                            &mut stack,
                            &mut in_stack,
                            &mut pending,
                            &mut rec,
                            &pops_at,
                            pos,
                        ) {
                            return None;
                        }
                    }
                },
            }
        }
        Some(rec)
    }
}

// ---------------------------------------------------------------------------
// Final access tables
// ---------------------------------------------------------------------------

/// Builds the runtime access tables; fails with the (production, target) of
/// a stack-copy elimination that some sequence's simulation rejected.
#[allow(clippy::too_many_arguments)]
fn build_access(
    grammar: &Grammar,
    seqs: &VisitSeqs,
    fp: &FlatProgram,
    objects: &ObjectIndex,
    storage: &[Storage],
    eliminated: &HashSet<(ProductionId, ONode)>,
    stack_ids: &HashMap<usize, usize>,
) -> Result<HashMap<(ProductionId, usize), SeqAccess>, (ProductionId, ONode)> {
    let _ = stack_ids;
    // Run one simulation per stack id over its member objects.
    let mut stacks: HashMap<usize, Vec<usize>> = HashMap::new();
    for (oi, s) in storage.iter().enumerate() {
        if let Storage::Stack(id) = s {
            stacks.entry(*id).or_default().push(oi);
        }
    }
    let mut recs: HashMap<usize, HashMap<(ProductionId, usize), SimRecord>> = HashMap::new();
    for (&id, members) in &stacks {
        // Restrict tentative eliminations to copies on this stack.
        let elim: HashSet<(ProductionId, ONode)> = eliminated
            .iter()
            .filter(|(p, t)| {
                let obj = match t {
                    ONode::Attr(o) => Object::Attr(o.attr),
                    ONode::Local(l) => Object::Local(*p, *l),
                };
                storage[objects.index(obj)] == Storage::Stack(id)
            })
            .copied()
            .collect();
        match StackSim::run(grammar, seqs, fp, objects, members, &elim) {
            Some(r) => {
                recs.insert(id, r);
            }
            None => {
                // Blame one tentative elimination on this stack (retry
                // without it); if there is none the group itself is
                // infeasible — impossible, feasibility was checked without
                // eliminations, so some elimination must be present.
                let victim = elim
                    .iter()
                    .min()
                    .copied()
                    .expect("rejection implies a tentative elimination");
                return Err(victim);
            }
        }
    }

    let mut access = HashMap::new();
    for (&key, fs) in &fp.seqs {
        let (p, _) = key;
        let mut steps: Vec<StepAccess> = Vec::with_capacity(fs.items.len());
        for (pos, item) in fs.items.iter().enumerate() {
            let mut step = StepAccess::default();
            if let FlatItem::Op {
                instr: Instr::Eval(target),
                ..
            } = item
            {
                let rule = grammar.rule_for(p, *target).expect("rule exists");
                // Argument paths, in rule-argument order.
                let args: Vec<ReadPath> = match rule.body() {
                    RuleBody::Copy(a) => {
                        vec![arg_path(grammar, objects, storage, &recs, key, pos, p, a)]
                    }
                    RuleBody::Call { args, .. } => args
                        .iter()
                        .map(|a| arg_path(grammar, objects, storage, &recs, key, pos, p, a))
                        .collect(),
                };
                let tobj = match target {
                    ONode::Attr(o) => Object::Attr(o.attr),
                    ONode::Local(l) => Object::Local(p, *l),
                };
                let write = match storage[objects.index(tobj)] {
                    Storage::Node => WritePath::Node,
                    Storage::Variable(id) => {
                        if eliminated.contains(&(p, *target)) {
                            WritePath::SkipVariable
                        } else {
                            WritePath::Variable(id)
                        }
                    }
                    Storage::Stack(id) => {
                        let renamed = recs
                            .get(&id)
                            .and_then(|r| r.get(&key))
                            .map(|r| r.renames.contains(&pos))
                            .unwrap_or(false);
                        if renamed {
                            WritePath::SkipStackTop
                        } else {
                            WritePath::Stack(id)
                        }
                    }
                };
                step.args = args;
                step.write = Some(write);
            }
            // Pops scheduled after this position, across all stacks.
            for (&id, per_seq) in &recs {
                if let Some(r) = per_seq.get(&key) {
                    if let Some(&n) = r.pops.get(&pos) {
                        for _ in 0..n {
                            step.pops_after.push(id);
                        }
                    }
                }
            }
            steps.push(step);
        }
        access.insert(key, SeqAccess { steps });
    }
    Ok(access)
}

#[allow(clippy::too_many_arguments)]
fn arg_path(
    grammar: &Grammar,
    objects: &ObjectIndex,
    storage: &[Storage],
    recs: &HashMap<usize, HashMap<(ProductionId, usize), SimRecord>>,
    key: (ProductionId, usize),
    pos: usize,
    p: ProductionId,
    arg: &fnc2_ag::Arg,
) -> ReadPath {
    let _ = grammar;
    match arg {
        fnc2_ag::Arg::Const(_) | fnc2_ag::Arg::Token => ReadPath::Immediate,
        fnc2_ag::Arg::Node(n) => {
            let obj = match n {
                ONode::Attr(Occ { attr, .. }) => Object::Attr(*attr),
                ONode::Local(l) => Object::Local(p, *l),
            };
            match storage[objects.index(obj)] {
                Storage::Node => ReadPath::Node,
                Storage::Variable(id) => ReadPath::Variable(id),
                Storage::Stack(id) => {
                    let depth = recs[&id][&key]
                        .depths
                        .get(&(pos, *n))
                        .copied()
                        .expect("simulation recorded every member read");
                    ReadPath::Stack(id, depth)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan validation
// ---------------------------------------------------------------------------

/// Re-validates a finished [`SpacePlan`] from first principles — the
/// independent oracle used by the differential fuzzer over the space
/// optimizer. Every final variable group must still pass the
/// lifetime-disjointness test, every final stack group must still admit a
/// consistent symbolic stack simulation under the plan's copy eliminations,
/// and every eliminated copy must actually share its storage between source
/// and target.
///
/// # Errors
///
/// Returns a human-readable description of the first violated property.
pub fn validate_plan(
    grammar: &Grammar,
    seqs: &VisitSeqs,
    fp: &FlatProgram,
    objects: &ObjectIndex,
    lt: &Lifetimes,
    plan: &SpacePlan,
) -> Result<(), String> {
    let mut variables: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut stacks: HashMap<usize, Vec<usize>> = HashMap::new();
    for (oi, s) in plan.storage.iter().enumerate() {
        match s {
            Storage::Variable(id) => variables.entry(*id).or_default().push(oi),
            Storage::Stack(id) => stacks.entry(*id).or_default().push(oi),
            Storage::Node => {}
        }
    }
    if variables.len() != plan.n_variables {
        return Err(format!(
            "plan claims {} variables but the storage map uses {}",
            plan.n_variables,
            variables.len()
        ));
    }
    if stacks.len() != plan.n_stacks {
        return Err(format!(
            "plan claims {} stacks but the storage map uses {}",
            plan.n_stacks,
            stacks.len()
        ));
    }
    let mut var_ids: Vec<usize> = variables.keys().copied().collect();
    var_ids.sort_unstable();
    for id in var_ids {
        if !variable_feasible(grammar, fp, lt, objects, &variables[&id]) {
            return Err(format!(
                "variable {id} groups objects with overlapping lifetimes"
            ));
        }
    }
    let mut stack_ids: Vec<usize> = stacks.keys().copied().collect();
    stack_ids.sort_unstable();
    for id in stack_ids {
        let elim: HashSet<(ProductionId, ONode)> = plan
            .eliminated
            .iter()
            .filter(|(p, t)| {
                let obj = match t {
                    ONode::Attr(o) => Object::Attr(o.attr),
                    ONode::Local(l) => Object::Local(*p, *l),
                };
                plan.storage[objects.index(obj)] == Storage::Stack(id)
            })
            .copied()
            .collect();
        if StackSim::run(grammar, seqs, fp, objects, &stacks[&id], &elim).is_none() {
            return Err(format!(
                "stack {id} fails the symbolic simulation under the plan's eliminations"
            ));
        }
    }
    // Every eliminated copy must be a real copy rule whose source and
    // target share a variable or a stack.
    for &(p, target) in &plan.eliminated {
        let prod = grammar.production(p).name();
        let Some(rule) = grammar.rule_for(p, target) else {
            return Err(format!("eliminated copy in `{prod}` names a missing rule"));
        };
        let Some((src, dst)) = copy_objects(grammar, p, rule) else {
            return Err(format!(
                "eliminated rule in `{prod}` is not a copy between objects"
            ));
        };
        let (ss, ds) = (
            plan.storage[objects.index(src)],
            plan.storage[objects.index(dst)],
        );
        let shared = matches!(
            (ss, ds),
            (Storage::Variable(x), Storage::Variable(y)) if x == y
        ) || matches!((ss, ds), (Storage::Stack(x), Storage::Stack(y)) if x == y);
        if !shared {
            return Err(format!(
                "eliminated copy in `{prod}` does not share storage ({ss:?} vs {ds:?})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_visit::build_visit_seqs;

    use crate::flat::FlatProgram;
    use crate::lifetime::Lifetimes;

    use super::*;

    fn plan_for(g: &Grammar) -> (SpacePlan, ObjectIndex) {
        let snc = snc_test(g);
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(g, &lo);
        let fp = FlatProgram::new(g, &seqs);
        let objects = ObjectIndex::new(g);
        let lt = Lifetimes::analyze(g, &seqs, &fp, &objects);
        (plan_storage(g, &seqs, &fp, &objects, &lt), objects)
    }

    /// The threaded `down`/`up` grammar. Each instance dies exactly when
    /// the next one is produced (pure copy threading), so — as the
    /// may-evaluate analysis correctly discovers — a single global
    /// variable per attribute suffices even though the phylum recurses.
    fn two_pass() -> Grammar {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        g.finish().unwrap()
    }

    #[test]
    fn threaded_copies_fit_variables() {
        let g = two_pass();
        let (plan, objects) = plan_for(&g);
        let a = g.phylum_by_name("A").unwrap();
        let down = g.attr_by_name(a, "down").unwrap();
        let up = g.attr_by_name(a, "up").unwrap();
        assert!(matches!(
            plan.storage_of(&objects, Object::Attr(down)),
            Storage::Variable(_)
        ));
        assert!(matches!(
            plan.storage_of(&objects, Object::Attr(up)),
            Storage::Variable(_)
        ));
        // S.out belongs to the root phylum: forced to the node.
        let s = g.phylum_by_name("S").unwrap();
        let out = g.attr_by_name(s, "out").unwrap();
        assert_eq!(plan.storage_of(&objects, Object::Attr(out)), Storage::Node);
        assert!(plan.stats.occ_variables > 0);
    }

    /// `scale` in Knuth's binary grammar stays live across the visit to the
    /// left subsequence, which evaluates deeper `scale` instances: not a
    /// variable, but exactly a stack.
    fn binaryish() -> Grammar {
        let mut g = GrammarBuilder::new("binaryish");
        let number = g.phylum("Number");
        let seq = g.phylum("Seq");
        let n_value = g.syn(number, "value");
        let s_value = g.syn(seq, "value");
        let s_scale = g.inh(seq, "scale");
        g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
        g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
        let number_p = g.production("number", number, &[seq]);
        g.copy(number_p, Occ::lhs(n_value), Occ::new(1, s_value));
        g.constant(number_p, Occ::new(1, s_scale), Value::Int(0));
        // pair : Seq ::= Seq, with scale := succ(scale) and value summed
        // with the own scale read *after* the recursive visit.
        let pair = g.production("pair", seq, &[seq]);
        g.call(
            pair,
            Occ::new(1, s_scale),
            "succ",
            [Occ::lhs(s_scale).into()],
        );
        g.call(
            pair,
            Occ::lhs(s_value),
            "add",
            [Occ::new(1, s_value).into(), Occ::lhs(s_scale).into()],
        );
        let single = g.production("single", seq, &[]);
        g.copy(single, Occ::lhs(s_value), Occ::lhs(s_scale));
        g.finish().unwrap()
    }

    #[test]
    fn live_across_recursive_visit_goes_to_stack() {
        let g = binaryish();
        let (plan, objects) = plan_for(&g);
        let seq = g.phylum_by_name("Seq").unwrap();
        let scale = g.attr_by_name(seq, "scale").unwrap();
        assert!(
            matches!(
                plan.storage_of(&objects, Object::Attr(scale)),
                Storage::Stack(_)
            ),
            "scale stored as {:?}",
            plan.storage_of(&objects, Object::Attr(scale))
        );
        assert!(plan.n_stacks >= 1);
        assert!(plan.stats.occ_stacks > 0);
    }

    /// A non-recursive pipeline: each attribute has at most one live
    /// instance at a time — variables.
    #[test]
    fn flat_grammar_uses_variables() {
        let mut g = GrammarBuilder::new("flat");
        let s = g.phylum("S");
        let b = g.phylum("B");
        let out = g.syn(s, "out");
        let bi = g.inh(b, "i");
        let bs = g.syn(b, "s");
        let root = g.production("root", s, &[b]);
        g.constant(root, Occ::new(1, bi), Value::Int(1));
        g.copy(root, Occ::lhs(out), Occ::new(1, bs));
        let leafb = g.production("leafb", b, &[]);
        g.copy(leafb, Occ::lhs(bs), Occ::lhs(bi));
        let g = g.finish().unwrap();
        let (plan, objects) = plan_for(&g);
        let b = g.phylum_by_name("B").unwrap();
        let bi = g.attr_by_name(b, "i").unwrap();
        let bs = g.attr_by_name(b, "s").unwrap();
        assert!(matches!(
            plan.storage_of(&objects, Object::Attr(bi)),
            Storage::Variable(_)
        ));
        assert!(matches!(
            plan.storage_of(&objects, Object::Attr(bs)),
            Storage::Variable(_)
        ));
        // The two copies (out:=bs is root-phylum targeted, not counted;
        // bs:=bi links two variables) drive grouping: bi and bs share one
        // variable and the copy is eliminated.
        assert_eq!(
            plan.storage_of(&objects, Object::Attr(bi)),
            plan.storage_of(&objects, Object::Attr(bs))
        );
        let leafb = g.production_by_name("leafb").unwrap();
        assert!(plan
            .eliminated
            .contains(&(leafb, ONode::Attr(Occ::lhs(bs)))));
        assert!(plan.stats.copies_eliminated >= 1);
    }

    #[test]
    fn variable_copy_elimination_on_thread() {
        let g = two_pass();
        let (plan, objects) = plan_for(&g);
        // down and up are variables; the copy chains collapse into shared
        // variables and the copies are eliminated.
        let mid = g.production_by_name("mid").unwrap();
        let a = g.phylum_by_name("A").unwrap();
        let up = g.attr_by_name(a, "up").unwrap();
        let down = g.attr_by_name(a, "down").unwrap();
        assert!(
            plan.eliminated.contains(&(mid, ONode::Attr(Occ::lhs(up)))),
            "eliminated: {:?}",
            plan.eliminated
        );
        assert!(plan
            .eliminated
            .contains(&(mid, ONode::Attr(Occ::new(1, down)))));
        let _ = objects;
    }

    /// Stack-top rename elimination: `up` is forced onto a stack by a
    /// two-child production; `wrap`'s copy `lhs.up := child.up` is the
    /// source's last use with the source on top.
    #[test]
    fn stack_rename_elimination() {
        let mut g = GrammarBuilder::new("fork");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let up = g.syn(a, "up");
        g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        let fork = g.production("fork", a, &[a, a]);
        g.call(
            fork,
            Occ::lhs(up),
            "add",
            [Occ::new(1, up).into(), Occ::new(2, up).into()],
        );
        let wrap = g.production("wrap", a, &[a]);
        g.copy(wrap, Occ::lhs(up), Occ::new(1, up));
        let leafa = g.production("leafa", a, &[]);
        g.constant(leafa, Occ::lhs(up), Value::Int(1));
        let g = g.finish().unwrap();
        let (plan, objects) = plan_for(&g);
        assert!(
            matches!(
                plan.storage_of(&objects, Object::Attr(up)),
                Storage::Stack(_)
            ),
            "up stored as {:?}",
            plan.storage_of(&objects, Object::Attr(up))
        );
        assert!(
            plan.eliminated.contains(&(wrap, ONode::Attr(Occ::lhs(up)))),
            "eliminated: {:?}",
            plan.eliminated
        );
    }

    #[test]
    fn stats_are_consistent() {
        let g = two_pass();
        let (plan, _) = plan_for(&g);
        let st = &plan.stats;
        assert_eq!(
            st.occ_total(),
            g.productions()
                .map(|p| g.occurrences(p).len())
                .sum::<usize>()
        );
        assert!(st.copies_eliminated <= st.copies_eliminable);
        assert!(st.copies_eliminable <= st.copies_total);
        assert!(st.variables_after <= st.variables_before.max(1));
        assert!(st.stacks_after <= st.stacks_before.max(1));
        assert!(st.temporary_ratio > 0.0);
    }
}
