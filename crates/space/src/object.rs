//! Storage objects: the units the space optimizer assigns to variables,
//! stacks, or tree nodes.

use std::collections::HashMap;

use fnc2_ag::{AttrId, Grammar, LocalId, ProductionId};

/// Something that needs storage: an attribute declaration or a
/// production-local attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Object {
    /// An attribute `(phylum, name)` — one instance per tree node of that
    /// phylum.
    Attr(AttrId),
    /// A production-local attribute — one instance per node applying the
    /// production.
    Local(ProductionId, LocalId),
}

impl Object {
    /// Human-readable name, e.g. `Seq.scale` or `pair::tmp`.
    pub fn display(&self, grammar: &Grammar) -> String {
        match self {
            Object::Attr(a) => {
                let info = grammar.attr(*a);
                format!("{}.{}", grammar.phylum(info.phylum()).name(), info.name())
            }
            Object::Local(p, l) => {
                let prod = grammar.production(*p);
                format!("{}::{}", prod.name(), prod.locals()[l.index()].name())
            }
        }
    }
}

/// Dense indexing of all storage objects of a grammar.
#[derive(Clone, Debug)]
pub struct ObjectIndex {
    list: Vec<Object>,
    map: HashMap<Object, usize>,
}

impl ObjectIndex {
    /// Builds the index: all attribute declarations, then all locals.
    pub fn new(grammar: &Grammar) -> Self {
        let mut list: Vec<Object> = (0..grammar.attr_count() as u32)
            .map(|i| Object::Attr(AttrId::from_raw(i)))
            .collect();
        for p in grammar.productions() {
            for l in 0..grammar.production(p).locals().len() as u32 {
                list.push(Object::Local(p, LocalId::from_raw(l)));
            }
        }
        let map = list
            .iter()
            .copied()
            .enumerate()
            .map(|(i, o)| (o, i))
            .collect();
        ObjectIndex { list, map }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if the grammar has no attributes or locals at all.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The dense index of `o`.
    pub fn index(&self, o: Object) -> usize {
        self.map[&o]
    }

    /// The object at dense index `i`.
    pub fn object(&self, i: usize) -> Object {
        self.list[i]
    }

    /// Iterates all objects with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Object)> + '_ {
        self.list.iter().copied().enumerate()
    }
}

/// A growable bitset over object indices.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ObjectSet {
    words: Vec<u64>,
}

impl ObjectSet {
    /// An empty set sized for `n` objects.
    pub fn new(n: usize) -> Self {
        ObjectSet {
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }

    /// Inserts `i`; true if newly added.
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Unions `other` in; true if anything changed.
    pub fn union_in_place(&mut self, other: &ObjectSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw bit words, for serialization.
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from [`raw_words`](Self::raw_words) output.
    pub fn from_raw_words(words: Vec<u64>) -> Self {
        ObjectSet { words }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, ONode, Occ, Value};

    use super::*;

    #[test]
    fn index_covers_attrs_and_locals() {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        let tmp = g.local(leaf, "tmp");
        g.constant(leaf, ONode::Local(tmp), Value::Int(1));
        g.copy(leaf, Occ::lhs(v), ONode::Local(tmp));
        let g = g.finish().unwrap();
        let ix = ObjectIndex::new(&g);
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.object(0), Object::Attr(v));
        assert_eq!(ix.index(Object::Local(leaf, tmp)), 1);
        assert_eq!(Object::Attr(v).display(&g), "S.v");
        assert_eq!(Object::Local(leaf, tmp).display(&g), "leaf::tmp");
    }

    #[test]
    fn object_set_ops() {
        let mut s = ObjectSet::new(70);
        assert!(s.insert(65));
        assert!(!s.insert(65));
        assert!(s.contains(65));
        assert!(!s.contains(0));
        let mut t = ObjectSet::new(70);
        t.insert(3);
        assert!(s.union_in_place(&t));
        assert_eq!(s.count(), 2);
        assert!(!s.union_in_place(&t));
    }
}
