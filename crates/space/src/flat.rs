//! Flattened visit-sequences and attribute-instance lifetime intervals.
//!
//! Lifetime analysis (Kastens [30,31], Julié [27,28]) works on
//! visit-sequence *positions*: each occurrence of an attribute in a
//! production has, within that production's sequence, a definition position
//! and use positions; dependencies that live in other sequences are folded
//! into the `BEGIN`/`LEAVE` markers (LHS occurrences) and the `VISIT`
//! instructions (child occurrences).

use std::collections::HashMap;

use fnc2_ag::{AttrKind, Grammar, LocalId, ONode, Occ, PhylumId, ProductionId};
use fnc2_visit::{Instr, VisitSeqs};

use crate::object::Object;

/// One position of a flattened sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlatItem {
    /// `BEGIN v` (1-based).
    Begin(usize),
    /// An `EVAL`/`VISIT` instruction inside visit `visit`.
    Op {
        /// The 1-based visit this instruction belongs to.
        visit: usize,
        /// The instruction.
        instr: Instr,
    },
    /// `LEAVE v`.
    Leave(usize),
}

/// A flattened visit-sequence with positions `0..items.len()`.
#[derive(Clone, Debug)]
pub struct FlatSeq {
    /// The (production, LHS partition) this flattens.
    pub key: (ProductionId, usize),
    /// Items in execution order.
    pub items: Vec<FlatItem>,
}

impl FlatSeq {
    fn new(key: (ProductionId, usize), seqs: &VisitSeqs) -> FlatSeq {
        let seq = seqs.seq(key.0, key.1);
        let mut items = Vec::new();
        for (i, segment) in seq.segments.iter().enumerate() {
            let v = i + 1;
            items.push(FlatItem::Begin(v));
            for instr in segment {
                items.push(FlatItem::Op {
                    visit: v,
                    instr: instr.clone(),
                });
            }
            items.push(FlatItem::Leave(v));
        }
        FlatSeq { key, items }
    }

    /// The visit a position belongs to.
    pub fn visit_at(&self, pos: usize) -> usize {
        match &self.items[pos] {
            FlatItem::Begin(v) | FlatItem::Leave(v) => *v,
            FlatItem::Op { visit, .. } => *visit,
        }
    }
}

/// How an instance appears in a sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceKind {
    /// The LHS occurrence of an inherited attribute: defined by the parent,
    /// available from `BEGIN v`.
    LhsInh,
    /// The LHS occurrence of a synthesized attribute: defined by `EVAL`,
    /// handed to the parent at `LEAVE v`.
    LhsSyn,
    /// A child occurrence of an inherited attribute: defined by `EVAL`,
    /// consumed through the `VISIT`s.
    ChildInh,
    /// A child occurrence of a synthesized attribute: materializes at the
    /// `VISIT` that computes it.
    ChildSyn,
    /// A production-local attribute.
    Local,
}

/// The lifetime interval of one attribute-occurrence instance within one
/// flattened sequence.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The occurrence (or local) this instance is of.
    pub node: ONode,
    /// The storage object it belongs to.
    pub object: Object,
    /// How it appears here.
    pub kind: InstanceKind,
    /// Position where the value becomes available in this sequence.
    pub def_pos: usize,
    /// Positions where the value is read in this sequence (`EVAL` argument
    /// reads; for [`InstanceKind::ChildInh`] also the `VISIT`s during which
    /// the child reads it; for [`InstanceKind::LhsSyn`] the `LEAVE` that
    /// hands it up).
    pub uses: Vec<usize>,
}

impl Instance {
    /// The last position at which the instance must still be alive.
    pub fn last_use(&self) -> usize {
        self.uses.iter().copied().max().unwrap_or(self.def_pos)
    }
}

/// Flattened sequences plus instance tables for the whole grammar.
#[derive(Clone, Debug)]
pub struct FlatProgram {
    /// Flattened sequences, keyed like [`VisitSeqs`].
    pub seqs: HashMap<(ProductionId, usize), FlatSeq>,
    /// Instances per sequence, same keys.
    pub instances: HashMap<(ProductionId, usize), Vec<Instance>>,
    /// `last_read_visit[(phylum, partition, attr)]`: the latest visit in
    /// which any production of `phylum` (under that partition) reads the
    /// LHS occurrence of the inherited attribute. Missing = never read.
    pub last_read_visit: HashMap<(PhylumId, usize, fnc2_ag::AttrId), usize>,
}

impl FlatProgram {
    /// Builds the flattened program for `grammar` under `seqs`.
    pub fn new(grammar: &Grammar, seqs: &VisitSeqs) -> FlatProgram {
        let keys = seqs.keys();
        let flat: HashMap<_, _> = keys.iter().map(|&k| (k, FlatSeq::new(k, seqs))).collect();

        // Pass 1: latest visit reading each (phylum, partition, inherited
        // attr) at its LHS occurrence.
        let mut last_read_visit: HashMap<(PhylumId, usize, fnc2_ag::AttrId), usize> =
            HashMap::new();
        for (&(p, pi), fs) in &flat {
            let lhs = grammar.production(p).lhs();
            for (pos, item) in fs.items.iter().enumerate() {
                let FlatItem::Op {
                    visit,
                    instr: Instr::Eval(target),
                } = item
                else {
                    continue;
                };
                let _ = pos;
                let rule = grammar.rule_for(p, *target).expect("rule exists");
                for read in rule.read_nodes() {
                    if let ONode::Attr(Occ { pos: 0, attr }) = read {
                        if grammar.attr(attr).kind() == AttrKind::Inherited {
                            let e = last_read_visit.entry((lhs, pi, attr)).or_insert(0);
                            *e = (*e).max(*visit);
                        }
                    }
                }
            }
        }

        // Pass 2: instances per sequence.
        let mut instances = HashMap::new();
        for (&(p, pi), fs) in &flat {
            instances.insert(
                (p, pi),
                build_instances(grammar, seqs, fs, &last_read_visit),
            );
        }

        FlatProgram {
            seqs: flat,
            instances,
            last_read_visit,
        }
    }

    /// Instances of a sequence.
    pub fn instances_of(&self, key: (ProductionId, usize)) -> &[Instance] {
        &self.instances[&key]
    }
}

fn build_instances(
    grammar: &Grammar,
    seqs: &VisitSeqs,
    fs: &FlatSeq,
    last_read_visit: &HashMap<(PhylumId, usize, fnc2_ag::AttrId), usize>,
) -> Vec<Instance> {
    let (p, pi) = fs.key;
    let prod = grammar.production(p);
    let lhs = prod.lhs();
    let lhs_part = &seqs.partitions_of(lhs)[pi];

    // Where is each node defined / visited?
    let mut def_pos: HashMap<ONode, usize> = HashMap::new();
    let mut begin_pos: HashMap<usize, usize> = HashMap::new(); // visit -> position
    let mut leave_pos: HashMap<usize, usize> = HashMap::new();
    let mut visit_pos: HashMap<(u16, usize), (usize, usize)> = HashMap::new(); // (child, visit) -> (pos, partition)
    let mut child_part: HashMap<u16, usize> = HashMap::new(); // child -> partition
    for (pos, item) in fs.items.iter().enumerate() {
        match item {
            FlatItem::Begin(v) => {
                begin_pos.insert(*v, pos);
            }
            FlatItem::Leave(v) => {
                leave_pos.insert(*v, pos);
            }
            FlatItem::Op { instr, .. } => match instr {
                Instr::Eval(target) => {
                    def_pos.insert(*target, pos);
                }
                Instr::Visit {
                    child,
                    visit,
                    partition,
                } => {
                    visit_pos.insert((*child, *visit), (pos, *partition));
                    child_part.insert(*child, *partition);
                }
            },
        }
    }

    // Reads: occurrence -> positions of EVALs whose rule reads it.
    let mut reads: HashMap<ONode, Vec<usize>> = HashMap::new();
    for (pos, item) in fs.items.iter().enumerate() {
        let FlatItem::Op {
            instr: Instr::Eval(target),
            ..
        } = item
        else {
            continue;
        };
        let rule = grammar.rule_for(p, *target).expect("rule exists");
        for read in rule.read_nodes() {
            reads.entry(read).or_default().push(pos);
        }
    }

    let mut out = Vec::new();

    // LHS occurrences.
    for &attr in grammar.phylum(lhs).attrs() {
        let node = ONode::Attr(Occ::lhs(attr));
        let v = lhs_part.visit_of(attr).expect("partition is complete");
        match grammar.attr(attr).kind() {
            AttrKind::Inherited => {
                out.push(Instance {
                    node,
                    object: Object::Attr(attr),
                    kind: InstanceKind::LhsInh,
                    def_pos: begin_pos[&v],
                    uses: reads.get(&node).cloned().unwrap_or_default(),
                });
            }
            AttrKind::Synthesized => {
                let mut uses = reads.get(&node).cloned().unwrap_or_default();
                uses.push(leave_pos[&v]); // handoff to the parent
                out.push(Instance {
                    node,
                    object: Object::Attr(attr),
                    kind: InstanceKind::LhsSyn,
                    def_pos: def_pos[&node],
                    uses,
                });
            }
        }
    }

    // Child occurrences.
    for pos_j in 1..=prod.arity() as u16 {
        let ph = prod.phylum_at(pos_j);
        for &attr in grammar.phylum(ph).attrs() {
            let node = ONode::Attr(Occ::new(pos_j, attr));
            // Partition used on this child: from any VISIT instruction.
            let cpart = *child_part
                .get(&pos_j)
                .expect("every child is visited at least once");
            let part = &seqs.partitions_of(ph)[cpart];
            let w = part.visit_of(attr).expect("partition is complete");
            match grammar.attr(attr).kind() {
                AttrKind::Inherited => {
                    let mut uses = reads.get(&node).cloned().unwrap_or_default();
                    // The child consumes it during visits w ..= last read.
                    let last = last_read_visit
                        .get(&(ph, cpart, attr))
                        .copied()
                        .unwrap_or(0)
                        .max(w);
                    for wv in w..=last {
                        if let Some(&(vp, _)) = visit_pos.get(&(pos_j, wv)) {
                            uses.push(vp);
                        }
                    }
                    out.push(Instance {
                        node,
                        object: Object::Attr(attr),
                        kind: InstanceKind::ChildInh,
                        def_pos: def_pos[&node],
                        uses,
                    });
                }
                AttrKind::Synthesized => {
                    let (vp, _) = visit_pos[&(pos_j, w)];
                    out.push(Instance {
                        node,
                        object: Object::Attr(attr),
                        kind: InstanceKind::ChildSyn,
                        def_pos: vp,
                        uses: reads.get(&node).cloned().unwrap_or_default(),
                    });
                }
            }
        }
    }

    // Locals.
    for l in 0..prod.locals().len() as u32 {
        let node = ONode::Local(LocalId::from_raw(l));
        out.push(Instance {
            node,
            object: Object::Local(p, LocalId::from_raw(l)),
            kind: InstanceKind::Local,
            def_pos: def_pos[&node],
            uses: reads.get(&node).cloned().unwrap_or_default(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_visit::build_visit_seqs;

    use super::*;

    fn two_pass() -> (Grammar, VisitSeqs) {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        let g = g.finish().unwrap();
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        (g, seqs)
    }

    #[test]
    fn flatten_marks_visits() {
        let (g, seqs) = two_pass();
        let fp = FlatProgram::new(&g, &seqs);
        let root = g.production_by_name("root").unwrap();
        let fs = &fp.seqs[&(root, 0)];
        // BEGIN, EVAL down, VISIT, EVAL out, LEAVE.
        assert_eq!(fs.items.len(), 5);
        assert!(matches!(fs.items[0], FlatItem::Begin(1)));
        assert!(matches!(fs.items[4], FlatItem::Leave(1)));
        assert_eq!(fs.visit_at(2), 1);
    }

    #[test]
    fn instances_have_sane_intervals() {
        let (g, seqs) = two_pass();
        let fp = FlatProgram::new(&g, &seqs);
        let mid = g.production_by_name("mid").unwrap();
        let insts = fp.instances_of((mid, 0));
        // A.down(lhs), A.up(lhs), A.down(child), A.up(child).
        assert_eq!(insts.len(), 4);
        for inst in insts {
            assert!(inst.last_use() >= inst.def_pos, "{inst:?}");
        }
        // The child `down` instance is used by the VISIT.
        let a = g.phylum_by_name("A").unwrap();
        let down = g.attr_by_name(a, "down").unwrap();
        let child_down = insts
            .iter()
            .find(|i| i.kind == InstanceKind::ChildInh && i.object == Object::Attr(down))
            .unwrap();
        assert!(!child_down.uses.is_empty());
    }

    #[test]
    fn last_read_visit_computed() {
        let (g, seqs) = two_pass();
        let fp = FlatProgram::new(&g, &seqs);
        let a = g.phylum_by_name("A").unwrap();
        let down = g.attr_by_name(a, "down").unwrap();
        // `down` is read at visit 1 (in mid and leaf).
        assert_eq!(fp.last_read_visit.get(&(a, 0, down)), Some(&1));
    }
}
