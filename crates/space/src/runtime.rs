//! The space-optimized visit-sequence interpreter.
//!
//! Executes the same visit-sequences as `fnc2_visit::Evaluator` but stores
//! attributes according to the [`SpacePlan`]: global variables, global
//! stacks (with below-top reads at the statically computed depths and the
//! scheduled delayed pops), and tree nodes only as a last resort. Tracks
//! the high-water mark of live storage cells — the dynamic measure behind
//! the paper's "decrease of the number of attribute storage cells by a
//! factor of 4 to 8" (§4.1).
//!
//! Like the exhaustive evaluator, the hot path is slot-compiled at
//! construction: every `EVAL` step's rule is resolved once, its reads are
//! fused with the plan's [`ReadPath`]s into [`CRead`] descriptors (with
//! constants interned), and its write is reduced to a [`CWrite`] with node
//! slots pre-computed. The run loop then interprets flat per-visit `COp`
//! streams with no hash lookups or rule scans.

use fnc2_ag::{
    Arg, AttrValues, FuncId, Grammar, LocalFrames, LocalId, NodeId, ONode, Occ, ProductionId,
    RuleBody, Tree, Value,
};
use fnc2_guard::{BudgetMeter, EvalBudget, InjectedFault};
use fnc2_obs::{Counters, Event, Key, NoopRecorder, Recorder, StorageClass};
use fnc2_visit::{EvalError, Instr, InternCtx, InternMode, RootInputs, VisitSeqs};

use crate::alloc::{ReadPath, SpacePlan, WritePath};
use crate::flat::{FlatItem, FlatProgram};

/// Counters from one space-optimized run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpaceRunStats {
    /// `VISIT` instructions executed.
    pub visits: usize,
    /// `EVAL` instructions executed (eliminated copies not counted).
    pub evals: usize,
    /// Copy rules skipped thanks to elimination.
    pub copies_skipped: usize,
    /// Maximum number of simultaneously live storage cells (variables +
    /// stack slots + node slots).
    pub max_live_cells: usize,
    /// Storage cells still allocated at the end (tree-resident attributes).
    pub final_node_cells: usize,
}

impl SpaceRunStats {
    /// The stats as seen through the shared [`fnc2_obs`] counter
    /// vocabulary.
    pub fn from_counters(counters: &Counters) -> SpaceRunStats {
        SpaceRunStats {
            visits: counters.get(Key::SpaceVisits) as usize,
            evals: counters.get(Key::SpaceEvals) as usize,
            copies_skipped: counters.get(Key::SpaceCopiesSkipped) as usize,
            max_live_cells: counters.get(Key::SpaceMaxLiveCells) as usize,
            final_node_cells: counters.get(Key::SpaceFinalNodeCells) as usize,
        }
    }

    /// The stats as a dense counter block (inverse of
    /// [`SpaceRunStats::from_counters`]).
    pub fn to_counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set(Key::SpaceVisits, self.visits as u64);
        c.set(Key::SpaceEvals, self.evals as u64);
        c.set(Key::SpaceCopiesSkipped, self.copies_skipped as u64);
        c.set(Key::SpaceMaxLiveCells, self.max_live_cells as u64);
        c.set(Key::SpaceFinalNodeCells, self.final_node_cells as u64);
        c
    }
}

/// Result of a space-optimized evaluation.
#[derive(Debug)]
pub struct SpaceOutcome {
    /// Tree-stored attribute values (the non-temporaries and the root's
    /// attributes).
    pub node_values: AttrValues,
    /// Run counters.
    pub stats: SpaceRunStats,
}

/// A pre-resolved read: where one rule argument comes from, with the plan's
/// storage decision and the grammar's occurrence resolution fused at
/// compile time.
#[derive(Clone, Debug)]
enum CRead {
    /// An interned constant (index into the evaluator's pool).
    Const(u32),
    /// The node's lexical token.
    Token,
    /// A global variable.
    Variable(usize),
    /// A stack read at a static depth below the top.
    Stack(usize, usize),
    /// A tree-resident attribute slot (0 = the node itself).
    NodeAttr { child: u16, off: u32 },
    /// A tree-resident production local.
    NodeLocal(LocalId),
}

/// A pre-resolved write target.
#[derive(Clone, Copy, Debug)]
enum CWrite {
    Variable(usize),
    Stack(usize),
    NodeAttr { child: u16, off: u32 },
    NodeLocal(LocalId),
}

/// One compiled step of a visit: the run loop interprets these with no
/// rule lookups or per-step hash probes.
#[derive(Clone, Debug)]
enum COp {
    /// An eliminated copy rule: nothing to compute, only scheduled pops.
    Skip { pops: Vec<usize> },
    /// Evaluate a rule and store the result.
    Eval {
        /// The defined occurrence or local (for trace events).
        target: ONode,
        /// Rule index within the production (for profiling/trace events).
        rule: u32,
        /// `None` for copy rules (single read, transferred unchanged).
        func: Option<FuncId>,
        reads: Vec<CRead>,
        write: CWrite,
        pops: Vec<usize>,
    },
    /// Descend into a child.
    Visit {
        child: u16,
        visit: usize,
        partition: usize,
        pops: Vec<usize>,
    },
}

/// The space-optimized evaluator.
#[derive(Debug)]
pub struct SpaceEvaluator<'g> {
    grammar: &'g Grammar,
    seqs: &'g VisitSeqs,
    /// `compiled[prod][partition][visit-1]` — fused instruction streams.
    compiled: Vec<Vec<Vec<Vec<COp>>>>,
    /// Interned `Arg::Const` values, cloned per fetch instead of rebuilt.
    consts: Vec<Value>,
    n_variables: usize,
    n_stacks: usize,
    intern: InternMode,
}

struct RunState {
    globals: Vec<Option<Value>>,
    stacks: Vec<Vec<Value>>,
    node_values: AttrValues,
    node_locals: LocalFrames,
    buf: Vec<Value>,
    live: usize,
    max_live: usize,
    counters: Counters,
}

impl RunState {
    fn bump(&mut self, delta: isize) {
        self.live = (self.live as isize + delta) as usize;
        self.max_live = self.max_live.max(self.live);
    }
}

fn intern(consts: &mut Vec<Value>, v: &Value) -> u32 {
    match consts.iter().position(|c| c == v) {
        Some(i) => i as u32,
        None => {
            consts.push(v.clone());
            (consts.len() - 1) as u32
        }
    }
}

impl<'g> SpaceEvaluator<'g> {
    /// Creates the evaluator from the generator's artifacts, fusing the
    /// flat program with the storage plan into compiled step streams.
    pub fn new(
        grammar: &'g Grammar,
        seqs: &'g VisitSeqs,
        fp: &'g FlatProgram,
        plan: &'g SpacePlan,
    ) -> Self {
        let mut consts = Vec::new();
        let mut compiled: Vec<Vec<Vec<Vec<COp>>>> = vec![Vec::new(); grammar.production_count()];
        for (p, pi) in seqs.keys() {
            let key = (p, pi);
            let fs = &fp.seqs[&key];
            let acc = &plan.access[&key];
            let n_visits = seqs.seq(p, pi).segments.len();
            let mut per_visit: Vec<Vec<COp>> = vec![Vec::new(); n_visits];
            for (pos, item) in fs.items.iter().enumerate() {
                let FlatItem::Op { instr, .. } = item else {
                    continue;
                };
                let v = fs.visit_at(pos);
                let step = &acc.steps[pos];
                let op = match instr {
                    Instr::Eval(target) => {
                        let write = step.write.as_ref().expect("eval step has a write");
                        match write {
                            WritePath::SkipVariable | WritePath::SkipStackTop => COp::Skip {
                                pops: step.pops_after.clone(),
                            },
                            _ => Self::compile_eval(grammar, &mut consts, p, *target, write, step),
                        }
                    }
                    Instr::Visit {
                        child,
                        visit: w,
                        partition: cpart,
                    } => COp::Visit {
                        child: *child,
                        visit: *w,
                        partition: *cpart,
                        pops: step.pops_after.clone(),
                    },
                };
                per_visit[v - 1].push(op);
            }
            let slot = &mut compiled[p.index()];
            if slot.len() <= pi {
                slot.resize(pi + 1, Vec::new());
            }
            slot[pi] = per_visit;
        }
        SpaceEvaluator {
            grammar,
            seqs,
            compiled,
            consts,
            n_variables: plan.n_variables,
            n_stacks: plan.n_stacks,
            intern: InternMode::Off,
        }
    }

    /// Turns hash-consed value interning on or off (off by default).
    /// With interning on, every value stored in a global variable, stack
    /// slot, or node cell is the canonical representative from a private
    /// per-evaluation intern table, so structurally equal cells share one
    /// allocation.
    #[must_use]
    pub fn with_interning(mut self, on: bool) -> Self {
        self.intern = if on {
            InternMode::Local
        } else {
            InternMode::Off
        };
        self
    }

    /// Fuses one `EVAL` step's rule with its storage paths.
    fn compile_eval(
        grammar: &Grammar,
        consts: &mut Vec<Value>,
        p: ProductionId,
        target: ONode,
        write: &WritePath,
        step: &crate::alloc::StepAccess,
    ) -> COp {
        let rule = grammar.rule_for(p, target).expect("rule exists");
        let rule_ix = grammar
            .production(p)
            .rules()
            .iter()
            .position(|r| r.target() == target)
            .expect("rule_for found the rule above") as u32;
        let (func, args): (Option<FuncId>, Vec<&Arg>) = match rule.body() {
            RuleBody::Copy(a) => (None, vec![a]),
            RuleBody::Call { func, args } => (Some(*func), args.iter().collect()),
        };
        debug_assert_eq!(args.len(), step.args.len());
        let reads = args
            .iter()
            .zip(&step.args)
            .map(|(arg, path)| match path {
                ReadPath::Immediate => match arg {
                    Arg::Const(v) => CRead::Const(intern(consts, v)),
                    Arg::Token => CRead::Token,
                    Arg::Node(_) => unreachable!("occurrence args have storage paths"),
                },
                ReadPath::Variable(id) => CRead::Variable(*id),
                ReadPath::Stack(id, depth) => CRead::Stack(*id, *depth),
                ReadPath::Node => match arg {
                    Arg::Node(ONode::Attr(Occ { pos, attr })) => CRead::NodeAttr {
                        child: *pos,
                        off: grammar.attr(*attr).offset() as u32,
                    },
                    Arg::Node(ONode::Local(l)) => CRead::NodeLocal(*l),
                    _ => unreachable!("Node path implies an occurrence arg"),
                },
            })
            .collect();
        let write = match write {
            WritePath::Variable(id) => CWrite::Variable(*id),
            WritePath::Stack(id) => CWrite::Stack(*id),
            WritePath::Node => match target {
                ONode::Attr(Occ { pos, attr }) => CWrite::NodeAttr {
                    child: pos,
                    off: grammar.attr(attr).offset() as u32,
                },
                ONode::Local(l) => CWrite::NodeLocal(l),
            },
            WritePath::SkipVariable | WritePath::SkipStackTop => {
                unreachable!("skips compile to COp::Skip")
            }
        };
        COp::Eval {
            target,
            rule: rule_ix,
            func,
            reads,
            write,
            pops: step.pops_after.clone(),
        }
    }

    /// Evaluates `tree` with optimized storage.
    ///
    /// # Errors
    ///
    /// Same failure modes as the unoptimized evaluator: missing root
    /// inputs, missing tokens.
    pub fn evaluate(&self, tree: &Tree, inputs: &RootInputs) -> Result<SpaceOutcome, EvalError> {
        self.evaluate_recorded(tree, inputs, &mut NoopRecorder)
    }

    /// [`SpaceEvaluator::evaluate`] under an explicit
    /// [`fnc2_guard::EvalBudget`], with an optional deterministic
    /// [`InjectedFault`] armed.
    ///
    /// # Errors
    ///
    /// As for [`SpaceEvaluator::evaluate`], plus
    /// [`EvalError::BudgetExceeded`] when a limit is exhausted or the
    /// injected fault fires.
    pub fn evaluate_guarded(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
    ) -> Result<SpaceOutcome, EvalError> {
        self.evaluate_recorded_guarded(tree, inputs, budget, fault, &mut NoopRecorder)
    }

    /// [`SpaceEvaluator::evaluate`], instrumented: run counters are
    /// replayed into `rec` under the `space.*` keys, and when tracing is
    /// on each storage write emits an `AttrStored` event tagged with its
    /// storage class.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SpaceEvaluator::evaluate`].
    pub fn evaluate_recorded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        rec: &mut R,
    ) -> Result<SpaceOutcome, EvalError> {
        self.evaluate_recorded_guarded(tree, inputs, &EvalBudget::default(), None, rec)
    }

    /// [`SpaceEvaluator::evaluate_recorded`] under an explicit budget and
    /// optional injected fault — the fully general entry point.
    ///
    /// # Errors
    ///
    /// As for [`SpaceEvaluator::evaluate_guarded`].
    pub fn evaluate_recorded_guarded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
        rec: &mut R,
    ) -> Result<SpaceOutcome, EvalError> {
        let g = self.grammar;
        let mut meter = BudgetMeter::with_fault(budget, fault);
        let mut st = RunState {
            globals: vec![None; self.n_variables],
            stacks: vec![Vec::new(); self.n_stacks],
            node_values: AttrValues::new(g, tree),
            node_locals: LocalFrames::new(g, tree),
            buf: Vec::with_capacity(8),
            live: 0,
            max_live: 0,
            counters: Counters::new(),
        };
        let mut ictx = self.intern.ctx();
        let root = tree.root();
        let root_ph = g.production(tree.node(root).production()).lhs();
        for attr in g.inherited(root_ph) {
            let v = inputs
                .get(&attr)
                .ok_or_else(|| EvalError::MissingRootInput {
                    what: g.attr(attr).name().to_string(),
                })?;
            let v = match ictx.as_mut() {
                Some(ictx) => ictx.intern(v.clone(), &mut st.counters).0,
                None => v.clone(),
            };
            st.node_values.set(g, root, attr, v);
            st.bump(1);
        }
        let visits = self.seqs.partitions_of(root_ph)[0].visit_count();
        for v in 1..=visits {
            if rec.spans() {
                rec.span_begin("visit", format!("space visit {v}/{visits} (root)"));
            }
            let r = self.run_visit(tree, root, 0, v, &mut st, &mut meter, &mut ictx, rec);
            if rec.spans() {
                rec.span_end();
                if let Err(e) = &r {
                    if e.is_budget() {
                        rec.span_instant("guard", format!("budget trip: {e}"));
                    }
                }
            }
            r?;
        }
        st.counters
            .raise(Key::SpaceMaxLiveCells, st.max_live as u64);
        st.counters.set(
            Key::SpaceFinalNodeCells,
            (st.node_values.live_count() + st.node_locals.live_count()) as u64,
        );
        st.counters.replay(rec);
        Ok(SpaceOutcome {
            node_values: st.node_values,
            stats: SpaceRunStats::from_counters(&st.counters),
        })
    }

    /// Performs visit `visit` of `node` under `partition`, iteratively: an
    /// explicit frame stack replaces recursion so visit depth is a checked
    /// budget instead of a thread-stack overflow. When a child frame
    /// finishes, the parent resumes at the op *after* its suspended
    /// `COp::Visit` and first runs that op's scheduled pops.
    #[allow(clippy::too_many_arguments)]
    fn run_visit<R: Recorder>(
        &self,
        tree: &Tree,
        node: NodeId,
        partition: usize,
        visit: usize,
        st: &mut RunState,
        meter: &mut BudgetMeter,
        ictx: &mut Option<InternCtx>,
        rec: &mut R,
    ) -> Result<(), EvalError> {
        struct Frame {
            node: NodeId,
            partition: usize,
            visit: usize,
            at: usize,
        }
        let mut stack = vec![Frame {
            node,
            partition,
            visit,
            at: 0,
        }];
        st.counters.add(Key::SpaceVisits, 1);
        if rec.trace() {
            rec.emit(Event::VisitEnter {
                node: node.index() as u32,
                production: tree.node(node).production().index() as u32,
                visit: visit as u16,
            });
        }
        while let Some(frame) = stack.last_mut() {
            let node = frame.node;
            let p = tree.node(node).production();
            let ops: &[COp] = &self.compiled[p.index()][frame.partition][frame.visit - 1];
            if frame.at == ops.len() {
                if rec.trace() {
                    rec.emit(Event::VisitLeave {
                        node: node.index() as u32,
                        production: p.index() as u32,
                        visit: frame.visit as u16,
                    });
                }
                stack.pop();
                // Resume the parent: the op it suspended at is the Visit
                // that spawned this frame; run its delayed pops now.
                if let Some(parent) = stack.last() {
                    let pp = tree.node(parent.node).production();
                    let pops = match &self.compiled[pp.index()][parent.partition][parent.visit - 1]
                        [parent.at - 1]
                    {
                        COp::Visit { pops, .. } => pops,
                        _ => unreachable!("parent frames suspend only at COp::Visit"),
                    };
                    self.pops(pops, st);
                }
                continue;
            }
            let op = &ops[frame.at];
            frame.at += 1;
            match op {
                COp::Skip { pops } => {
                    st.counters.add(Key::SpaceCopiesSkipped, 1);
                    self.pops(pops, st);
                }
                COp::Eval {
                    target,
                    rule,
                    func,
                    reads,
                    write,
                    pops,
                } => {
                    meter
                        .step()
                        .map_err(|k| EvalError::budget(k, format!("space evaluator, {node}")))?;
                    let t0 = if rec.profiling() && rec.sample_rule() {
                        Some(std::time::Instant::now())
                    } else {
                        None
                    };
                    let value = self.compute(tree, p, node, *func, reads, st)?;
                    let value = match ictx.as_mut() {
                        Some(ictx) => ictx.intern(value, &mut st.counters).0,
                        None => value,
                    };
                    if rec.profiling() {
                        rec.rule_cost(
                            p.index() as u32,
                            *rule,
                            func.is_none(),
                            t0.map(|t| t.elapsed().as_nanos() as u64),
                        );
                    }
                    if rec.trace() {
                        rec.emit(Event::RuleFired {
                            node: node.index() as u32,
                            production: p.index() as u32,
                            rule: *rule,
                        });
                    }
                    meter
                        .grow_cells(value.cell_count() as u64)
                        .map_err(|k| EvalError::budget(k, format!("space evaluator, {node}")))?;
                    st.counters.add(Key::SpaceEvals, 1);
                    // Dead sources pop before the fresh push (mirrors the
                    // static simulation).
                    self.pops(pops, st);
                    self.write(tree, node, *target, write, value, st, rec);
                }
                COp::Visit {
                    child,
                    visit: w,
                    partition: cpart,
                    pops: _,
                } => {
                    let c = tree.node(node).children()[*child as usize - 1];
                    meter
                        .check_depth(stack.len() + 1)
                        .map_err(|k| EvalError::budget(k, format!("space evaluator, {c}")))?;
                    st.counters.add(Key::SpaceVisits, 1);
                    if rec.trace() {
                        rec.emit(Event::VisitEnter {
                            node: c.index() as u32,
                            production: tree.node(c).production().index() as u32,
                            visit: *w as u16,
                        });
                    }
                    stack.push(Frame {
                        node: c,
                        partition: *cpart,
                        visit: *w,
                        at: 0,
                    });
                }
            }
        }
        Ok(())
    }

    fn pops(&self, pops: &[usize], st: &mut RunState) {
        for &sid in pops {
            st.stacks[sid].pop().expect("scheduled pop finds a value");
            st.bump(-1);
        }
    }

    fn compute(
        &self,
        tree: &Tree,
        p: ProductionId,
        node: NodeId,
        func: Option<FuncId>,
        reads: &[CRead],
        st: &mut RunState,
    ) -> Result<Value, EvalError> {
        let g = self.grammar;
        let RunState {
            globals,
            stacks,
            node_values,
            node_locals,
            buf,
            counters,
            ..
        } = st;
        buf.clear();
        for read in reads {
            let v =
                match read {
                    CRead::Const(i) => {
                        counters.add(Key::EvalConstHits, 1);
                        self.consts[*i as usize].clone()
                    }
                    CRead::Token => {
                        tree.node(node)
                            .token()
                            .cloned()
                            .ok_or_else(|| EvalError::MissingToken {
                                node,
                                production: g.production(p).name().to_string(),
                            })?
                    }
                    CRead::Variable(id) => globals[*id]
                        .clone()
                        .unwrap_or_else(|| panic!("variable {id} read before write")),
                    CRead::Stack(id, depth) => {
                        let s = &stacks[*id];
                        s[s.len() - 1 - depth].clone()
                    }
                    CRead::NodeAttr { child, off } => {
                        let at = if *child == 0 {
                            node
                        } else {
                            tree.node(node).children()[*child as usize - 1]
                        };
                        node_values
                            .get_slot(at, *off as usize)
                            .cloned()
                            .ok_or_else(|| EvalError::MissingValue {
                                node: at,
                                what: format!("slot {off}"),
                            })?
                    }
                    CRead::NodeLocal(l) => node_locals.get(node, *l).cloned().ok_or_else(|| {
                        EvalError::MissingValue {
                            node,
                            what: g.production(p).locals()[l.index()].name().to_string(),
                        }
                    })?,
                };
            buf.push(v);
        }
        Ok(match func {
            None => buf.pop().expect("copy has one argument"),
            Some(f) => g
                .function(f)
                .apply(buf)
                .map_err(|e| EvalError::SemanticFailure {
                    node,
                    message: e.message,
                })?,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn write<R: Recorder>(
        &self,
        tree: &Tree,
        node: NodeId,
        target: ONode,
        write: &CWrite,
        value: Value,
        st: &mut RunState,
        rec: &mut R,
    ) {
        if rec.trace() {
            if let ONode::Attr(Occ { pos, attr }) = target {
                let at = if pos == 0 {
                    node
                } else {
                    tree.node(node).children()[pos as usize - 1]
                };
                let class = match write {
                    CWrite::Variable(_) => StorageClass::Global,
                    CWrite::Stack(_) => StorageClass::Stack,
                    CWrite::NodeAttr { .. } | CWrite::NodeLocal(_) => StorageClass::Node,
                };
                rec.emit(Event::AttrStored {
                    node: at.index() as u32,
                    attr: attr.index() as u32,
                    class,
                });
            }
        }
        match *write {
            CWrite::Variable(id) => {
                if st.globals[id].replace(value).is_none() {
                    st.bump(1);
                }
            }
            CWrite::Stack(id) => {
                st.stacks[id].push(value);
                st.bump(1);
            }
            CWrite::NodeAttr { child, off } => {
                let at = if child == 0 {
                    node
                } else {
                    tree.node(node).children()[child as usize - 1]
                };
                if st.node_values.set_slot(at, off as usize, value).is_none() {
                    st.bump(1);
                }
            }
            CWrite::NodeLocal(l) => {
                if st.node_locals.set(node, l, value).is_none() {
                    st.bump(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, TreeBuilder};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_visit::{build_visit_seqs, Evaluator};

    use crate::flat::FlatProgram;
    use crate::lifetime::Lifetimes;
    use crate::object::ObjectIndex;

    use super::*;

    /// Builds everything for a grammar and runs both evaluators on a tree,
    /// asserting identical tree-visible results for the given attributes.
    fn assert_equivalent(g: &Grammar, tree: &Tree, inputs: &RootInputs) -> (SpaceRunStats, usize) {
        let snc = snc_test(g);
        assert!(snc.is_snc());
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(g, &lo);
        let fp = FlatProgram::new(g, &seqs);
        let objects = ObjectIndex::new(g);
        let lt = Lifetimes::analyze(g, &seqs, &fp, &objects);
        let plan = crate::alloc::plan_storage(g, &seqs, &fp, &objects, &lt);

        let plain = Evaluator::new(g, &seqs);
        let (want, _) = plain.evaluate(tree, inputs).unwrap();
        let opt = SpaceEvaluator::new(g, &seqs, &fp, &plan);
        let outcome = opt.evaluate(tree, inputs).unwrap();

        // Root synthesized attributes must agree (they are node-stored).
        let root_ph = g.production(tree.node(tree.root()).production()).lhs();
        for attr in g.synthesized(root_ph) {
            assert_eq!(
                outcome.node_values.get(g, tree.root(), attr),
                want.get(g, tree.root(), attr),
                "root attribute {}",
                g.attr(attr).name()
            );
        }
        // Total instance count for the ÷4–8 comparison.
        let total_instances = want.live_count();
        (outcome.stats, total_instances)
    }

    fn two_pass() -> Grammar {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
        let root = g.production("root", s, &[a]);
        g.copy(root, fnc2_ag::Occ::lhs(out), fnc2_ag::Occ::new(1, up));
        g.constant(root, fnc2_ag::Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.call(
            mid,
            fnc2_ag::Occ::new(1, down),
            "succ",
            [fnc2_ag::Occ::lhs(down).into()],
        );
        g.call(
            mid,
            fnc2_ag::Occ::lhs(up),
            "succ",
            [fnc2_ag::Occ::new(1, up).into()],
        );
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, fnc2_ag::Occ::lhs(up), fnc2_ag::Occ::lhs(down));
        g.finish().unwrap()
    }

    #[test]
    fn equivalence_and_cell_reduction_on_chain() {
        let g = two_pass();
        let mut tb = TreeBuilder::new(&g);
        let mut cur = tb.op("leaf", &[]).unwrap();
        for _ in 0..40 {
            cur = tb.op("mid", &[cur]).unwrap();
        }
        let root = tb.op("root", &[cur]).unwrap();
        let tree = tb.finish_root(root).unwrap();

        let (stats, total_instances) = assert_equivalent(&g, &tree, &RootInputs::new());
        // The chain has ~84 instances but the stacks hold at most a couple
        // of cells at a time: the dynamic high-water mark must be far
        // smaller than tree storage.
        assert!(
            stats.max_live_cells * 4 <= total_instances,
            "max_live {} vs instances {total_instances}",
            stats.max_live_cells
        );
        assert!(stats.copies_skipped > 0 || stats.evals > 0);
    }

    #[test]
    fn interned_run_matches_plain() {
        let g = two_pass();
        let mut tb = TreeBuilder::new(&g);
        let mut cur = tb.op("leaf", &[]).unwrap();
        for _ in 0..20 {
            cur = tb.op("mid", &[cur]).unwrap();
        }
        let root = tb.op("root", &[cur]).unwrap();
        let tree = tb.finish_root(root).unwrap();

        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let fp = FlatProgram::new(&g, &seqs);
        let objects = ObjectIndex::new(&g);
        let lt = Lifetimes::analyze(&g, &seqs, &fp, &objects);
        let plan = crate::alloc::plan_storage(&g, &seqs, &fp, &objects, &lt);

        let plain = SpaceEvaluator::new(&g, &seqs, &fp, &plan);
        let want = plain.evaluate(&tree, &RootInputs::new()).unwrap();
        let interned = SpaceEvaluator::new(&g, &seqs, &fp, &plan).with_interning(true);
        let got = interned.evaluate(&tree, &RootInputs::new()).unwrap();

        let root_ph = g.production(tree.node(tree.root()).production()).lhs();
        for attr in g.synthesized(root_ph) {
            assert_eq!(
                got.node_values.get(&g, tree.root(), attr),
                want.node_values.get(&g, tree.root(), attr),
                "root attribute {}",
                g.attr(attr).name()
            );
        }
        // Interning must not change the storage accounting.
        assert_eq!(got.stats, want.stats);
    }

    #[test]
    fn stacks_drain_completely() {
        let g = two_pass();
        let mut tb = TreeBuilder::new(&g);
        let mut cur = tb.op("leaf", &[]).unwrap();
        for _ in 0..5 {
            cur = tb.op("mid", &[cur]).unwrap();
        }
        let root = tb.op("root", &[cur]).unwrap();
        let tree = tb.finish_root(root).unwrap();

        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let fp = FlatProgram::new(&g, &seqs);
        let objects = ObjectIndex::new(&g);
        let lt = Lifetimes::analyze(&g, &seqs, &fp, &objects);
        let plan = crate::alloc::plan_storage(&g, &seqs, &fp, &objects, &lt);
        let opt = SpaceEvaluator::new(&g, &seqs, &fp, &plan);
        let outcome = opt.evaluate(&tree, &RootInputs::new()).unwrap();
        // Nothing but node-resident cells remains live at the end: the
        // final count equals root in+out plus any node-class attributes.
        assert!(outcome.stats.final_node_cells <= tree.size());
    }
}
