//! # fnc2-space — the space optimizer (paper §2.2)
//!
//! The visit-sequence paradigm's "beneficial side effect": a statically
//! determinable total evaluation order permits a fine static analysis of
//! every attribute instance's lifetime, which in turn decides the most
//! efficient storage — a **global variable**, a **global stack**, or (last
//! resort) **tree nodes**. This crate implements FNC-2's improvements over
//! Kastens:
//!
//! * below-top stack accesses at statically computed depths, with delayed
//!   `POP`s, so that *every* temporary attribute fits a stack;
//! * a finer variable test based on the grammar of visits and contexts
//!   (here: per-visit may-evaluate sets);
//! * packing of variables and stacks driven by the number of **copy rules**
//!   a grouping eliminates (not mere feasibility);
//! * copy-rule elimination itself (shared variables; stack-top renames).
//!
//! Entry points: [`analyze_space`] builds a [`SpacePlan`]; [`SpaceEvaluator`]
//! runs with optimized storage and reports the live-cell high-water mark.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod flat;
mod lifetime;
mod object;
mod runtime;

pub use alloc::{
    plan_storage, validate_plan, ReadPath, SeqAccess, SpacePlan, SpaceStats, StepAccess, Storage,
    WritePath,
};
pub use flat::{FlatItem, FlatProgram, FlatSeq, Instance, InstanceKind};
pub use lifetime::{interval_hits_visit, strict_stack_candidates, Lifetimes};
pub use object::{Object, ObjectIndex, ObjectSet};
pub use runtime::{SpaceEvaluator, SpaceOutcome, SpaceRunStats};

use fnc2_ag::Grammar;
use fnc2_visit::VisitSeqs;

/// One-call space analysis: flattening, lifetimes, storage plan.
pub fn analyze_space(
    grammar: &Grammar,
    seqs: &VisitSeqs,
) -> (FlatProgram, ObjectIndex, Lifetimes, SpacePlan) {
    let fp = FlatProgram::new(grammar, seqs);
    let objects = ObjectIndex::new(grammar);
    let lt = Lifetimes::analyze(grammar, seqs, &fp, &objects);
    let plan = plan_storage(grammar, seqs, &fp, &objects, &lt);
    (fp, objects, lt, plan)
}
