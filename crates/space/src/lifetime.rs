//! The temporary test and the may-evaluate sets.
//!
//! An object is *temporary* when every instance's lifetime is contained in
//! a single visit of every sequence it appears in — the paper reports that
//! temporaries "typically account for more than 80% of all attributes"
//! (§2.2) and stores all of them outside the tree. The may-evaluate sets
//! (`attributes evaluated during visit v of an X-rooted subtree`) drive the
//! global-variable test; they are a grammar-flow fixpoint over the
//! sequences, FNC-2's "grammar of visits and contexts" in set form.

use std::collections::HashMap;

use fnc2_ag::{Grammar, ONode, Occ, PhylumId, ProductionId};
use fnc2_visit::{Instr, VisitSeqs};

use crate::flat::{FlatItem, FlatProgram};
use crate::object::{Object, ObjectIndex, ObjectSet};

/// Lifetime facts about every storage object.
#[derive(Clone, Debug)]
pub struct Lifetimes {
    /// `temporary[i]`: object `i`'s lifetime never crosses a visit
    /// boundary.
    pub temporary: Vec<bool>,
    /// `may_eval[(phylum, partition, visit)]`: objects that may be
    /// evaluated during that visit of a subtree of that phylum.
    pub may_eval: HashMap<(PhylumId, usize, usize), ObjectSet>,
}

impl Lifetimes {
    /// Computes lifetimes for the whole program.
    pub fn analyze(
        grammar: &Grammar,
        seqs: &VisitSeqs,
        fp: &FlatProgram,
        objects: &ObjectIndex,
    ) -> Lifetimes {
        let temporary = temporaries(fp, objects);
        let may_eval = may_eval_sets(grammar, seqs, fp, objects);
        Lifetimes {
            temporary,
            may_eval,
        }
    }

    /// True if `o` is temporary.
    pub fn is_temporary(&self, objects: &ObjectIndex, o: Object) -> bool {
        self.temporary[objects.index(o)]
    }

    /// Fraction of objects that are temporary.
    pub fn temporary_ratio(&self) -> f64 {
        if self.temporary.is_empty() {
            return 1.0;
        }
        self.temporary.iter().filter(|&&b| b).count() as f64 / self.temporary.len() as f64
    }
}

/// Marks each object temporary iff, in every sequence, every instance's
/// uses stay in the visit of its definition.
fn temporaries(fp: &FlatProgram, objects: &ObjectIndex) -> Vec<bool> {
    let mut temp = vec![true; objects.len()];
    for (key, insts) in &fp.instances {
        let fs = &fp.seqs[key];
        for inst in insts {
            let dv = fs.visit_at(inst.def_pos);
            if inst.uses.iter().any(|&u| fs.visit_at(u) != dv) {
                temp[objects.index(inst.object)] = false;
            }
        }
    }
    temp
}

/// The least fixpoint of the may-evaluate sets.
fn may_eval_sets(
    grammar: &Grammar,
    seqs: &VisitSeqs,
    fp: &FlatProgram,
    objects: &ObjectIndex,
) -> HashMap<(PhylumId, usize, usize), ObjectSet> {
    // Enumerate keys (phylum, partition, visit).
    let mut keys: Vec<(PhylumId, usize, usize)> = Vec::new();
    for ph in grammar.phyla() {
        for (pi, part) in seqs.partitions_of(ph).iter().enumerate() {
            for v in 1..=part.visit_count() {
                keys.push((ph, pi, v));
            }
        }
    }
    let key_ix: HashMap<(PhylumId, usize, usize), usize> = keys
        .iter()
        .copied()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    let mut sets: Vec<ObjectSet> = keys.iter().map(|_| ObjectSet::new(objects.len())).collect();

    // Per key, the (sequence, visit) bodies contributing to it, and the
    // nested keys referenced by their VISITs.
    struct Body {
        direct: ObjectSet,
        nested: Vec<usize>, // key indices
    }
    let mut bodies: Vec<Vec<Body>> = keys.iter().map(|_| Vec::new()).collect();
    for (&(p, pi), fs) in &fp.seqs {
        let lhs = grammar.production(p).lhs();
        let prod = grammar.production(p);
        // Group items by visit.
        let nvisits = seqs.partitions_of(lhs)[pi].visit_count();
        for v in 1..=nvisits {
            let Some(&ki) = key_ix.get(&(lhs, pi, v)) else {
                continue;
            };
            let mut direct = ObjectSet::new(objects.len());
            let mut nested = Vec::new();
            for item in &fs.items {
                let FlatItem::Op { visit, instr } = item else {
                    continue;
                };
                if *visit != v {
                    continue;
                }
                match instr {
                    Instr::Eval(target) => {
                        let obj = match target {
                            ONode::Attr(Occ { attr, .. }) => Object::Attr(*attr),
                            ONode::Local(l) => Object::Local(p, *l),
                        };
                        direct.insert(objects.index(obj));
                    }
                    Instr::Visit {
                        child,
                        visit: w,
                        partition,
                    } => {
                        let ph = prod.phylum_at(*child);
                        nested.push(key_ix[&(ph, *partition, *w)]);
                    }
                }
            }
            bodies[ki].push(Body { direct, nested });
        }
    }

    // Dependents: key k is read by keys whose bodies nest k.
    let mut dependents: Vec<Vec<usize>> = keys.iter().map(|_| Vec::new()).collect();
    for (ki, bs) in bodies.iter().enumerate() {
        for b in bs {
            for &nk in &b.nested {
                if !dependents[nk].contains(&ki) {
                    dependents[nk].push(ki);
                }
            }
        }
    }

    fnc2_gfa::fixpoint(keys.len(), &dependents, |ki| {
        let mut acc = ObjectSet::new(objects.len());
        for b in &bodies[ki] {
            acc.union_in_place(&b.direct);
            for &nk in &b.nested {
                if nk != ki {
                    let nested = sets[nk].clone();
                    acc.union_in_place(&nested);
                } else {
                    // Self-nesting (recursive phylum): already included.
                    let own = sets[ki].clone();
                    acc.union_in_place(&own);
                }
            }
        }
        sets[ki].union_in_place(&acc)
    });

    keys.into_iter().zip(sets).collect()
}

/// The strict-stack test for **non-temporary** attributes — the extension
/// the paper announces as work in progress (§2.2: "it seems possible to
/// use the grammar of visits and contexts … to determine whether a
/// non-temporary attribute can be stored in a strict stack, i.e., with
/// accesses only to the top element and without trying to extend the
/// lifetimes").
///
/// The conservative criterion implemented here: the object's instances may
/// cross visit boundaries only at their **own node** (LHS occurrences),
/// its parent-side interval must span from its definition to the last
/// visit that reads it with no parent-side reads in between, and no
/// intervening visit may evaluate the object in a *sibling* subtree (which
/// would break LIFO). Returns the candidate objects; the storage plan
/// itself still keeps non-temporaries at the nodes (matching the paper's
/// implementation state), so this feeds the §4.1 "will be even better"
/// projection.
pub fn strict_stack_candidates(
    grammar: &Grammar,
    fp: &FlatProgram,
    lt: &Lifetimes,
    objects: &ObjectIndex,
) -> Vec<usize> {
    use crate::flat::InstanceKind;
    let mut candidates = Vec::new();
    'obj: for (oi, obj) in objects.iter() {
        if lt.temporary[oi] {
            continue; // already handled by the temporary machinery
        }
        let Object::Attr(a) = obj else {
            continue; // locals that cross visits stay at the node
        };
        if grammar.attr(a).phylum() == grammar.root() {
            continue;
        }
        for (key, insts) in &fp.instances {
            let fs = &fp.seqs[key];
            for inst in insts.iter().filter(|i| i.object == obj) {
                match inst.kind {
                    // Cross-visit uses at the own node are the allowed
                    // lifetime extension.
                    InstanceKind::LhsInh | InstanceKind::LhsSyn => {}
                    // Parent-side: every use must be a VISIT (top-only
                    // access: the child consumes it; the parent itself
                    // never reads it back), and no intervening visit may
                    // evaluate the object elsewhere.
                    InstanceKind::ChildInh | InstanceKind::ChildSyn => {
                        for &u in &inst.uses {
                            let is_visit = matches!(
                                fs.items[u],
                                FlatItem::Op {
                                    instr: Instr::Visit { .. },
                                    ..
                                }
                            );
                            if !is_visit && fs.visit_at(u) != fs.visit_at(inst.def_pos) {
                                continue 'obj;
                            }
                        }
                        if interval_hits_visit(
                            grammar,
                            fp,
                            &lt.may_eval,
                            *key,
                            inst.def_pos,
                            inst.last_use(),
                            oi,
                            &inst.uses,
                        ) {
                            continue 'obj;
                        }
                    }
                    InstanceKind::Local => continue 'obj,
                }
            }
        }
        candidates.push(oi);
    }
    candidates
}

/// Returns true if the interval `[def, last]` of a sequence contains a
/// `VISIT` that may evaluate object index `oi` — the global-variable
/// conflict test. Positions listed in `exclude` (the instance's own uses:
/// visits during which the visited subtree reads the instance and whose
/// sequences are checked directly) are skipped.
#[allow(clippy::too_many_arguments)]
pub fn interval_hits_visit(
    grammar: &Grammar,
    fp: &FlatProgram,
    may_eval: &HashMap<(PhylumId, usize, usize), ObjectSet>,
    key: (ProductionId, usize),
    def: usize,
    last: usize,
    oi: usize,
    exclude: &[usize],
) -> bool {
    let fs = &fp.seqs[&key];
    let prod = grammar.production(key.0);
    for pos in def + 1..=last.min(fs.items.len().saturating_sub(1)) {
        if exclude.contains(&pos) {
            continue;
        }
        if let FlatItem::Op {
            instr:
                Instr::Visit {
                    child,
                    visit,
                    partition,
                },
            ..
        } = &fs.items[pos]
        {
            let ph = prod.phylum_at(*child);
            if may_eval[&(ph, *partition, *visit)].contains(oi) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_visit::build_visit_seqs;

    use super::*;

    fn pipeline(g: &Grammar) -> (VisitSeqs, FlatProgram, ObjectIndex, Lifetimes) {
        let snc = snc_test(g);
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(g, &lo);
        let fp = FlatProgram::new(g, &seqs);
        let objects = ObjectIndex::new(g);
        let lt = Lifetimes::analyze(g, &seqs, &fp, &objects);
        (seqs, fp, objects, lt)
    }

    fn two_pass() -> Grammar {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        g.finish().unwrap()
    }

    #[test]
    fn single_visit_grammar_is_all_temporary() {
        let g = two_pass();
        let (_seqs, _fp, objects, lt) = pipeline(&g);
        assert_eq!(lt.temporary.len(), objects.len());
        assert!(lt.temporary.iter().all(|&b| b), "{:?}", lt.temporary);
        assert_eq!(lt.temporary_ratio(), 1.0);
    }

    /// Force a cross-visit lifetime: i1 read again during visit 2.
    #[test]
    fn cross_visit_use_is_non_temporary() {
        let mut g = GrammarBuilder::new("twovisit");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i1 = g.inh(a, "i1");
        let s1 = g.syn(a, "s1");
        let i2 = g.inh(a, "i2");
        let s2 = g.syn(a, "s2");
        g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
        let root = g.production("root", s, &[a]);
        g.constant(root, Occ::new(1, i1), Value::Int(3));
        g.copy(root, Occ::new(1, i2), Occ::new(1, s1));
        g.copy(root, Occ::lhs(out), Occ::new(1, s2));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        // s2 := i1 + i2 — reads i1 again in visit 2.
        g.call(
            leaf,
            Occ::lhs(s2),
            "add",
            [Occ::lhs(i1).into(), Occ::lhs(i2).into()],
        );
        let g = g.finish().unwrap();
        let (_seqs, _fp, objects, lt) = pipeline(&g);
        let a = g.phylum_by_name("A").unwrap();
        let i1 = g.attr_by_name(a, "i1").unwrap();
        let s1 = g.attr_by_name(a, "s1").unwrap();
        assert!(
            !lt.is_temporary(&objects, Object::Attr(i1)),
            "i1 crosses visits"
        );
        assert!(
            lt.is_temporary(&objects, Object::Attr(s1)),
            "s1 stays in visit 1"
        );
    }

    #[test]
    fn may_eval_propagates_through_recursion() {
        let g = two_pass();
        let (_seqs, _fp, objects, lt) = pipeline(&g);
        let a = g.phylum_by_name("A").unwrap();
        let down = g.attr_by_name(a, "down").unwrap();
        let up = g.attr_by_name(a, "up").unwrap();
        let me = &lt.may_eval[&(a, 0, 1)];
        // Visiting an A subtree evaluates nested down (via mid) and up.
        assert!(me.contains(objects.index(Object::Attr(down))));
        assert!(me.contains(objects.index(Object::Attr(up))));
    }
}
