//! Space-optimizer integration tests: non-temporary node storage,
//! strict-stack candidates, equivalence on two-visit grammars, and the
//! static/dynamic accounting contracts.

use fnc2_ag::{Grammar, GrammarBuilder, Occ, TreeBuilder, Value};
use fnc2_analysis::{classify, Inclusion};
use fnc2_space::{analyze_space, strict_stack_candidates, Object, SpaceEvaluator, Storage};
use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

/// A two-visit grammar where `i1` is read again during visit 2: `i1` is
/// non-temporary and must stay at the node — and the optimized evaluator
/// must still agree with the plain one.
fn two_visit_nontemp() -> Grammar {
    let mut g = GrammarBuilder::new("nontemp");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let out = g.syn(s, "out");
    let i1 = g.inh(a, "i1");
    let s1 = g.syn(a, "s1");
    let i2 = g.inh(a, "i2");
    let s2 = g.syn(a, "s2");
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    let root = g.production("root", s, &[a]);
    g.constant(root, Occ::new(1, i1), Value::Int(5));
    g.copy(root, Occ::new(1, i2), Occ::new(1, s1));
    g.copy(root, Occ::lhs(out), Occ::new(1, s2));
    // chain : A ::= A keeps it recursive so stacks matter too.
    let chain = g.production("chain", a, &[a]);
    g.call(
        chain,
        Occ::new(1, i1),
        "add",
        [Occ::lhs(i1).into(), Occ::lhs(i1).into()],
    );
    g.copy(chain, Occ::lhs(s1), Occ::new(1, s1));
    g.copy(chain, Occ::new(1, i2), Occ::lhs(i2));
    g.copy(chain, Occ::lhs(s2), Occ::new(1, s2));
    let leaf = g.production("leafa", a, &[]);
    g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
    // s2 (visit 2) re-reads i1 (made available in visit 1): non-temporary.
    g.call(
        leaf,
        Occ::lhs(s2),
        "add",
        [Occ::lhs(i1).into(), Occ::lhs(i2).into()],
    );
    g.finish().unwrap()
}

#[test]
fn non_temporary_goes_to_node_and_still_evaluates() {
    let g = two_visit_nontemp();
    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let lo = c.l_ordered.unwrap();
    let seqs = build_visit_seqs(&g, &lo);
    let (fp, objects, lt, plan) = analyze_space(&g, &seqs);
    let a = g.phylum_by_name("A").unwrap();
    let i1 = g.attr_by_name(a, "i1").unwrap();
    assert!(
        !lt.is_temporary(&objects, Object::Attr(i1)),
        "i1 crosses visits"
    );
    assert_eq!(plan.storage_of(&objects, Object::Attr(i1)), Storage::Node);

    // Equivalence on a chain.
    let mut tb = TreeBuilder::new(&g);
    let mut cur = tb.op("leafa", &[]).unwrap();
    for _ in 0..6 {
        cur = tb.op("chain", &[cur]).unwrap();
    }
    let root = tb.op("root", &[cur]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let plain = Evaluator::new(&g, &seqs);
    let (want, _) = plain.evaluate(&tree, &RootInputs::new()).unwrap();
    let opt = SpaceEvaluator::new(&g, &seqs, &fp, &plan);
    let got = opt.evaluate(&tree, &RootInputs::new()).unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();
    assert_eq!(
        got.node_values.get(&g, tree.root(), out),
        want.get(&g, tree.root(), out)
    );
    // Node-resident cells remain at the end (i1 instances), far fewer than
    // the full decoration.
    assert!(got.stats.final_node_cells > 0);
    assert!(got.stats.final_node_cells < want.live_count());
}

#[test]
fn strict_stack_analysis_finds_the_clean_nontemporaries() {
    // In `two_visit_nontemp`, i1 is non-temporary but its only lifetime
    // extension is at its own node (re-read in visit 2): a strict-stack
    // candidate per the §2.2 extension.
    let g = two_visit_nontemp();
    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&g, &c.l_ordered.unwrap());
    let (fp, objects, lt, _) = analyze_space(&g, &seqs);
    let cands = strict_stack_candidates(&g, &fp, &lt, &objects);
    let a = g.phylum_by_name("A").unwrap();
    let i1 = g.attr_by_name(a, "i1").unwrap();
    assert!(
        cands.contains(&objects.index(Object::Attr(i1))),
        "i1 is a strict-stack candidate"
    );
}

#[test]
fn storage_proportions_account_for_every_occurrence() {
    for g in [
        fnc2_corpus::binary(),
        fnc2_corpus::desk(),
        fnc2_corpus::blocks(),
        fnc2_corpus::minipascal().0,
        two_visit_nontemp(),
    ] {
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &c.l_ordered.unwrap());
        let (_, _, lt, plan) = analyze_space(&g, &seqs);
        let total: usize = g.productions().map(|p| g.occurrences(p).len()).sum();
        assert_eq!(plan.stats.occ_total(), total, "{}", g.name());
        assert!(plan.stats.copies_eliminated <= plan.stats.copies_eliminable);
        assert!(lt.temporary_ratio() >= 0.0 && lt.temporary_ratio() <= 1.0);
        // Packing never yields more groups than objects.
        assert!(plan.stats.variables_after <= plan.stats.variables_before.max(1));
        assert!(plan.stats.stacks_after <= plan.stats.stacks_before.max(1));
        let _ = total;
    }
}

#[test]
fn optimized_runtime_drains_stacks_on_every_corpus_grammar() {
    // After a full evaluation the stacks must be empty: every scheduled
    // pop fired (the delayed-pop schedule is complete).
    for (g, tree) in [
        {
            let g = fnc2_corpus::binary();
            let t = fnc2_corpus::binary_tree(&g, "110101");
            (g, t)
        },
        {
            let g = fnc2_corpus::blocks();
            let t = fnc2_corpus::blocks_tree(&g, "d:a u:a [ d:b u:b u:a ]");
            (g, t)
        },
    ] {
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &c.l_ordered.unwrap());
        let (fp, _, _, plan) = analyze_space(&g, &seqs);
        let opt = SpaceEvaluator::new(&g, &seqs, &fp, &plan);
        let out = opt.evaluate(&tree, &RootInputs::new()).unwrap();
        // max live is at least the final node-resident count.
        assert!(out.stats.max_live_cells >= out.stats.final_node_cells);
    }
}

#[test]
fn space_plan_is_deterministic() {
    let g = fnc2_corpus::minipascal().0;
    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&g, &c.l_ordered.unwrap());
    let (_, _, _, p1) = analyze_space(&g, &seqs);
    let (_, _, _, p2) = analyze_space(&g, &seqs);
    assert_eq!(p1.storage, p2.storage);
    assert_eq!(p1.n_variables, p2.n_variables);
    assert_eq!(p1.n_stacks, p2.n_stacks);
    assert_eq!(p1.eliminated, p2.eliminated);
}

/// §2.2: "since with that scheme the only purpose of the tree is to
/// conduct the evaluator, it needs not be a physical object any more…
/// attributes evaluation on DAGs (i.e., trees with shared subtrees) comes
/// for free." With node storage the two instances of a shared subtree
/// collide; with global variables/stacks they do not.
#[test]
fn dag_evaluation_works_with_global_storage_only() {
    let mut g = GrammarBuilder::new("dag");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let out = g.syn(s, "out");
    let d = g.inh(a, "d");
    let u = g.syn(a, "u");
    g.func("double", 1, |v| Value::Int(v[0].as_int() * 2));
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    let fork = g.production("fork", s, &[a, a]);
    g.constant(fork, Occ::new(1, d), Value::Int(1));
    g.constant(fork, Occ::new(2, d), Value::Int(5));
    g.call(
        fork,
        Occ::lhs(out),
        "add",
        [Occ::new(1, u).into(), Occ::new(2, u).into()],
    );
    let leaf = g.production("leafa", a, &[]);
    g.call(leaf, Occ::lhs(u), "double", [Occ::lhs(d).into()]);
    let g = g.finish().unwrap();

    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&g, &c.l_ordered.unwrap());
    let (fp, objects, _, plan) = analyze_space(&g, &seqs);
    // Both A attributes live out of the tree.
    let d_st = plan.storage_of(&objects, Object::Attr(d));
    let u_st = plan.storage_of(&objects, Object::Attr(u));
    assert_ne!(d_st, Storage::Node, "d: {d_st:?}");
    assert_ne!(u_st, Storage::Node, "u: {u_st:?}");

    // Build a DAG: ONE leaf node used as both children.
    let mut tb = TreeBuilder::new(&g);
    let shared = tb
        .node(g.production_by_name("leafa").unwrap(), &[])
        .unwrap();
    let root = tb
        .node(g.production_by_name("fork").unwrap(), &[shared, shared])
        .unwrap();
    let tree = tb.finish(root);

    // The optimized evaluator is correct: 1*2 + 5*2 = 12.
    let opt = SpaceEvaluator::new(&g, &seqs, &fp, &plan);
    let got = opt.evaluate(&tree, &RootInputs::new()).unwrap();
    let sroot = tree.root();
    assert_eq!(
        got.node_values
            .get(&g, sroot, g.attr_by_name(s, "out").unwrap()),
        Some(&Value::Int(12))
    );

    // The tree-storing evaluator collides on the shared node: the second
    // visit overwrites the first instance's cells — both reads then see
    // the *last* value (5*2), yielding 20. This is precisely why storing
    // attributes out of the tree makes DAGs free.
    let plain = Evaluator::new(&g, &seqs);
    let (vals, _) = plain.evaluate(&tree, &RootInputs::new()).unwrap();
    assert_eq!(
        vals.get(&g, sroot, g.attr_by_name(s, "out").unwrap()),
        Some(&Value::Int(20)),
        "node storage cannot tell the two instances apart"
    );
}
