//! # fnc2-vfs — crash-consistent storage abstraction with injectable faults
//!
//! Every byte the FNC-2 reproduction persists — compiled-table artifacts,
//! batch checkpoints, trace and report files — flows through the [`Vfs`]
//! trait defined here. Production code uses [`RealVfs`] (a thin classified
//! wrapper over `std::fs`); tests and the fuzz oracle's crash-recovery
//! harness use [`FaultVfs`], which injects torn writes, partial reads,
//! `ENOSPC`, `EINTR`, failed renames and simulated power-cuts from a
//! deterministic, seed-driven [`IoFaultPlan`] in the style of
//! `fnc2-guard`'s `FaultPlan`: the same seed always yields the same fault
//! at the same operation, so every storage failure is a one-line
//! reproducer.
//!
//! The contract the rest of the system builds on:
//!
//! - every operation returns a *classified* [`VfsError`] (kind + path +
//!   operation), never a panic;
//! - a failed or interrupted write may leave a **prefix** of the intended
//!   bytes (torn write) — durable formats must therefore carry checksums;
//! - a simulated power-cut ([`IoFaultKind::PowerCut`]) persists a prefix
//!   and then fails *every* subsequent operation on that handle; recovery
//!   is modeled by re-opening the same directory with a fresh [`RealVfs`].
//!
//! The crate is dependency-free on purpose: `fnc2-tables`, `fnc2-par` and
//! `fnc2` all sit on top of it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Classified failure category of a storage operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VfsErrorKind {
    /// The path does not exist.
    NotFound,
    /// The device is out of space (`ENOSPC`); a prefix may have been written.
    NoSpace,
    /// The operation was interrupted (`EINTR`); safe to retry.
    Interrupted,
    /// A write persisted only a prefix of the intended bytes.
    TornWrite,
    /// Simulated power-cut: the backing store stopped mid-operation and
    /// every subsequent operation on this handle fails.
    PowerCut,
    /// A rename failed; the source file is still in place.
    RenameFailed,
    /// Permission denied.
    PermissionDenied,
    /// A path component was not a directory.
    NotADirectory,
    /// Any other I/O failure (carried verbatim in the detail string).
    Other,
}

impl VfsErrorKind {
    /// Stable lowercase name, used in diagnostics and metrics.
    pub fn name(self) -> &'static str {
        match self {
            VfsErrorKind::NotFound => "not-found",
            VfsErrorKind::NoSpace => "no-space",
            VfsErrorKind::Interrupted => "interrupted",
            VfsErrorKind::TornWrite => "torn-write",
            VfsErrorKind::PowerCut => "power-cut",
            VfsErrorKind::RenameFailed => "rename-failed",
            VfsErrorKind::PermissionDenied => "permission-denied",
            VfsErrorKind::NotADirectory => "not-a-directory",
            VfsErrorKind::Other => "io-error",
        }
    }
}

impl fmt::Display for VfsErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A classified storage error: which operation, on which path, failed how.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VfsError {
    /// The operation that failed (`"read"`, `"write"`, `"rename"`, ...).
    pub op: &'static str,
    /// The path the operation targeted.
    pub path: PathBuf,
    /// The failure category.
    pub kind: VfsErrorKind,
    /// Free-form detail (OS error text, injected-fault description).
    pub detail: String,
}

impl VfsError {
    fn new(op: &'static str, path: &Path, kind: VfsErrorKind, detail: impl Into<String>) -> Self {
        VfsError {
            op,
            path: path.to_path_buf(),
            kind,
            detail: detail.into(),
        }
    }

    /// Transient errors are safe to retry after a short backoff.
    pub fn is_transient(&self) -> bool {
        self.kind == VfsErrorKind::Interrupted
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage fault ({}) during {} of {}: {}",
            self.kind,
            self.op,
            self.path.display(),
            self.detail
        )
    }
}

impl std::error::Error for VfsError {}

fn classify_io(op: &'static str, path: &Path, e: &std::io::Error) -> VfsError {
    let kind = match e.raw_os_error() {
        Some(28) => VfsErrorKind::NoSpace,       // ENOSPC
        Some(4) => VfsErrorKind::Interrupted,    // EINTR
        Some(20) => VfsErrorKind::NotADirectory, // ENOTDIR
        _ => match e.kind() {
            std::io::ErrorKind::NotFound => VfsErrorKind::NotFound,
            std::io::ErrorKind::PermissionDenied => VfsErrorKind::PermissionDenied,
            std::io::ErrorKind::Interrupted => VfsErrorKind::Interrupted,
            _ => VfsErrorKind::Other,
        },
    };
    VfsError::new(op, path, kind, e.to_string())
}

/// The filesystem surface the FNC-2 system uses, narrow by design.
///
/// Implementations must be safe to share across the batch evaluator's
/// worker threads (`Send + Sync`). All operations are whole-file and
/// path-addressed; there are no open handles to leak across a simulated
/// crash.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read the entire file. A fault backend may return a silently
    /// *truncated* prefix — durable formats must detect this themselves
    /// (checksums / length headers).
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError>;

    /// Create/truncate `path`, write all bytes, and sync file contents.
    /// On failure a prefix of `bytes` may have been persisted.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Append bytes to `path`, creating it if missing. Not synced — an
    /// appended suffix may be lost on power-cut (torn tail), which
    /// journal formats must tolerate.
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Atomically rename `from` to `to` (same directory). On failure the
    /// source is still in place.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError>;

    /// Remove a file. Removing a missing file is an error (`NotFound`).
    fn remove_file(&self, path: &Path) -> Result<(), VfsError>;

    /// Create a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> Result<(), VfsError>;

    /// List the entries of a directory, sorted by file name for
    /// deterministic iteration. Returns full paths.
    fn read_dir(&self, path: &Path) -> Result<Vec<PathBuf>, VfsError>;

    /// Does the path exist?
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: classified passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        fs::read(path).map_err(|e| classify_io("read", path, &e))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut f = fs::File::create(path).map_err(|e| classify_io("write", path, &e))?;
        f.write_all(bytes)
            .map_err(|e| classify_io("write", path, &e))?;
        f.sync_all().map_err(|e| classify_io("sync", path, &e))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| classify_io("append", path, &e))?;
        f.write_all(bytes)
            .map_err(|e| classify_io("append", path, &e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        fs::rename(from, to).map_err(|e| {
            let mut err = classify_io("rename", from, &e);
            if err.kind == VfsErrorKind::Other {
                err.kind = VfsErrorKind::RenameFailed;
            }
            err
        })
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        fs::remove_file(path).map_err(|e| classify_io("remove", path, &e))
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), VfsError> {
        fs::create_dir_all(path).map_err(|e| classify_io("create-dir", path, &e))
    }

    fn read_dir(&self, path: &Path) -> Result<Vec<PathBuf>, VfsError> {
        let rd = fs::read_dir(path).map_err(|e| classify_io("read-dir", path, &e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| classify_io("read-dir", path, &e))?;
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Which class of operation a planned fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `write` and `append`.
    Write,
    /// `rename`.
    Rename,
    /// `read`.
    Read,
}

impl OpClass {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Write => "write",
            OpClass::Rename => "rename",
            OpClass::Read => "read",
        }
    }
}

/// The concrete fault a [`FaultVfs`] injects when its trigger matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Persist only the first `keep` bytes of the write, then fail with
    /// [`VfsErrorKind::TornWrite`].
    TornWrite {
        /// Bytes of the intended payload that reach the disk.
        keep: usize,
    },
    /// `ENOSPC`: persist half the payload, then fail with
    /// [`VfsErrorKind::NoSpace`].
    NoSpace,
    /// `EINTR`: fail with [`VfsErrorKind::Interrupted`] without touching
    /// the disk. Transient by nature — a retry succeeds.
    Eintr,
    /// Fail a rename with [`VfsErrorKind::RenameFailed`], leaving the
    /// source (typically a temp file) stranded.
    FailRename,
    /// Return only the first `keep` bytes of the file — *silently*, as a
    /// successful short read. Durable formats must catch this themselves.
    ShortRead {
        /// Bytes of the file content returned to the caller.
        keep: usize,
    },
    /// Simulated power-cut: persist the first `keep` bytes, then fail this
    /// and **every subsequent** operation with [`VfsErrorKind::PowerCut`].
    PowerCut {
        /// Bytes of the intended payload that reach the disk before the cut.
        keep: usize,
    },
}

impl IoFaultKind {
    /// The operation class this fault applies to.
    pub fn class(self) -> OpClass {
        match self {
            IoFaultKind::TornWrite { .. }
            | IoFaultKind::NoSpace
            | IoFaultKind::Eintr
            | IoFaultKind::PowerCut { .. } => OpClass::Write,
            IoFaultKind::FailRename => OpClass::Rename,
            IoFaultKind::ShortRead { .. } => OpClass::Read,
        }
    }
}

/// One planned fault: fires on the `nth` operation of its kind's class
/// (0-based). A `transient` fault fires exactly once; a permanent one also
/// fails every later operation of that class (a disk that stays full).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedIoFault {
    /// 0-based index of the targeted operation within its class.
    pub nth: u64,
    /// What goes wrong.
    pub kind: IoFaultKind,
    /// Transient faults clear after firing once; permanent ones persist.
    pub transient: bool,
}

/// Deterministic, seed-driven storage fault schedule for [`FaultVfs`].
///
/// Mirrors `fnc2_guard::FaultPlan`: a plan is a pure function of its seed,
/// so `IoFaultPlan::from_seed(s)` is a complete one-line reproducer for
/// any crash the harness finds.
#[derive(Clone, Debug, Default)]
pub struct IoFaultPlan {
    faults: Vec<PlannedIoFault>,
}

/// SplitMix64 step — the same generator the guard and fuzz crates use.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl IoFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        IoFaultPlan { faults: Vec::new() }
    }

    /// A plan with an explicit fault list.
    pub fn with_faults(faults: Vec<PlannedIoFault>) -> Self {
        IoFaultPlan { faults }
    }

    /// Derive 1–3 faults deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut st = seed ^ 0x1af5_3e51_7d1b_70cb;
        let count = 1 + (splitmix(&mut st) % 3) as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let nth = splitmix(&mut st) % 4;
            let keep = (splitmix(&mut st) % 48) as usize;
            let kind = match splitmix(&mut st) % 6 {
                0 => IoFaultKind::TornWrite { keep },
                1 => IoFaultKind::NoSpace,
                2 => IoFaultKind::Eintr,
                3 => IoFaultKind::FailRename,
                4 => IoFaultKind::ShortRead { keep },
                _ => IoFaultKind::PowerCut { keep },
            };
            let transient = splitmix(&mut st) & 1 == 0 || kind == IoFaultKind::Eintr;
            faults.push(PlannedIoFault {
                nth,
                kind,
                transient,
            });
        }
        IoFaultPlan { faults }
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in order.
    pub fn faults(&self) -> &[PlannedIoFault] {
        &self.faults
    }

    /// The fault (if any) to inject on the `index`-th operation of `class`.
    fn fault_for(&self, class: OpClass, index: u64) -> Option<IoFaultKind> {
        self.faults
            .iter()
            .find(|f| {
                f.kind.class() == class && (f.nth == index || (!f.transient && index > f.nth))
            })
            .map(|f| f.kind)
    }
}

#[derive(Debug, Default)]
struct OpCounters {
    writes: u64,
    renames: u64,
    reads: u64,
}

/// A fault-injecting [`Vfs`] wrapping [`RealVfs`].
///
/// Operation indices are counted per [`OpClass`] across the lifetime of
/// the handle; when an index matches the plan, the corresponding fault is
/// injected (after persisting whatever prefix the fault specifies). After
/// a [`IoFaultKind::PowerCut`] fires, the handle is *dead*: every
/// operation fails with [`VfsErrorKind::PowerCut`]. Recovery is modeled by
/// pointing a fresh [`RealVfs`] at the same directory.
#[derive(Debug)]
pub struct FaultVfs {
    inner: RealVfs,
    plan: IoFaultPlan,
    counters: Mutex<OpCounters>,
    dead: AtomicBool,
    injected: AtomicU64,
}

impl FaultVfs {
    /// Wrap the real filesystem with a fault plan.
    pub fn new(plan: IoFaultPlan) -> Self {
        FaultVfs {
            inner: RealVfs,
            plan,
            counters: Mutex::new(OpCounters::default()),
            dead: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        }
    }

    /// Shorthand: a seed-driven fault plan.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(IoFaultPlan::from_seed(seed))
    }

    /// How many faults have been injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Has a power-cut fired? (All further operations fail.)
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn check_dead(&self, op: &'static str, path: &Path) -> Result<(), VfsError> {
        if self.is_dead() {
            Err(VfsError::new(
                op,
                path,
                VfsErrorKind::PowerCut,
                "simulated power cut: backing store is offline",
            ))
        } else {
            Ok(())
        }
    }

    /// Take the next op index for `class` and look up a planned fault.
    fn next_fault(&self, class: OpClass) -> Option<IoFaultKind> {
        let mut c = self.counters.lock().unwrap();
        let idx = match class {
            OpClass::Write => {
                let i = c.writes;
                c.writes += 1;
                i
            }
            OpClass::Rename => {
                let i = c.renames;
                c.renames += 1;
                i
            }
            OpClass::Read => {
                let i = c.reads;
                c.reads += 1;
                i
            }
        };
        let fault = self.plan.fault_for(class, idx);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Inject a write-class fault: persist the specified prefix (via a raw
    /// non-syncing write so a real crash stays plausible), then fail.
    fn injected_write(
        &self,
        op: &'static str,
        path: &Path,
        bytes: &[u8],
        append: bool,
        fault: IoFaultKind,
    ) -> VfsError {
        let persist = |keep: usize| {
            let prefix = &bytes[..keep.min(bytes.len())];
            if prefix.is_empty() {
                return;
            }
            let _ = if append {
                self.inner.append(path, prefix)
            } else {
                self.inner.write(path, prefix)
            };
        };
        match fault {
            IoFaultKind::TornWrite { keep } => {
                persist(keep);
                VfsError::new(
                    op,
                    path,
                    VfsErrorKind::TornWrite,
                    format!(
                        "injected torn write: {} of {} bytes persisted",
                        keep.min(bytes.len()),
                        bytes.len()
                    ),
                )
            }
            IoFaultKind::NoSpace => {
                persist(bytes.len() / 2);
                VfsError::new(
                    op,
                    path,
                    VfsErrorKind::NoSpace,
                    "injected ENOSPC: no space left on device",
                )
            }
            IoFaultKind::Eintr => VfsError::new(
                op,
                path,
                VfsErrorKind::Interrupted,
                "injected EINTR: interrupted system call",
            ),
            IoFaultKind::PowerCut { keep } => {
                persist(keep);
                self.dead.store(true, Ordering::Relaxed);
                VfsError::new(
                    op,
                    path,
                    VfsErrorKind::PowerCut,
                    format!("injected power cut after {} bytes", keep.min(bytes.len())),
                )
            }
            // Kind/class mismatches cannot arise: `fault_for` matches on class.
            IoFaultKind::FailRename | IoFaultKind::ShortRead { .. } => {
                VfsError::new(op, path, VfsErrorKind::Other, "unreachable fault kind")
            }
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        self.check_dead("read", path)?;
        match self.next_fault(OpClass::Read) {
            Some(IoFaultKind::ShortRead { keep }) => {
                let mut f = fs::File::open(path).map_err(|e| classify_io("read", path, &e))?;
                let mut buf = vec![0u8; keep];
                let mut got = 0;
                while got < keep {
                    match f.read(&mut buf[got..]) {
                        Ok(0) => break,
                        Ok(n) => got += n,
                        Err(e) => return Err(classify_io("read", path, &e)),
                    }
                }
                buf.truncate(got);
                Ok(buf)
            }
            Some(IoFaultKind::Eintr) => Err(VfsError::new(
                "read",
                path,
                VfsErrorKind::Interrupted,
                "injected EINTR: interrupted system call",
            )),
            Some(IoFaultKind::PowerCut { .. }) => {
                self.dead.store(true, Ordering::Relaxed);
                Err(VfsError::new(
                    "read",
                    path,
                    VfsErrorKind::PowerCut,
                    "injected power cut",
                ))
            }
            Some(_) | None => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        self.check_dead("write", path)?;
        match self.next_fault(OpClass::Write) {
            Some(fault) => Err(self.injected_write("write", path, bytes, false, fault)),
            None => self.inner.write(path, bytes),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        self.check_dead("append", path)?;
        match self.next_fault(OpClass::Write) {
            Some(fault) => Err(self.injected_write("append", path, bytes, true, fault)),
            None => self.inner.append(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        self.check_dead("rename", from)?;
        match self.next_fault(OpClass::Rename) {
            Some(IoFaultKind::PowerCut { .. }) => {
                self.dead.store(true, Ordering::Relaxed);
                Err(VfsError::new(
                    "rename",
                    from,
                    VfsErrorKind::PowerCut,
                    "injected power cut before rename",
                ))
            }
            Some(IoFaultKind::Eintr) => Err(VfsError::new(
                "rename",
                from,
                VfsErrorKind::Interrupted,
                "injected EINTR: interrupted system call",
            )),
            Some(_) => Err(VfsError::new(
                "rename",
                from,
                VfsErrorKind::RenameFailed,
                format!("injected rename failure (target {})", to.display()),
            )),
            None => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        self.check_dead("remove", path)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), VfsError> {
        self.check_dead("create-dir", path)?;
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> Result<Vec<PathBuf>, VfsError> {
        self.check_dead("read-dir", path)?;
        self.inner.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.is_dead() && self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "fnc2-vfs-{}-{}-{}",
            tag,
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_round_trip_and_sorted_listing() {
        let d = temp_dir("real");
        let v = RealVfs;
        v.write(&d.join("b.txt"), b"beta").unwrap();
        v.write(&d.join("a.txt"), b"alpha").unwrap();
        v.append(&d.join("a.txt"), b"!").unwrap();
        assert_eq!(v.read(&d.join("a.txt")).unwrap(), b"alpha!");
        let names: Vec<_> = v
            .read_dir(&d)
            .unwrap()
            .into_iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.txt", "b.txt"]);
        v.rename(&d.join("a.txt"), &d.join("c.txt")).unwrap();
        assert!(v.exists(&d.join("c.txt")));
        assert!(!v.exists(&d.join("a.txt")));
        let err = v.read(&d.join("missing")).unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::NotFound);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_write_persists_prefix_and_classifies() {
        let d = temp_dir("torn");
        let v = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::TornWrite { keep: 3 },
            transient: true,
        }]));
        let err = v.write(&d.join("x"), b"abcdef").unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::TornWrite);
        assert_eq!(fs::read(d.join("x")).unwrap(), b"abc");
        // Transient: the retry goes through untouched.
        v.write(&d.join("x"), b"abcdef").unwrap();
        assert_eq!(fs::read(d.join("x")).unwrap(), b"abcdef");
        assert_eq!(v.injected_faults(), 1);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn permanent_no_space_fails_every_later_write() {
        let d = temp_dir("enospc");
        let v = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 1,
            kind: IoFaultKind::NoSpace,
            transient: false,
        }]));
        v.write(&d.join("ok"), b"fine").unwrap();
        assert_eq!(
            v.write(&d.join("full"), b"data").unwrap_err().kind,
            VfsErrorKind::NoSpace
        );
        assert_eq!(
            v.append(&d.join("full"), b"more").unwrap_err().kind,
            VfsErrorKind::NoSpace
        );
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn failed_rename_strands_the_source() {
        let d = temp_dir("rename");
        let v = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::FailRename,
            transient: true,
        }]));
        v.write(&d.join("f.tmp"), b"payload").unwrap();
        let err = v.rename(&d.join("f.tmp"), &d.join("f")).unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::RenameFailed);
        assert!(d.join("f.tmp").exists());
        assert!(!d.join("f").exists());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn short_read_silently_truncates() {
        let d = temp_dir("short");
        let v = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::ShortRead { keep: 4 },
            transient: true,
        }]));
        fs::write(d.join("f"), b"0123456789").unwrap();
        assert_eq!(v.read(&d.join("f")).unwrap(), b"0123");
        assert_eq!(v.read(&d.join("f")).unwrap(), b"0123456789");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn power_cut_kills_the_handle() {
        let d = temp_dir("cut");
        let v = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::PowerCut { keep: 2 },
            transient: true,
        }]));
        let err = v.write(&d.join("j"), b"record").unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::PowerCut);
        assert_eq!(fs::read(d.join("j")).unwrap(), b"re");
        assert!(v.is_dead());
        for err in [
            v.read(&d.join("j")).unwrap_err(),
            v.append(&d.join("j"), b"x").unwrap_err(),
            v.rename(&d.join("j"), &d.join("k")).unwrap_err(),
            v.remove_file(&d.join("j")).unwrap_err(),
        ] {
            assert_eq!(err.kind, VfsErrorKind::PowerCut);
        }
        // Recovery: a fresh RealVfs over the same directory sees the prefix.
        assert_eq!(RealVfs.read(&d.join("j")).unwrap(), b"re");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn eintr_is_transient_and_retryable() {
        let d = temp_dir("eintr");
        let v = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::Eintr,
            transient: true,
        }]));
        let err = v.write(&d.join("f"), b"x").unwrap_err();
        assert!(err.is_transient());
        assert!(!d.join("f").exists());
        v.write(&d.join("f"), b"x").unwrap();
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        for seed in 0..64u64 {
            let a = IoFaultPlan::from_seed(seed);
            let b = IoFaultPlan::from_seed(seed);
            assert_eq!(a.faults(), b.faults());
            assert!(!a.is_empty());
            assert!(a.faults().len() <= 3);
        }
        // Different seeds should not all collapse onto one schedule.
        let distinct: std::collections::HashSet<_> = (0..64u64)
            .map(|s| format!("{:?}", IoFaultPlan::from_seed(s).faults()))
            .collect();
        assert!(distinct.len() > 16);
    }
}
