//! # fnc2-par — work-stealing parallel batch evaluation
//!
//! The exhaustive [`Evaluator`] is read-only once constructed: evaluation
//! writes only into the per-tree [`AttrValues`]/local frames it allocates.
//! A batch of independent trees can therefore be decorated concurrently
//! against **one shared `&Evaluator`** — the parallel analogue of FNC-2
//! generating one evaluator and running it over a whole test suite.
//!
//! [`batch_evaluate`] does exactly that with a hand-rolled work-stealing
//! pool over [`std::thread::scope`] (no external dependencies, matching
//! the in-repo SplitMix64 precedent for `rand`):
//!
//! * tree indices are dealt round-robin into one deque per worker;
//! * a worker pops its own deque from the **front** and, when empty,
//!   steals from a victim's **back** (classic Chase–Lev discipline over a
//!   `Mutex<VecDeque>` — contention is per-steal, not per-tree);
//! * results carry their batch index and are merged by index, so output
//!   order — and every value in it — is **bit-identical** to a sequential
//!   run regardless of thread count or steal interleaving.
//!
//! Counters flow through the shared `fnc2-obs` vocabulary:
//! [`Key::ParTrees`] counts trees evaluated and [`Key::ParSteals`] counts
//! successful steals (0 on a single thread, and on perfectly balanced
//! batches).
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, TreeBuilder, Value};
//! use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
//! use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};
//! use fnc2_par::batch_evaluate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = GrammarBuilder::new("count");
//! let s = g.phylum("S");
//! let n = g.syn(s, "n");
//! let leaf = g.production("leaf", s, &[]);
//! g.constant(leaf, Occ::lhs(n), Value::Int(0));
//! let node = g.production("node", s, &[s]);
//! g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
//! g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
//! let grammar = g.finish()?;
//! let snc = snc_test(&grammar);
//! let lo = snc_to_l_ordered(&grammar, &snc, Inclusion::Long)?;
//! let seqs = build_visit_seqs(&grammar, &lo);
//! let ev = Evaluator::new(&grammar, &seqs);
//!
//! let trees: Vec<_> = (0..8)
//!     .map(|depth| {
//!         let mut tb = TreeBuilder::new(&grammar);
//!         let mut cur = tb.op("leaf", &[]).unwrap();
//!         for _ in 0..depth {
//!             cur = tb.op("node", &[cur]).unwrap();
//!         }
//!         tb.finish_root(cur).unwrap()
//!     })
//!     .collect();
//! let (results, stats) = batch_evaluate(&ev, &trees, &RootInputs::new(), 4);
//! assert_eq!(stats.trees, 8);
//! for (depth, r) in results.iter().enumerate() {
//!     let (values, _) = r.as_ref().unwrap();
//!     let root = trees[depth].root();
//!     assert_eq!(values.get(&grammar, root, n), Some(&Value::Int(depth as i64)));
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fnc2_ag::{AttrValues, Tree};
use fnc2_obs::{Counters, Key, NoopRecorder, Recorder};
use fnc2_visit::{EvalError, EvalStats, Evaluator, RootInputs};

/// What one batch run did: fed into [`Key::ParTrees`] / [`Key::ParSteals`]
/// by the recorded entry point, and returned for callers that aggregate
/// their own reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Trees evaluated (successful or not).
    pub trees: u64,
    /// Successful steals: tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Worker threads actually spawned.
    pub threads: u64,
}

/// The per-worker deques plus the shared steal counter.
struct Pool<'a> {
    deques: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
    trees: &'a [Tree],
}

impl<'a> Pool<'a> {
    fn new(trees: &'a [Tree], workers: usize) -> Pool<'a> {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        // Round-robin deal: contiguous runs land on the same worker only
        // when the batch is much larger than the pool, keeping the common
        // case steal-free.
        for (i, _) in trees.iter().enumerate() {
            deques[i % workers].push_back(i);
        }
        Pool {
            deques: deques.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
            trees,
        }
    }

    /// Next task for worker `w`: own deque front first, then steal from
    /// the other deques' backs. `None` means the whole batch is drained —
    /// no task ever re-enters a deque, so one empty sweep is conclusive.
    fn next_task(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.deques[w].lock().unwrap().pop_front() {
            return Some(i);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(i) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }
}

/// One tree's outcome, exactly what [`Evaluator::evaluate`] returns.
pub type TreeResult = Result<(AttrValues, EvalStats), EvalError>;

/// Evaluates every tree in `trees` against `evaluator` (all roots must
/// derive the axiom; `inputs` supplies root inherited attributes, shared
/// by all trees) on `threads` worker threads.
///
/// `results[i]` is always tree `i`'s outcome; order and contents are
/// identical to calling [`Evaluator::evaluate`] in a sequential loop,
/// whatever `threads` is. `threads` is clamped to `1..=trees.len()` (a
/// worker with no possible work is never spawned).
pub fn batch_evaluate(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
) -> (Vec<TreeResult>, BatchStats) {
    batch_evaluate_recorded(evaluator, trees, inputs, threads, &mut NoopRecorder)
}

/// [`batch_evaluate`], instrumented: replays [`Key::ParTrees`] and
/// [`Key::ParSteals`] into `rec` when the batch finishes.
pub fn batch_evaluate_recorded<R: Recorder>(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
    rec: &mut R,
) -> (Vec<TreeResult>, BatchStats) {
    let workers = threads.clamp(1, trees.len().max(1));
    let mut results: Vec<Option<TreeResult>> = Vec::new();
    let mut stats = BatchStats {
        trees: trees.len() as u64,
        steals: 0,
        threads: workers as u64,
    };

    if workers == 1 {
        // No pool on one thread: the sequential loop *is* the semantics
        // the parallel path must reproduce.
        results.extend(trees.iter().map(|t| Some(evaluator.evaluate(t, inputs))));
    } else {
        let pool = Pool::new(trees, workers);
        results.resize_with(trees.len(), || None);
        let done: Vec<Vec<(usize, TreeResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let pool = &pool;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, TreeResult)> = Vec::new();
                        while let Some(i) = pool.next_task(w) {
                            out.push((i, evaluator.evaluate(&pool.trees[i], inputs)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Index merge makes the output independent of scheduling.
        for (i, r) in done.into_iter().flatten() {
            debug_assert!(results[i].is_none(), "tree {i} evaluated twice");
            results[i] = Some(r);
        }
        stats.steals = pool.steals.load(Ordering::Relaxed);
    }

    let mut counters = Counters::new();
    counters.add(Key::ParTrees, stats.trees);
    counters.add(Key::ParSteals, stats.steals);
    counters.replay(rec);

    let results = results
        .into_iter()
        .map(|r| r.expect("every dealt index is evaluated exactly once"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, TreeBuilder, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_obs::Obs;
    use fnc2_visit::{build_visit_seqs, VisitSeqs};

    use super::*;

    fn count_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("count");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        g.finish().unwrap()
    }

    fn seqs_for(g: &Grammar) -> VisitSeqs {
        let snc = snc_test(g);
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        build_visit_seqs(g, &lo)
    }

    fn chains(g: &Grammar, count: usize) -> Vec<Tree> {
        (0..count)
            .map(|depth| {
                let mut tb = TreeBuilder::new(g);
                let mut cur = tb.op("leaf", &[]).unwrap();
                for _ in 0..depth {
                    cur = tb.op("node", &[cur]).unwrap();
                }
                tb.finish_root(cur).unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 37);
        let inputs = RootInputs::new();
        let (seq_results, _) = batch_evaluate(&ev, &trees, &inputs, 1);
        for threads in [2, 3, 4, 8] {
            let (par_results, stats) = batch_evaluate(&ev, &trees, &inputs, threads);
            assert_eq!(stats.trees, 37);
            assert_eq!(stats.threads, threads as u64);
            for (i, (a, b)) in seq_results.iter().zip(&par_results).enumerate() {
                let (va, sa) = a.as_ref().unwrap();
                let (vb, sb) = b.as_ref().unwrap();
                assert_eq!(sa, sb, "stats diverge on tree {i} at {threads} threads");
                let n = g.attr_by_name(g.phylum_by_name("S").unwrap(), "n").unwrap();
                assert_eq!(
                    va.get(&g, trees[i].root(), n),
                    vb.get(&g, trees[i].root(), n),
                    "values diverge on tree {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_trees_is_clamped() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 2);
        let (results, stats) = batch_evaluate(&ev, &trees, &RootInputs::new(), 16);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.threads, 2);
        // Empty batch, zero threads: no panic, no work.
        let (results, stats) = batch_evaluate(&ev, &[], &RootInputs::new(), 0);
        assert!(results.is_empty());
        assert_eq!(stats.trees, 0);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn counters_flow_through_recorder() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 5);
        let mut obs = Obs::new();
        let (_, stats) = batch_evaluate_recorded(&ev, &trees, &RootInputs::new(), 2, &mut obs);
        assert_eq!(obs.metrics.counter("par.trees"), 5);
        assert_eq!(obs.metrics.counter("par.steals"), stats.steals);
    }
}
