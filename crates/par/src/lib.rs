//! # fnc2-par — work-stealing, fault-isolated parallel batch evaluation
//!
//! The exhaustive [`Evaluator`] is read-only once constructed: evaluation
//! writes only into the per-tree [`AttrValues`]/local frames it allocates.
//! A batch of independent trees can therefore be decorated concurrently
//! against **one shared `&Evaluator`** — the parallel analogue of FNC-2
//! generating one evaluator and running it over a whole test suite.
//!
//! [`batch_evaluate`] does exactly that with a hand-rolled work-stealing
//! pool over [`std::thread::scope`] (no external dependencies, matching
//! the in-repo SplitMix64 precedent for `rand`):
//!
//! * tree indices are dealt round-robin into one deque per worker;
//! * a worker pops its own deque from the **front** and, when empty,
//!   steals from a victim's **back** (classic Chase–Lev discipline over a
//!   `Mutex<VecDeque>` — contention is per-steal, not per-tree);
//! * results carry their batch index and are merged by index, so output
//!   order — and every value in it — is **bit-identical** to a sequential
//!   run regardless of thread count or steal interleaving.
//!
//! ## Fault isolation
//!
//! [`batch_evaluate_guarded`] is the robust entry point: each tree is
//! evaluated under [`std::panic::catch_unwind`] against an
//! [`EvalBudget`], and its outcome is *classified* as a [`TreeOutcome`] —
//! `Ok`, `Failed` (a well-formed [`EvalError`], including budget trips) or
//! `Panicked` (the captured panic message). One poisoned tree never loses
//! the other N−1 results, and the worker pool stays alive: a failed tree
//! is re-enqueued at the **back** of its worker's deque (per-tree backoff
//! — retries run behind remaining fresh work) up to `retries` times.
//! Deterministic [`FaultPlan`]s inject faults per `(tree, attempt)`, which
//! is how the fuzz oracle proves that transient faults converge to
//! bit-identical results after retry.
//!
//! Counters flow through the shared `fnc2-obs` vocabulary:
//! [`Key::ParTrees`], [`Key::ParSteals`], [`Key::ParRetries`],
//! [`Key::GuardPanicsCaught`] and [`Key::GuardBudgetExceeded`] — plus the
//! per-tree evaluation counters (`eval.*`), which each worker accumulates
//! in a thread-local [`Counters`] shard merged in worker-index order on
//! join, so recorded totals are deterministic whatever the steal
//! interleaving. When the caller's recorder has spans enabled
//! ([`Obs::enable_spans`](fnc2_obs::Obs::enable_spans)), every worker gets
//! a [`SpanTracer`] shard on the shared epoch and each `(tree, attempt)`
//! work item becomes a span on that worker's timeline.
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, TreeBuilder, Value};
//! use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
//! use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};
//! use fnc2_par::batch_evaluate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = GrammarBuilder::new("count");
//! let s = g.phylum("S");
//! let n = g.syn(s, "n");
//! let leaf = g.production("leaf", s, &[]);
//! g.constant(leaf, Occ::lhs(n), Value::Int(0));
//! let node = g.production("node", s, &[s]);
//! g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
//! g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
//! let grammar = g.finish()?;
//! let snc = snc_test(&grammar);
//! let lo = snc_to_l_ordered(&grammar, &snc, Inclusion::Long)?;
//! let seqs = build_visit_seqs(&grammar, &lo);
//! let ev = Evaluator::new(&grammar, &seqs);
//!
//! let trees: Vec<_> = (0..8)
//!     .map(|depth| {
//!         let mut tb = TreeBuilder::new(&grammar);
//!         let mut cur = tb.op("leaf", &[]).unwrap();
//!         for _ in 0..depth {
//!             cur = tb.op("node", &[cur]).unwrap();
//!         }
//!         tb.finish_root(cur).unwrap()
//!     })
//!     .collect();
//! let (results, stats) = batch_evaluate(&ev, &trees, &RootInputs::new(), 4);
//! assert_eq!(stats.trees, 8);
//! for (depth, r) in results.iter().enumerate() {
//!     let (values, _) = r.as_ref().unwrap();
//!     let root = trees[depth].root();
//!     assert_eq!(values.get(&grammar, root, n), Some(&Value::Int(depth as i64)));
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};

use fnc2_ag::{AttrValues, Tree};
use fnc2_guard::{EvalBudget, FaultPlan, InjectedFault, INJECTED_FAILURE_MSG, INJECTED_PANIC_MSG};
use fnc2_obs::{Counters, Key, NoopRecorder, Recorder, SpanTracer};
use fnc2_visit::{EvalError, EvalStats, Evaluator, InternMode, RootInputs};

pub mod checkpoint;

pub use checkpoint::{
    batch_evaluate_checkpointed, batch_evaluate_checkpointed_recorded, outcome_digest, Checkpoint,
    CkptBatchReport, CkptError, CkptOutcome, CkptRecord, ResumeInfo,
};

/// What one batch run did: fed into [`Key::ParTrees`] / [`Key::ParSteals`]
/// by the recorded entry point, and returned for callers that aggregate
/// their own reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Trees evaluated (successful or not).
    pub trees: u64,
    /// Successful steals: tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Worker threads actually spawned.
    pub threads: u64,
}

/// The classified outcome of one tree in a guarded batch.
#[derive(Debug)]
pub enum TreeOutcome {
    /// The tree decorated successfully.
    Ok(AttrValues, EvalStats),
    /// Evaluation returned a well-formed error (diagnostics, budget trips,
    /// injected failures) — the tree is poisoned, the batch is not.
    Failed(EvalError),
    /// Evaluation panicked; the panic was caught at the tree boundary and
    /// its message captured. The worker — and the batch — survived.
    Panicked(String),
}

impl TreeOutcome {
    /// True for [`TreeOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, TreeOutcome::Ok(..))
    }

    /// The decorated attribute values, when evaluation succeeded.
    pub fn values(&self) -> Option<&AttrValues> {
        match self {
            TreeOutcome::Ok(v, _) => Some(v),
            _ => None,
        }
    }

    /// The classified error, when evaluation failed without panicking.
    pub fn error(&self) -> Option<&EvalError> {
        match self {
            TreeOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The captured panic message, when evaluation panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            TreeOutcome::Panicked(m) => Some(m),
            _ => None,
        }
    }

    /// Stable lowercase label for reports: `ok`, `failed` or `panicked`.
    pub fn label(&self) -> &'static str {
        match self {
            TreeOutcome::Ok(..) => "ok",
            TreeOutcome::Failed(_) => "failed",
            TreeOutcome::Panicked(_) => "panicked",
        }
    }
}

/// Everything a guarded batch run produced: per-tree classified outcomes
/// plus the aggregate fault/retry counters.
#[derive(Debug)]
pub struct BatchReport {
    /// `outcomes[i]` is tree `i`'s final (post-retry) outcome.
    pub outcomes: Vec<TreeOutcome>,
    /// Pool statistics (trees, steals, threads).
    pub stats: BatchStats,
    /// Tree re-enqueues: one per failed attempt that was retried.
    pub retries: u64,
    /// Panics caught at the tree boundary (over all attempts).
    pub panics_caught: u64,
    /// Budget/fault trips observed (over all attempts).
    pub budget_exceeded: u64,
}

impl BatchReport {
    /// `(ok, failed, panicked)` final-outcome counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for o in &self.outcomes {
            match o {
                TreeOutcome::Ok(..) => c.0 += 1,
                TreeOutcome::Failed(_) => c.1 += 1,
                TreeOutcome::Panicked(_) => c.2 += 1,
            }
        }
        c
    }

    /// True when every tree succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_ok())
    }
}

/// A work item: batch index plus the retry attempt it is on (0 = first).
type Task = (usize, u32);

/// The per-worker deques plus the shared steal/pending counters.
struct Pool<'a> {
    deques: Vec<Mutex<VecDeque<Task>>>,
    steals: AtomicU64,
    /// Trees without a terminal outcome yet. Re-enqueues keep it constant;
    /// it drops only when an outcome is recorded, so `pending == 0` is the
    /// authoritative "batch drained" signal even with tasks in flight.
    pending: AtomicU64,
    trees: &'a [Tree],
}

impl<'a> Pool<'a> {
    fn new(trees: &'a [Tree], workers: usize) -> Pool<'a> {
        let all: Vec<usize> = (0..trees.len()).collect();
        Pool::with_indices(trees, &all, workers)
    }

    /// A pool over a subset of the batch — the checkpointed driver deals
    /// only the trees the journal does not already have.
    fn with_indices(trees: &'a [Tree], indices: &[usize], workers: usize) -> Pool<'a> {
        let mut deques: Vec<VecDeque<Task>> = (0..workers).map(|_| VecDeque::new()).collect();
        // Round-robin deal: contiguous runs land on the same worker only
        // when the batch is much larger than the pool, keeping the common
        // case steal-free.
        for (k, &i) in indices.iter().enumerate() {
            deques[k % workers].push_back((i, 0));
        }
        Pool {
            deques: deques.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
            pending: AtomicU64::new(indices.len() as u64),
            trees,
        }
    }

    /// Next task for worker `w`: own deque front first, then steal from
    /// the other deques' backs.
    fn next_task(&self, w: usize) -> Option<Task> {
        if let Some(t) = self.deques[w].lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Re-enqueues a failed tree at the **back** of worker `w`'s deque:
    /// the retry runs after the worker's remaining fresh work (per-tree
    /// backoff ordering), and `pending` is untouched so the pool stays
    /// alive until the retry resolves.
    fn requeue(&self, w: usize, i: usize, attempt: u32) {
        self.deques[w].lock().unwrap().push_back((i, attempt));
    }
}

/// One tree's outcome, exactly what [`Evaluator::evaluate`] returns.
pub type TreeResult = Result<(AttrValues, EvalStats), EvalError>;

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Injected panics are expected, caught and classified; keep their default
/// panic-hook stack traces out of stderr. The replacement hook delegates
/// to the previous hook for every *real* panic.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC_MSG))
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Evaluates tree `i` (attempt `attempt`) with the panic boundary and
/// classifies the result. Evaluation counters land in the worker's
/// `shard` ([`Counters`] is itself a [`Recorder`]) so they survive the
/// join and merge deterministically — workers used to evaluate through a
/// `NoopRecorder`, silently dropping per-tree eval counters.
fn run_one(
    evaluator: &Evaluator<'_>,
    tree: &Tree,
    inputs: &RootInputs,
    budget: &EvalBudget,
    fault: Option<InjectedFault>,
    shard: &mut Counters,
) -> TreeOutcome {
    if matches!(fault, Some(InjectedFault::FailOnEntry)) {
        return TreeOutcome::Failed(EvalError::SemanticFailure {
            node: tree.root(),
            message: format!("{INJECTED_FAILURE_MSG} (on entry)"),
        });
    }
    let r = catch_unwind(AssertUnwindSafe(|| {
        if matches!(fault, Some(InjectedFault::PanicOnEntry)) {
            panic!("{INJECTED_PANIC_MSG} (on entry)");
        }
        evaluator.evaluate_recorded_guarded(tree, inputs, budget, fault, shard)
    }));
    match r {
        Ok(Ok((values, stats))) => TreeOutcome::Ok(values, stats),
        Ok(Err(e)) => TreeOutcome::Failed(e),
        Err(payload) => TreeOutcome::Panicked(panic_message(payload)),
    }
}

/// Opens a span for one `(tree, attempt)` work item in a worker's shard.
fn span_tree_begin(sp: &mut Option<SpanTracer>, i: usize, attempt: u32) {
    if let Some(sp) = sp.as_mut() {
        sp.begin("par", format!("tree {i} attempt {attempt}"));
    }
}

/// Closes the work-item span, tagging failures as instant events.
fn span_tree_end(sp: &mut Option<SpanTracer>, i: usize, o: &TreeOutcome) {
    let Some(sp) = sp.as_mut() else { return };
    sp.end();
    match o {
        TreeOutcome::Failed(e) if e.is_budget() => {
            sp.instant("guard", format!("tree {i}: budget trip: {e}"));
        }
        TreeOutcome::Panicked(m) => {
            sp.instant("guard", format!("tree {i}: panic caught: {m}"));
        }
        _ => {}
    }
}

/// Evaluates every tree in `trees` against `evaluator` (all roots must
/// derive the axiom; `inputs` supplies root inherited attributes, shared
/// by all trees) on `threads` worker threads.
///
/// `results[i]` is always tree `i`'s outcome; order and contents are
/// identical to calling [`Evaluator::evaluate`] in a sequential loop,
/// whatever `threads` is. `threads` is clamped to `1..=trees.len()` (a
/// worker with no possible work is never spawned).
///
/// This legacy entry point propagates evaluator panics (after the batch
/// completes); use [`batch_evaluate_guarded`] to have them classified
/// per-tree instead.
pub fn batch_evaluate(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
) -> (Vec<TreeResult>, BatchStats) {
    batch_evaluate_recorded(evaluator, trees, inputs, threads, &mut NoopRecorder)
}

/// [`batch_evaluate`], instrumented: replays [`Key::ParTrees`] and
/// [`Key::ParSteals`] into `rec` when the batch finishes.
pub fn batch_evaluate_recorded<R: Recorder>(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
    rec: &mut R,
) -> (Vec<TreeResult>, BatchStats) {
    let report = batch_evaluate_guarded_recorded(
        evaluator,
        trees,
        inputs,
        threads,
        &EvalBudget::default(),
        0,
        None,
        rec,
    );
    let stats = report.stats;
    let results = report
        .outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| match o {
            TreeOutcome::Ok(v, s) => Ok((v, s)),
            TreeOutcome::Failed(e) => Err(e),
            TreeOutcome::Panicked(msg) => panic!("tree {i} panicked during evaluation: {msg}"),
        })
        .collect();
    (results, stats)
}

/// The robust batch entry point: evaluates every tree under `budget` with
/// a per-tree panic boundary, retries failed trees up to `retries` times
/// (re-enqueued behind the worker's remaining work), and returns every
/// tree's classified [`TreeOutcome`] — one poisoned tree never loses the
/// other N−1 results.
///
/// `plan` optionally injects deterministic faults per `(tree, attempt)`;
/// see [`FaultPlan`]. Surviving trees are bit-identical to an unfaulted
/// sequential run regardless of `threads`.
#[allow(clippy::too_many_arguments)]
pub fn batch_evaluate_guarded(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
    budget: &EvalBudget,
    retries: u32,
    plan: Option<&FaultPlan>,
) -> BatchReport {
    batch_evaluate_guarded_recorded(
        evaluator,
        trees,
        inputs,
        threads,
        budget,
        retries,
        plan,
        &mut NoopRecorder,
    )
}

/// [`batch_evaluate_guarded`], instrumented: replays [`Key::ParTrees`],
/// [`Key::ParSteals`], [`Key::ParRetries`], [`Key::GuardPanicsCaught`] and
/// [`Key::GuardBudgetExceeded`] into `rec` when the batch finishes.
#[allow(clippy::too_many_arguments)]
pub fn batch_evaluate_guarded_recorded<R: Recorder>(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
    budget: &EvalBudget,
    retries: u32,
    plan: Option<&FaultPlan>,
    rec: &mut R,
) -> BatchReport {
    if plan.is_some_and(|p| !p.is_empty()) {
        silence_injected_panics();
    }
    let workers = threads.clamp(1, trees.len().max(1));
    let mut outcomes: Vec<Option<TreeOutcome>> = Vec::new();
    let mut stats = BatchStats {
        trees: trees.len() as u64,
        steals: 0,
        threads: workers as u64,
    };
    let retried = AtomicU64::new(0);
    let panics = AtomicU64::new(0);
    let budgets = AtomicU64::new(0);

    let classify = |o: &TreeOutcome| match o {
        TreeOutcome::Panicked(_) => {
            panics.fetch_add(1, Ordering::Relaxed);
        }
        TreeOutcome::Failed(e) if e.is_budget() => {
            budgets.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    };

    // One recorder shard per worker: evaluation counters accumulate
    // thread-locally (a plain [`Counters`] is a [`Recorder`]) and merge in
    // worker-index order after the join, so recorded totals are
    // deterministic whatever the steal interleaving. Span shards carry the
    // session epoch, so per-tree spans from every worker line up on one
    // timeline.
    let mut eval_counters = Counters::new();
    if workers == 1 {
        // No pool on one thread: the sequential loop *is* the semantics
        // the parallel path must reproduce — including retry ordering
        // (failures go to the back of the queue).
        let mut spans = rec.span_shard(1);
        outcomes.resize_with(trees.len(), || None);
        let mut queue: VecDeque<Task> = (0..trees.len()).map(|i| (i, 0)).collect();
        while let Some((i, attempt)) = queue.pop_front() {
            let fault = plan.and_then(|p| p.fault_for(i, attempt));
            span_tree_begin(&mut spans, i, attempt);
            let o = run_one(
                evaluator,
                &trees[i],
                inputs,
                budget,
                fault,
                &mut eval_counters,
            );
            span_tree_end(&mut spans, i, &o);
            classify(&o);
            if !o.is_ok() && attempt < retries {
                retried.fetch_add(1, Ordering::Relaxed);
                queue.push_back((i, attempt + 1));
            } else {
                outcomes[i] = Some(o);
            }
        }
        if let Some(sp) = spans {
            rec.absorb_spans(sp);
        }
    } else {
        let pool = Pool::new(trees, workers);
        outcomes.resize_with(trees.len(), || None);
        let shards: Vec<(Counters, Option<SpanTracer>)> = (0..workers)
            .map(|w| (Counters::new(), rec.span_shard(w as u32 + 1)))
            .collect();
        // What each worker returns on join: its tree outcomes, its counter
        // shard, and its span shard.
        type WorkerDone = (Vec<(usize, TreeOutcome)>, Counters, Option<SpanTracer>);
        let done: Vec<WorkerDone> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(w, (mut counters, mut spans))| {
                    let pool = &pool;
                    let retried = &retried;
                    let classify = &classify;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, TreeOutcome)> = Vec::new();
                        loop {
                            let Some((i, attempt)) = pool.next_task(w) else {
                                // Tasks may still be in flight on other
                                // workers and about to be re-enqueued;
                                // only `pending == 0` ends the batch.
                                if pool.pending.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                                continue;
                            };
                            let fault = plan.and_then(|p| p.fault_for(i, attempt));
                            span_tree_begin(&mut spans, i, attempt);
                            let o = run_one(
                                evaluator,
                                &pool.trees[i],
                                inputs,
                                budget,
                                fault,
                                &mut counters,
                            );
                            span_tree_end(&mut spans, i, &o);
                            classify(&o);
                            if !o.is_ok() && attempt < retries {
                                retried.fetch_add(1, Ordering::Relaxed);
                                pool.requeue(w, i, attempt + 1);
                            } else {
                                out.push((i, o));
                                pool.pending.fetch_sub(1, Ordering::Release);
                            }
                        }
                        (out, counters, spans)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Index merge makes the output independent of scheduling; shard
        // merges run in worker-index order for the same reason.
        for (per_worker, counters, spans) in done {
            for (i, o) in per_worker {
                debug_assert!(outcomes[i].is_none(), "tree {i} resolved twice");
                outcomes[i] = Some(o);
            }
            eval_counters.merge(&counters);
            if let Some(sp) = spans {
                rec.absorb_spans(sp);
            }
        }
        stats.steals = pool.steals.load(Ordering::Relaxed);
    }

    let report = BatchReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every dealt index resolves exactly once"))
            .collect(),
        stats,
        retries: retried.load(Ordering::Relaxed),
        panics_caught: panics.load(Ordering::Relaxed),
        budget_exceeded: budgets.load(Ordering::Relaxed),
    };

    eval_counters.add(Key::ParTrees, report.stats.trees);
    eval_counters.add(Key::ParSteals, report.stats.steals);
    eval_counters.add(Key::ParRetries, report.retries);
    eval_counters.add(Key::GuardPanicsCaught, report.panics_caught);
    eval_counters.add(Key::GuardBudgetExceeded, report.budget_exceeded);
    // With a shared interner, workers defer per-call hit/miss accounting
    // (streaming it would serialize them on the stats cells); the sharded
    // table's merged totals are read once here, at the join.
    if let InternMode::Shared(table) = evaluator.intern_mode() {
        let s = table.stats();
        eval_counters.set(Key::EvalInternHits, s.hits);
        eval_counters.set(Key::EvalInternMisses, s.misses);
        eval_counters.raise(Key::EvalInternSize, s.len);
    }
    eval_counters.replay(rec);

    report
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, TreeBuilder, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_guard::PlannedFault;
    use fnc2_obs::Obs;
    use fnc2_visit::{build_visit_seqs, VisitSeqs};

    use super::*;

    fn count_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("count");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        g.finish().unwrap()
    }

    fn seqs_for(g: &Grammar) -> VisitSeqs {
        let snc = snc_test(g);
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        build_visit_seqs(g, &lo)
    }

    fn chains(g: &Grammar, count: usize) -> Vec<Tree> {
        (0..count)
            .map(|depth| {
                let mut tb = TreeBuilder::new(g);
                let mut cur = tb.op("leaf", &[]).unwrap();
                for _ in 0..depth {
                    cur = tb.op("node", &[cur]).unwrap();
                }
                tb.finish_root(cur).unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 37);
        let inputs = RootInputs::new();
        let (seq_results, _) = batch_evaluate(&ev, &trees, &inputs, 1);
        for threads in [2, 3, 4, 8] {
            let (par_results, stats) = batch_evaluate(&ev, &trees, &inputs, threads);
            assert_eq!(stats.trees, 37);
            assert_eq!(stats.threads, threads as u64);
            for (i, (a, b)) in seq_results.iter().zip(&par_results).enumerate() {
                let (va, sa) = a.as_ref().unwrap();
                let (vb, sb) = b.as_ref().unwrap();
                assert_eq!(sa, sb, "stats diverge on tree {i} at {threads} threads");
                let n = g.attr_by_name(g.phylum_by_name("S").unwrap(), "n").unwrap();
                assert_eq!(
                    va.get(&g, trees[i].root(), n),
                    vb.get(&g, trees[i].root(), n),
                    "values diverge on tree {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_trees_is_clamped() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 2);
        let (results, stats) = batch_evaluate(&ev, &trees, &RootInputs::new(), 16);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.threads, 2);
        // Empty batch, zero threads: no panic, no work.
        let (results, stats) = batch_evaluate(&ev, &[], &RootInputs::new(), 0);
        assert!(results.is_empty());
        assert_eq!(stats.trees, 0);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn counters_flow_through_recorder() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 5);
        let mut obs = Obs::new();
        let (_, stats) = batch_evaluate_recorded(&ev, &trees, &RootInputs::new(), 2, &mut obs);
        assert_eq!(obs.metrics.counter("par.trees"), 5);
        assert_eq!(obs.metrics.counter("par.steals"), stats.steals);
    }

    #[test]
    fn worker_shards_preserve_eval_counters() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 9);
        let inputs = RootInputs::new();
        // Ground truth: per-tree eval counters from sequential recorded runs.
        let mut expect = Counters::new();
        for t in &trees {
            ev.evaluate_recorded(t, &inputs, &mut expect).unwrap();
        }
        for threads in [1, 2, 4] {
            let mut obs = Obs::new();
            batch_evaluate_recorded(&ev, &trees, &inputs, threads, &mut obs);
            for key in ["eval.visits", "eval.evals", "eval.copies"] {
                assert_eq!(
                    obs.metrics.counter(key),
                    expect.get(match key {
                        "eval.visits" => Key::EvalVisits,
                        "eval.evals" => Key::EvalEvals,
                        _ => Key::EvalCopies,
                    }),
                    "{key} diverges at {threads} threads"
                );
            }
            assert!(
                obs.metrics.counter("eval.evals") > 0,
                "counters were dropped"
            );
        }
    }

    #[test]
    fn worker_spans_merge_onto_one_timeline() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 7);
        let mut obs = Obs::new();
        obs.enable_spans();
        batch_evaluate_guarded_recorded(
            &ev,
            &trees,
            &RootInputs::new(),
            3,
            &EvalBudget::default(),
            0,
            None,
            &mut obs,
        );
        let tracer = obs.span_tracer.as_ref().unwrap();
        // One "tree i attempt 0" span per tree, spread across worker tids.
        let begins: Vec<_> = tracer
            .events()
            .iter()
            .filter(|e| matches!(e, fnc2_obs::SpanEvent::Begin { cat: "par", .. }))
            .collect();
        assert_eq!(begins.len(), 7);
        let doc = obs.chrome_trace();
        fnc2_obs::validate_chrome_trace(&doc).unwrap();
    }

    #[test]
    fn interned_batch_is_bit_identical_across_thread_counts() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let trees = chains(&g, 24);
        let inputs = RootInputs::new();
        let n = g.attr_by_name(g.phylum_by_name("S").unwrap(), "n").unwrap();

        // Ground truth: the plain uninterned sequential evaluator.
        let plain = Evaluator::new(&g, &seqs);
        let (want, _) = batch_evaluate(&plain, &trees, &inputs, 1);

        // Private per-evaluation interner and the thread-safe shared one,
        // each at every thread count, must reproduce it bit for bit.
        let local = Evaluator::new(&g, &seqs).with_interning(true);
        let shared = Evaluator::new(&g, &seqs)
            .with_shared_interner(std::sync::Arc::new(fnc2_ag::SharedInterner::new(8)));
        for (label, ev) in [("local", &local), ("shared", &shared)] {
            for threads in [1, 2, 4, 8] {
                let (got, _) = batch_evaluate(ev, &trees, &inputs, threads);
                for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                    let (va, sa) = a.as_ref().unwrap();
                    let (vb, sb) = b.as_ref().unwrap();
                    assert_eq!(
                        sa, sb,
                        "{label} interner: stats diverge on tree {i} at {threads} threads"
                    );
                    assert_eq!(
                        va.get(&g, trees[i].root(), n),
                        vb.get(&g, trees[i].root(), n),
                        "{label} interner: values diverge on tree {i} at {threads} threads"
                    );
                }
            }
        }
    }

    /// Like [`count_grammar`] but the counter is carried inside a list, so
    /// every rule builds a compound value and exercises the interner
    /// (scalars are identified by payload and never enter the table).
    fn listy_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("listy");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::list(vec![Value::Int(0)]));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| {
            let prev = a[0].as_list()[0].as_int();
            Value::list(vec![Value::Int(prev + 1)])
        });
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        g.finish().unwrap()
    }

    #[test]
    fn shared_interner_stats_merge_at_join() {
        let g = listy_grammar();
        let seqs = seqs_for(&g);
        let table = std::sync::Arc::new(fnc2_ag::SharedInterner::new(4));
        let ev = Evaluator::new(&g, &seqs).with_shared_interner(std::sync::Arc::clone(&table));
        let trees = chains(&g, 10);
        let mut obs = Obs::new();
        batch_evaluate_recorded(&ev, &trees, &RootInputs::new(), 4, &mut obs);
        let s = table.stats();
        assert!(s.hits + s.misses > 0, "interner saw no traffic");
        assert_eq!(obs.metrics.counter("eval.intern_hits"), s.hits);
        assert_eq!(obs.metrics.counter("eval.intern_misses"), s.misses);
        assert_eq!(obs.metrics.counter("eval.intern_size"), s.len);
    }

    #[test]
    fn one_poisoned_tree_never_loses_the_others() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 12);
        let inputs = RootInputs::new();
        let clean =
            batch_evaluate_guarded(&ev, &trees, &inputs, 1, &EvalBudget::default(), 0, None);
        assert!(clean.all_ok());

        for fault in [
            InjectedFault::PanicOnEntry,
            InjectedFault::PanicAtStep { step: 2 },
            InjectedFault::FailRule { step: 1 },
        ] {
            let plan = FaultPlan::with_faults(vec![PlannedFault {
                tree: 5,
                fault,
                transient: false,
            }]);
            for threads in [1, 2, 4, 8] {
                let report = batch_evaluate_guarded(
                    &ev,
                    &trees,
                    &inputs,
                    threads,
                    &EvalBudget::default(),
                    0,
                    Some(&plan),
                );
                assert_eq!(report.outcomes.len(), 12);
                for (i, o) in report.outcomes.iter().enumerate() {
                    if i == 5 {
                        assert!(!o.is_ok(), "poisoned tree must not succeed ({fault})");
                        continue;
                    }
                    // Survivors are bit-identical to the clean run.
                    let a = o.values().expect("survivor decorated");
                    let b = clean.outcomes[i].values().unwrap();
                    let n = g.attr_by_name(g.phylum_by_name("S").unwrap(), "n").unwrap();
                    assert_eq!(a.get(&g, trees[i].root(), n), b.get(&g, trees[i].root(), n));
                }
                match fault {
                    InjectedFault::FailRule { .. } => {
                        assert_eq!(report.panics_caught, 0);
                        assert_eq!(report.budget_exceeded, 1);
                    }
                    _ => assert_eq!(report.panics_caught, 1, "{fault} at {threads} threads"),
                }
            }
        }
    }

    #[test]
    fn transient_fault_retry_converges() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 6);
        let inputs = RootInputs::new();
        let plan = FaultPlan::with_faults(vec![PlannedFault {
            tree: 3,
            fault: InjectedFault::PanicAtStep { step: 1 },
            transient: true,
        }]);
        // Without retries the poisoned tree is lost...
        let report = batch_evaluate_guarded(
            &ev,
            &trees,
            &inputs,
            2,
            &EvalBudget::default(),
            0,
            Some(&plan),
        );
        assert!(report.outcomes[3].panic_message().is_some());
        // ...with one retry the transient fault clears and the tree's
        // result is bit-identical to an unfaulted run.
        let report = batch_evaluate_guarded(
            &ev,
            &trees,
            &inputs,
            2,
            &EvalBudget::default(),
            1,
            Some(&plan),
        );
        assert!(report.all_ok());
        assert_eq!(report.retries, 1);
        assert_eq!(report.panics_caught, 1);
        let (plain, _) = ev.evaluate(&trees[3], &inputs).unwrap();
        let n = g.attr_by_name(g.phylum_by_name("S").unwrap(), "n").unwrap();
        assert_eq!(
            report.outcomes[3]
                .values()
                .unwrap()
                .get(&g, trees[3].root(), n),
            plain.get(&g, trees[3].root(), n)
        );
    }

    #[test]
    fn permanent_fault_exhausts_retries() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 4);
        let plan = FaultPlan::with_faults(vec![PlannedFault {
            tree: 0,
            fault: InjectedFault::FailRule { step: 1 },
            transient: false,
        }]);
        let report = batch_evaluate_guarded(
            &ev,
            &trees,
            &RootInputs::new(),
            2,
            &EvalBudget::default(),
            3,
            Some(&plan),
        );
        assert!(report.outcomes[0].error().is_some_and(|e| e.is_budget()));
        assert_eq!(report.retries, 3, "every retry was spent");
        assert_eq!(report.budget_exceeded, 4, "initial attempt + 3 retries");
    }

    #[test]
    fn budget_trips_are_classified_per_tree() {
        let g = count_grammar();
        let seqs = seqs_for(&g);
        let ev = Evaluator::new(&g, &seqs);
        // Tree depths 0..8: deep trees trip a 5-step budget, shallow ones fit.
        let trees = chains(&g, 8);
        let budget = EvalBudget::default().with_max_steps(5);
        let mut obs = Obs::new();
        let report = batch_evaluate_guarded_recorded(
            &ev,
            &trees,
            &RootInputs::new(),
            3,
            &budget,
            0,
            None,
            &mut obs,
        );
        let (ok, failed, panicked) = report.counts();
        assert!(ok >= 1 && failed >= 1, "mixed outcomes expected");
        assert_eq!(panicked, 0);
        assert_eq!(report.budget_exceeded, failed as u64);
        assert_eq!(obs.metrics.counter("guard.budget_exceeded"), failed as u64);
        assert_eq!(obs.metrics.counter("par.trees"), 8);
    }
}
