//! Checkpointed batch evaluation: an append-only journal of completed
//! tree indices so a killed or faulted batch resumes instead of starting
//! over.
//!
//! ## Journal format
//!
//! ```text
//! header   (20 bytes)  magic "FNC2CKPT" · format version u32 LE ·
//!                      batch fingerprint u64 LE
//! record   (25 bytes)  index u64 LE · outcome tag u8 · value digest
//!                      u64 LE · checksum u64 LE
//! ```
//!
//! Every record carries its own FNV-1a checksum *bound to the batch
//! fingerprint*, so a record can neither be torn nor transplanted from a
//! different batch without detection. Records are appended in groups of
//! [`JOURNAL_FLUSH_EVERY`] as trees complete (unsynced — losing an
//! unflushed or unsynced tail merely re-evaluates those trees);
//! [`Checkpoint::open`] tolerates a torn tail by truncating at the first
//! bad record and immediately rewriting the journal atomically
//! ([`Checkpoint::compact`]: temp file + rename).
//!
//! ## Resume contract
//!
//! The journal stores a per-tree **value digest** ([`outcome_digest`]:
//! a structural hash over every attribute cell of the decoration, plus
//! the evaluation stats), not the values themselves. [`CkptBatchReport::records`]
//! is therefore bit-identical between an uninterrupted run and any
//! kill → resume sequence — the crash-recovery harness in `fnc2-fuzz`
//! asserts exactly that for every injected crash point.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use fnc2_ag::{Tree, Value};
use fnc2_guard::{backoff_delay, EvalBudget, FaultPlan};
use fnc2_obs::{Counters, Key, NoopRecorder, Recorder};
use fnc2_vfs::{Vfs, VfsError};
use fnc2_visit::{Evaluator, InternMode, RootInputs};

use crate::{run_one, silence_injected_panics, BatchStats, Pool, TreeOutcome};

/// Journal magic bytes.
pub const CKPT_MAGIC: [u8; 8] = *b"FNC2CKPT";

/// Journal format version; bump on any wire change — including the
/// [`outcome_digest`] algorithm, which is as much a part of the format
/// as the record layout (a resumed record's digest is compared, never
/// recomputed).
pub const CKPT_VERSION: u32 = 2;

/// Header size: magic (8) + version (4) + batch fingerprint (8).
pub const CKPT_HEADER_LEN: usize = 8 + 4 + 8;

/// Record size: index (8) + tag (1) + digest (8) + checksum (8).
pub const CKPT_RECORD_LEN: usize = 8 + 1 + 8 + 8;

/// Ceiling for the per-retry backoff this module ever sleeps.
const RETRY_BACKOFF_CAP_MS: u64 = 100;

/// Records the batch driver buffers before flushing them to the journal
/// in one write. Appends are unsynced either way, so grouping only
/// widens the kill-window from one record to one group (~400 bytes) —
/// but it cuts the journal syscall count by the group size, which keeps
/// checkpointing off the batch hot path.
pub const JOURNAL_FLUSH_EVERY: usize = 16;

/// FNV-1a over chunks (same constants as `fnc2_tables::wire::fnv1a`;
/// re-implemented so this crate stays dependency-light).
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Why a checkpoint journal could not be used. `Io` is a storage fault
/// (exit code 2 territory); the rest are journal-validation failures the
/// CLI reports as diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// A classified storage fault from the [`Vfs`] backend.
    Io(VfsError),
    /// The file is not a checkpoint journal.
    BadMagic,
    /// The journal was written by a different format version.
    VersionSkew {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The journal belongs to a different batch (seed / grammar count /
    /// tree count / configuration).
    FingerprintMismatch {
        /// Fingerprint found in the header.
        found: u64,
        /// Fingerprint of the requested batch.
        expected: u64,
    },
    /// The file is shorter than a journal header.
    Truncated,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "{e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint journal (bad magic)"),
            CkptError::VersionSkew { found, expected } => write!(
                f,
                "checkpoint journal format version {found} (this build reads {expected})"
            ),
            CkptError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint journal fingerprint {found:016x} does not match this \
                 batch ({expected:016x}) — it records a different run"
            ),
            CkptError::Truncated => write!(f, "checkpoint journal truncated (no header)"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<VfsError> for CkptError {
    fn from(e: VfsError) -> Self {
        CkptError::Io(e)
    }
}

/// The classified outcome class a journal record stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CkptOutcome {
    /// The tree decorated successfully.
    Ok,
    /// Evaluation failed with a (non-budget) classified error.
    Failed,
    /// Evaluation panicked; the panic was caught at the tree boundary.
    Panicked,
    /// Evaluation tripped a budget or an injected fault.
    BudgetExceeded,
}

impl CkptOutcome {
    fn tag(self) -> u8 {
        match self {
            CkptOutcome::Ok => 0,
            CkptOutcome::Failed => 1,
            CkptOutcome::Panicked => 2,
            CkptOutcome::BudgetExceeded => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<CkptOutcome> {
        match tag {
            0 => Some(CkptOutcome::Ok),
            1 => Some(CkptOutcome::Failed),
            2 => Some(CkptOutcome::Panicked),
            3 => Some(CkptOutcome::BudgetExceeded),
            _ => None,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CkptOutcome::Ok => "ok",
            CkptOutcome::Failed => "failed",
            CkptOutcome::Panicked => "panicked",
            CkptOutcome::BudgetExceeded => "budget-exceeded",
        }
    }

    /// Classify a live [`TreeOutcome`].
    pub fn classify(outcome: &TreeOutcome) -> CkptOutcome {
        match outcome {
            TreeOutcome::Ok(..) => CkptOutcome::Ok,
            TreeOutcome::Failed(e) if e.is_budget() => CkptOutcome::BudgetExceeded,
            TreeOutcome::Failed(_) => CkptOutcome::Failed,
            TreeOutcome::Panicked(_) => CkptOutcome::Panicked,
        }
    }
}

impl fmt::Display for CkptOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One journal record: a completed tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CkptRecord {
    /// Global tree index within the batch.
    pub index: u64,
    /// The outcome class.
    pub outcome: CkptOutcome,
    /// Deterministic digest of the outcome ([`outcome_digest`]).
    pub digest: u64,
}

fn record_checksum(index: u64, tag: u8, digest: u64, fingerprint: u64) -> u64 {
    fnv1a(&[
        &index.to_le_bytes(),
        &[tag],
        &digest.to_le_bytes(),
        &fingerprint.to_le_bytes(),
    ])
}

impl CkptRecord {
    fn encode(&self, fingerprint: u64, out: &mut Vec<u8>) {
        let tag = self.outcome.tag();
        out.extend_from_slice(&self.index.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(
            &record_checksum(self.index, tag, self.digest, fingerprint).to_le_bytes(),
        );
    }

    fn decode(bytes: &[u8], fingerprint: u64) -> Option<CkptRecord> {
        let index = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let tag = bytes[8];
        let digest = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
        let sum = u64::from_le_bytes(bytes[17..25].try_into().unwrap());
        if sum != record_checksum(index, tag, digest, fingerprint) {
            return None;
        }
        Some(CkptRecord {
            index,
            outcome: CkptOutcome::from_tag(tag)?,
            digest,
        })
    }
}

/// A streaming word-at-a-time hasher (rotate-xor-multiply over 64-bit
/// lanes). The digest is computed on the worker threads right after
/// evaluation, so it sits on the batch hot path: it must neither
/// re-serialize the decoration (`Debug`-formatting every value into a
/// `String` costs about as much as evaluating the tree did) nor chew
/// through it one byte at a time — a 400-node decoration is tens of
/// kilobytes of value payload per tree.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail));
        }
        // Length folds in last so "abc" and "abc\0" cannot collide.
        self.word(bytes.len() as u64);
    }

    fn u64(&mut self, v: u64) {
        self.word(v);
    }
}

/// Per-outcome memo of structural value digests, keyed by allocation
/// address. A decoration built by copy rules shares `Arc`s heavily —
/// evaluation pays O(1) per copy, so re-walking a shared environment
/// list at every node that references it would make the digest
/// asymptotically more expensive than the evaluation it records. The
/// digest itself depends only on content (the address is only a cache
/// key), so two bit-identical decorations with different sharing still
/// digest equal.
#[derive(Default)]
struct ValueDigests {
    seen: std::collections::HashMap<usize, u64>,
}

impl ValueDigests {
    /// Standalone structural digest of one value: a variant tag, then
    /// the payload, with lengths prefixed so concatenation ambiguities
    /// cannot collide (`["ab"]` vs `["a","b"]`). Composite children
    /// contribute their own digests, which is what makes the memo sound.
    fn digest(&mut self, v: &Value) -> u64 {
        let mut h = Fnv::new();
        match v {
            Value::Unit => h.bytes(&[0]),
            Value::Bool(b) => h.bytes(&[1, u8::from(*b)]),
            Value::Int(i) => {
                h.bytes(&[2]);
                h.u64(*i as u64);
            }
            Value::Real(r) => {
                h.bytes(&[3]);
                h.u64(r.to_bits());
            }
            Value::Str(s) => {
                let key = std::sync::Arc::as_ptr(s) as *const u8 as usize;
                if let Some(&d) = self.seen.get(&key) {
                    return d;
                }
                h.bytes(&[4]);
                h.u64(s.len() as u64);
                h.bytes(s.as_bytes());
                self.seen.insert(key, h.0);
            }
            Value::List(xs) => {
                let key = std::sync::Arc::as_ptr(xs) as usize;
                if let Some(&d) = self.seen.get(&key) {
                    return d;
                }
                h.bytes(&[5]);
                h.u64(xs.len() as u64);
                for x in xs.iter() {
                    let d = self.digest(x);
                    h.u64(d);
                }
                self.seen.insert(key, h.0);
            }
            Value::Tuple(xs) => {
                let key = std::sync::Arc::as_ptr(xs) as usize;
                if let Some(&d) = self.seen.get(&key) {
                    return d;
                }
                h.bytes(&[6]);
                h.u64(xs.len() as u64);
                for x in xs.iter() {
                    let d = self.digest(x);
                    h.u64(d);
                }
                self.seen.insert(key, h.0);
            }
            Value::Map(m) => {
                let key = std::sync::Arc::as_ptr(m) as usize;
                if let Some(&d) = self.seen.get(&key) {
                    return d;
                }
                h.bytes(&[7]);
                h.u64(m.len() as u64);
                for (k, x) in m.iter() {
                    h.u64(k.len() as u64);
                    h.bytes(k.as_bytes());
                    let d = self.digest(x);
                    h.u64(d);
                }
                self.seen.insert(key, h.0);
            }
            Value::Term(t) => {
                let key = std::sync::Arc::as_ptr(t) as usize;
                if let Some(&d) = self.seen.get(&key) {
                    return d;
                }
                h.bytes(&[8]);
                h.u64(t.op.len() as u64);
                h.bytes(t.op.as_bytes());
                h.u64(t.children.len() as u64);
                for c in &t.children {
                    let d = self.digest(c);
                    h.u64(d);
                }
                self.seen.insert(key, h.0);
            }
        }
        h.0
    }
}

/// Deterministic digest of one tree's outcome: a structural hash of
/// every attribute cell of the decoration in dense arena order (plus the
/// evaluation stats) for successes, or of the classified error / panic
/// message otherwise.
///
/// Two runs that produced bit-identical decorations produce equal
/// digests, whatever the thread count, scheduling or value sharing — the
/// bit-identity currency of the resume contract.
pub fn outcome_digest(outcome: &TreeOutcome) -> u64 {
    let mut h = Fnv::new();
    match outcome {
        TreeOutcome::Ok(values, stats) => {
            let mut memo = ValueDigests::default();
            h.bytes(b"ok;");
            for cell in values.cells() {
                match cell {
                    Some(v) => {
                        h.bytes(&[1]);
                        let d = memo.digest(v);
                        h.u64(d);
                    }
                    None => h.bytes(&[0]),
                }
            }
            h.bytes(format!("{stats:?}").as_bytes());
        }
        TreeOutcome::Failed(e) => {
            h.bytes(format!("failed;{e}").as_bytes());
        }
        TreeOutcome::Panicked(m) => {
            h.bytes(format!("panicked;{m}").as_bytes());
        }
    }
    h.0
}

/// What [`Checkpoint::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Valid records recovered from the journal.
    pub resumed: usize,
    /// Bytes of torn/corrupt tail dropped.
    pub torn_bytes: usize,
    /// Whether the journal was compacted (rewritten atomically) to shed
    /// the torn tail.
    pub compacted: bool,
}

/// An open batch checkpoint journal.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    fingerprint: u64,
    done: BTreeMap<u64, CkptRecord>,
}

impl Checkpoint {
    /// Start a fresh journal at `path` for the batch identified by
    /// `fingerprint`, truncating anything already there.
    pub fn create(vfs: &dyn Vfs, path: &Path, fingerprint: u64) -> Result<Checkpoint, CkptError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                vfs.create_dir_all(parent)?;
            }
        }
        let ckpt = Checkpoint {
            path: path.to_path_buf(),
            fingerprint,
            done: BTreeMap::new(),
        };
        vfs.write(path, &ckpt.header_bytes())?;
        Ok(ckpt)
    }

    /// Open an existing journal, validate it against `fingerprint`, and
    /// recover every intact record. A torn or corrupt tail (the signature
    /// of a crash mid-append) is dropped and the journal immediately
    /// compacted; a wrong magic/version/fingerprint is an error — a
    /// journal is never silently reinterpreted for a different batch.
    pub fn open(
        vfs: &dyn Vfs,
        path: &Path,
        fingerprint: u64,
    ) -> Result<(Checkpoint, ResumeInfo), CkptError> {
        let bytes = vfs.read(path)?;
        if bytes.len() < CKPT_HEADER_LEN {
            return Err(CkptError::Truncated);
        }
        if bytes[0..8] != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let found_version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if found_version != CKPT_VERSION {
            return Err(CkptError::VersionSkew {
                found: found_version,
                expected: CKPT_VERSION,
            });
        }
        let found_fp = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        if found_fp != fingerprint {
            return Err(CkptError::FingerprintMismatch {
                found: found_fp,
                expected: fingerprint,
            });
        }
        let mut done = BTreeMap::new();
        let mut pos = CKPT_HEADER_LEN;
        while pos + CKPT_RECORD_LEN <= bytes.len() {
            match CkptRecord::decode(&bytes[pos..pos + CKPT_RECORD_LEN], fingerprint) {
                Some(r) => {
                    done.insert(r.index, r);
                    pos += CKPT_RECORD_LEN;
                }
                // First bad checksum: everything from here is torn tail.
                None => break,
            }
        }
        let torn_bytes = bytes.len() - pos;
        let ckpt = Checkpoint {
            path: path.to_path_buf(),
            fingerprint,
            done,
        };
        let compacted = torn_bytes > 0;
        if compacted {
            ckpt.compact(vfs)?;
        }
        let info = ResumeInfo {
            resumed: ckpt.done.len(),
            torn_bytes,
            compacted,
        };
        Ok((ckpt, info))
    }

    fn header_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CKPT_HEADER_LEN);
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out
    }

    /// Append one completed-tree record. Unsynced by design: a tail lost
    /// to a power cut is merely re-evaluated on resume.
    pub fn append(&mut self, vfs: &dyn Vfs, record: CkptRecord) -> Result<(), CkptError> {
        self.append_many(vfs, &[record])
    }

    /// Append a group of completed-tree records with a single write. The
    /// batch driver flushes in groups of [`JOURNAL_FLUSH_EVERY`] so the
    /// journal costs one `append` syscall per group, not per tree; the
    /// crash window widens from one record to one group, which resume
    /// semantics already cover (a lost tail is re-evaluated).
    pub fn append_many(&mut self, vfs: &dyn Vfs, records: &[CkptRecord]) -> Result<(), CkptError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(CKPT_RECORD_LEN * records.len());
        for record in records {
            record.encode(self.fingerprint, &mut buf);
        }
        vfs.append(&self.path, &buf)?;
        for record in records {
            self.done.insert(record.index, *record);
        }
        Ok(())
    }

    /// Atomically rewrite the journal from the in-memory record set
    /// (header + records in index order): temp file next to the journal,
    /// synced write, rename. Sheds torn tails and duplicate records.
    pub fn compact(&self, vfs: &dyn Vfs) -> Result<(), CkptError> {
        let mut bytes = self.header_bytes();
        for record in self.done.values() {
            record.encode(self.fingerprint, &mut bytes);
        }
        let tmp = self.path.with_file_name(format!(
            "{}.tmp-{}",
            self.path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            std::process::id()
        ));
        if let Err(e) = vfs.write(&tmp, &bytes) {
            let _ = vfs.remove_file(&tmp);
            return Err(e.into());
        }
        if let Err(e) = vfs.rename(&tmp, &self.path) {
            let _ = vfs.remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The batch fingerprint this journal is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Is `index` already journaled?
    pub fn contains(&self, index: u64) -> bool {
        self.done.contains_key(&index)
    }

    /// The record for `index`, if journaled.
    pub fn get(&self, index: u64) -> Option<CkptRecord> {
        self.done.get(&index).copied()
    }

    /// Number of journaled records.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Is the journal empty?
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// All records, in index order.
    pub fn records(&self) -> impl Iterator<Item = &CkptRecord> {
        self.done.values()
    }
}

/// What a checkpointed batch run produced.
#[derive(Debug)]
pub struct CkptBatchReport {
    /// One record per tree, in batch-index order — **bit-identical**
    /// between an uninterrupted run and any kill → resume sequence.
    pub records: Vec<CkptRecord>,
    /// `fresh[i]` carries tree `i`'s live outcome when it was evaluated
    /// in *this* run; `None` when the journal already had it.
    pub fresh: Vec<Option<TreeOutcome>>,
    /// Trees skipped because the journal already had them.
    pub resumed: u64,
    /// Pool statistics for the trees evaluated in this run.
    pub stats: BatchStats,
    /// Tree re-enqueues: one per failed attempt that was retried.
    pub retries: u64,
    /// Panics caught at the tree boundary (over all attempts).
    pub panics_caught: u64,
    /// Budget/fault trips observed (over all attempts).
    pub budget_exceeded: u64,
}

impl CkptBatchReport {
    /// `(ok, failed, panicked, budget_exceeded)` final counts over the
    /// whole batch, resumed trees included.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for r in &self.records {
            match r.outcome {
                CkptOutcome::Ok => c.0 += 1,
                CkptOutcome::Failed => c.1 += 1,
                CkptOutcome::Panicked => c.2 += 1,
                CkptOutcome::BudgetExceeded => c.3 += 1,
            }
        }
        c
    }
}

/// State shared between workers and the driver: the journal plus the
/// first append failure (which aborts the batch like the crash it is).
struct JournalState<'c> {
    ckpt: &'c mut Checkpoint,
    pending: Vec<CkptRecord>,
    error: Option<CkptError>,
}

impl JournalState<'_> {
    /// Buffer one record; flush the group once it reaches
    /// [`JOURNAL_FLUSH_EVERY`]. Returns the first journal error, which
    /// aborts the batch like the crash it is.
    fn push(&mut self, vfs: &dyn Vfs, record: CkptRecord) -> Result<(), CkptError> {
        self.pending.push(record);
        if self.pending.len() >= JOURNAL_FLUSH_EVERY {
            self.flush(vfs)?;
        }
        Ok(())
    }

    fn flush(&mut self, vfs: &dyn Vfs) -> Result<(), CkptError> {
        let r = self.ckpt.append_many(vfs, &self.pending);
        self.pending.clear();
        r
    }
}

/// [`batch_evaluate_checkpointed_recorded`] without instrumentation.
#[allow(clippy::too_many_arguments)]
pub fn batch_evaluate_checkpointed(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
    budget: &EvalBudget,
    retries: u32,
    plan: Option<&FaultPlan>,
    backoff_ms: u64,
    vfs: &dyn Vfs,
    ckpt: &mut Checkpoint,
    index_base: u64,
) -> Result<CkptBatchReport, CkptError> {
    batch_evaluate_checkpointed_recorded(
        evaluator,
        trees,
        inputs,
        threads,
        budget,
        retries,
        plan,
        backoff_ms,
        vfs,
        ckpt,
        index_base,
        &mut NoopRecorder,
    )
}

/// The checkpointed batch driver: like
/// [`batch_evaluate_guarded_recorded`](crate::batch_evaluate_guarded_recorded),
/// but every terminal outcome is journaled through `ckpt` as it lands,
/// trees already journaled (under global index `index_base + i`) are
/// skipped, and retries of failed attempts wait out a bounded exponential
/// backoff (`backoff_ms` base, capped) before re-running.
///
/// On success the journal is compacted to its canonical form. A journal
/// append failure aborts the batch with the classified storage fault —
/// exactly what a crash at that point would look like to a later resume.
///
/// Counters: everything the guarded driver records, plus
/// [`Key::ParCkptAppended`] and [`Key::ParCkptResumed`].
#[allow(clippy::too_many_arguments)]
pub fn batch_evaluate_checkpointed_recorded<R: Recorder>(
    evaluator: &Evaluator<'_>,
    trees: &[Tree],
    inputs: &RootInputs,
    threads: usize,
    budget: &EvalBudget,
    retries: u32,
    plan: Option<&FaultPlan>,
    backoff_ms: u64,
    vfs: &dyn Vfs,
    ckpt: &mut Checkpoint,
    index_base: u64,
    rec: &mut R,
) -> Result<CkptBatchReport, CkptError> {
    if plan.is_some_and(|p| !p.is_empty()) {
        silence_injected_panics();
    }
    let todo: Vec<usize> = (0..trees.len())
        .filter(|&i| !ckpt.contains(index_base + i as u64))
        .collect();
    let resumed = (trees.len() - todo.len()) as u64;
    let appended = todo.len() as u64;
    let workers = threads.clamp(1, todo.len().max(1));

    let retried = AtomicU64::new(0);
    let panics = AtomicU64::new(0);
    let budgets = AtomicU64::new(0);
    let aborted = AtomicBool::new(false);
    let journal = Mutex::new(JournalState {
        ckpt,
        pending: Vec::with_capacity(JOURNAL_FLUSH_EVERY),
        error: None,
    });

    let pool = Pool::with_indices(trees, &todo, workers);
    let mut fresh: Vec<Option<TreeOutcome>> = Vec::new();
    fresh.resize_with(trees.len(), || None);
    let mut eval_counters = Counters::new();

    type WorkerDone = (Vec<(usize, TreeOutcome)>, Counters);
    let done: Vec<WorkerDone> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let retried = &retried;
                let panics = &panics;
                let budgets = &budgets;
                let aborted = &aborted;
                let journal = &journal;
                scope.spawn(move || {
                    let mut out: Vec<(usize, TreeOutcome)> = Vec::new();
                    let mut counters = Counters::new();
                    loop {
                        if aborted.load(Ordering::Acquire) {
                            break;
                        }
                        let Some((i, attempt)) = pool.next_task(w) else {
                            if pool.pending.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        if attempt > 0 {
                            std::thread::sleep(backoff_delay(
                                attempt,
                                backoff_ms,
                                RETRY_BACKOFF_CAP_MS,
                            ));
                        }
                        let fault = plan.and_then(|p| p.fault_for(i, attempt));
                        let o = run_one(
                            evaluator,
                            &pool.trees[i],
                            inputs,
                            budget,
                            fault,
                            &mut counters,
                        );
                        match &o {
                            TreeOutcome::Panicked(_) => {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                            TreeOutcome::Failed(e) if e.is_budget() => {
                                budgets.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {}
                        }
                        if !o.is_ok() && attempt < retries {
                            retried.fetch_add(1, Ordering::Relaxed);
                            pool.requeue(w, i, attempt + 1);
                            continue;
                        }
                        // Terminal: journal before the outcome counts as done,
                        // so the journal never claims more than the disk has.
                        let record = CkptRecord {
                            index: index_base + i as u64,
                            outcome: CkptOutcome::classify(&o),
                            digest: outcome_digest(&o),
                        };
                        {
                            let mut js = journal.lock().unwrap();
                            if js.error.is_none() {
                                if let Err(e) = js.push(vfs, record) {
                                    js.error = Some(e);
                                    aborted.store(true, Ordering::Release);
                                }
                            }
                        }
                        out.push((i, o));
                        pool.pending.fetch_sub(1, Ordering::Release);
                    }
                    (out, counters)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (per_worker, counters) in done {
        for (i, o) in per_worker {
            fresh[i] = Some(o);
        }
        eval_counters.merge(&counters);
    }

    let mut js = journal.into_inner().unwrap();
    if let Some(e) = js.error {
        return Err(e);
    }
    js.flush(vfs)?;
    let ckpt = js.ckpt;

    // Canonical form on completion (also exercises atomic compaction).
    ckpt.compact(vfs)?;

    let records: Vec<CkptRecord> = (0..trees.len())
        .map(|i| {
            ckpt.get(index_base + i as u64)
                .expect("completed batch journals every index")
        })
        .collect();

    let report = CkptBatchReport {
        records,
        fresh,
        resumed,
        stats: BatchStats {
            trees: appended,
            steals: pool.steals.load(Ordering::Relaxed),
            threads: workers as u64,
        },
        retries: retried.load(Ordering::Relaxed),
        panics_caught: panics.load(Ordering::Relaxed),
        budget_exceeded: budgets.load(Ordering::Relaxed),
    };

    eval_counters.add(Key::ParTrees, report.stats.trees);
    eval_counters.add(Key::ParSteals, report.stats.steals);
    eval_counters.add(Key::ParRetries, report.retries);
    eval_counters.add(Key::GuardPanicsCaught, report.panics_caught);
    eval_counters.add(Key::GuardBudgetExceeded, report.budget_exceeded);
    eval_counters.add(Key::ParCkptAppended, appended);
    eval_counters.add(Key::ParCkptResumed, resumed);
    if let InternMode::Shared(table) = evaluator.intern_mode() {
        let s = table.stats();
        eval_counters.set(Key::EvalInternHits, s.hits);
        eval_counters.set(Key::EvalInternMisses, s.misses);
        eval_counters.raise(Key::EvalInternSize, s.len);
    }
    eval_counters.replay(rec);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, TreeBuilder, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_guard::{InjectedFault, PlannedFault};
    use fnc2_obs::Obs;
    use fnc2_vfs::{FaultVfs, IoFaultKind, IoFaultPlan, PlannedIoFault, RealVfs};
    use fnc2_visit::build_visit_seqs;

    use super::*;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "fnc2-ckpt-{}-{}-{}",
            tag,
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn count_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("count");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        g.finish().unwrap()
    }

    fn chains(g: &Grammar, count: usize) -> Vec<Tree> {
        (0..count)
            .map(|depth| {
                let mut tb = TreeBuilder::new(g);
                let mut cur = tb.op("leaf", &[]).unwrap();
                for _ in 0..depth {
                    cur = tb.op("node", &[cur]).unwrap();
                }
                tb.finish_root(cur).unwrap()
            })
            .collect()
    }

    fn eval_parts(g: &Grammar) -> fnc2_visit::VisitSeqs {
        let snc = snc_test(g);
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        build_visit_seqs(g, &lo)
    }

    #[test]
    fn journal_round_trips_and_rejects_mismatches() {
        let d = temp_dir("journal");
        let path = d.join("batch.ckpt");
        let vfs = RealVfs;
        let mut ckpt = Checkpoint::create(&vfs, &path, 0x1234).unwrap();
        for i in 0..3u64 {
            ckpt.append(
                &vfs,
                CkptRecord {
                    index: i,
                    outcome: CkptOutcome::Ok,
                    digest: 0x100 + i,
                },
            )
            .unwrap();
        }
        let (re, info) = Checkpoint::open(&vfs, &path, 0x1234).unwrap();
        assert_eq!(info.resumed, 3);
        assert_eq!(info.torn_bytes, 0);
        assert!(!info.compacted);
        assert_eq!(re.get(1).unwrap().digest, 0x101);
        // Wrong batch → refused, not reinterpreted.
        assert!(matches!(
            Checkpoint::open(&vfs, &path, 0x9999),
            Err(CkptError::FingerprintMismatch { .. })
        ));
        // Wrong version → refused.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Checkpoint::open(&vfs, &path, 0x1234),
            Err(CkptError::VersionSkew { .. })
        ));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_compacted_atomically() {
        let d = temp_dir("torn");
        let path = d.join("batch.ckpt");
        let vfs = RealVfs;
        let mut ckpt = Checkpoint::create(&vfs, &path, 7).unwrap();
        for i in 0..2u64 {
            ckpt.append(
                &vfs,
                CkptRecord {
                    index: i,
                    outcome: CkptOutcome::Ok,
                    digest: i,
                },
            )
            .unwrap();
        }
        // A crash mid-append: half a record of garbage at the tail.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        std::io::Write::write_all(&mut f, &[0xAB; CKPT_RECORD_LEN / 2]).unwrap();
        drop(f);
        let (re, info) = Checkpoint::open(&vfs, &path, 7).unwrap();
        assert_eq!(info.resumed, 2);
        assert_eq!(info.torn_bytes, CKPT_RECORD_LEN / 2);
        assert!(info.compacted);
        assert_eq!(re.len(), 2);
        // Compaction restored the canonical length and left no temps.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        let entries: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(entries, vec![path.clone()]);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn power_cut_mid_batch_resumes_bit_identically() {
        let g = count_grammar();
        let seqs = eval_parts(&g);
        let ev = Evaluator::new(&g, &seqs);
        // Enough trees to span several journal flush groups, so a fault
        // planned on write op 1 or 2 lands on a *mid-batch* group append.
        let trees = chains(&g, 2 * JOURNAL_FLUSH_EVERY + 8);
        let inputs = RootInputs::new();
        let fp = 0xfeed_f00d;
        // A fault plan so the batch has mixed outcomes worth journaling.
        let plan = FaultPlan::with_faults(vec![PlannedFault {
            tree: 4,
            fault: InjectedFault::FailRule { step: 1 },
            transient: false,
        }]);

        // Ground truth: uninterrupted checkpointed run.
        let d0 = temp_dir("uninterrupted");
        let real = RealVfs;
        let mut clean = Checkpoint::create(&real, &d0.join("b.ckpt"), fp).unwrap();
        let want = batch_evaluate_checkpointed(
            &ev,
            &trees,
            &inputs,
            2,
            &EvalBudget::default(),
            0,
            Some(&plan),
            0,
            &real,
            &mut clean,
            0,
        )
        .unwrap();

        // Interrupted run: power cut on a mid-batch journal append.
        for cut_at in [1u64, 2, 3] {
            let d = temp_dir(&format!("cut{cut_at}"));
            let path = d.join("b.ckpt");
            let faulty = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
                // Write op 0 is the header; group appends follow (one
                // per JOURNAL_FLUSH_EVERY completed trees).
                nth: cut_at,
                kind: IoFaultKind::PowerCut { keep: 5 },
                transient: true,
            }]));
            let mut ckpt = Checkpoint::create(&faulty, &path, fp).unwrap();
            let err = batch_evaluate_checkpointed(
                &ev,
                &trees,
                &inputs,
                2,
                &EvalBudget::default(),
                0,
                Some(&plan),
                0,
                &faulty,
                &mut ckpt,
                0,
            )
            .unwrap_err();
            assert!(matches!(err, CkptError::Io(_)), "classified: {err}");

            // Recovery: reopen with a healthy backend and resume.
            let (mut resumed, info) = Checkpoint::open(&real, &path, fp).unwrap();
            assert!(
                info.resumed < trees.len(),
                "cut at {cut_at}: nothing left to resume"
            );
            let mut obs = Obs::new();
            let got = batch_evaluate_checkpointed_recorded(
                &ev,
                &trees,
                &inputs,
                2,
                &EvalBudget::default(),
                0,
                Some(&plan),
                0,
                &real,
                &mut resumed,
                0,
                &mut obs,
            )
            .unwrap();
            assert_eq!(
                got.records, want.records,
                "cut at {cut_at}: resumed records diverge"
            );
            assert_eq!(got.resumed, info.resumed as u64);
            assert_eq!(obs.metrics.counter("par.ckpt_resumed"), info.resumed as u64);
            // No stray files: just the compacted journal.
            let entries: Vec<_> = std::fs::read_dir(&d)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert_eq!(entries, vec![path.clone()], "cut at {cut_at}");
            std::fs::remove_dir_all(&d).unwrap();
        }
        std::fs::remove_dir_all(&d0).unwrap();
    }

    #[test]
    fn checkpointed_matches_guarded_classification() {
        let g = count_grammar();
        let seqs = eval_parts(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 8);
        let inputs = RootInputs::new();
        let budget = EvalBudget::default().with_max_steps(5);
        let d = temp_dir("classify");
        let real = RealVfs;
        let mut ckpt = Checkpoint::create(&real, &d.join("b.ckpt"), 1).unwrap();
        let report = batch_evaluate_checkpointed(
            &ev, &trees, &inputs, 3, &budget, 0, None, 0, &real, &mut ckpt, 0,
        )
        .unwrap();
        let guarded = crate::batch_evaluate_guarded(&ev, &trees, &inputs, 3, &budget, 0, None);
        for (i, (r, o)) in report.records.iter().zip(&guarded.outcomes).enumerate() {
            assert_eq!(r.outcome, CkptOutcome::classify(o), "tree {i}");
            assert_eq!(r.digest, outcome_digest(o), "tree {i}");
        }
        let (ok, failed, panicked, budgeted) = report.counts();
        assert!(ok >= 1 && budgeted >= 1, "mixed outcomes expected");
        assert_eq!(failed, 0);
        assert_eq!(panicked, 0);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn transient_io_fault_with_backoff_retries_at_the_driver_level() {
        // An EINTR on one journal append aborts the batch with a
        // classified error; the caller (fnc2c) retries the whole batch,
        // which resumes from the journal. Verify the resume picks up
        // every already-journaled tree.
        let g = count_grammar();
        let seqs = eval_parts(&g);
        let ev = Evaluator::new(&g, &seqs);
        let trees = chains(&g, 2 * JOURNAL_FLUSH_EVERY + 8);
        let inputs = RootInputs::new();
        let d = temp_dir("eintr");
        let path = d.join("b.ckpt");
        // Write op 0 is the header, op 1 the first group append (16
        // records journaled), op 2 the second — EINTR there aborts the
        // batch with the first group safely on disk.
        let faulty = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 2,
            kind: IoFaultKind::Eintr,
            transient: true,
        }]));
        let mut ckpt = Checkpoint::create(&faulty, &path, 2).unwrap();
        let err = batch_evaluate_checkpointed(
            &ev,
            &trees,
            &inputs,
            1,
            &EvalBudget::default(),
            0,
            None,
            1,
            &faulty,
            &mut ckpt,
            0,
        )
        .unwrap_err();
        let CkptError::Io(io) = &err else {
            panic!("expected Io, got {err:?}")
        };
        assert!(io.is_transient());
        // Same (still-faulty-but-transient) backend, second try: succeeds.
        let (mut resumed, info) = Checkpoint::open(&faulty, &path, 2).unwrap();
        assert_eq!(info.resumed, JOURNAL_FLUSH_EVERY);
        let report = batch_evaluate_checkpointed(
            &ev,
            &trees,
            &inputs,
            1,
            &EvalBudget::default(),
            0,
            None,
            1,
            &faulty,
            &mut resumed,
            0,
        )
        .unwrap();
        assert_eq!(report.records.len(), trees.len());
        assert!(report.records.iter().all(|r| r.outcome == CkptOutcome::Ok));
        std::fs::remove_dir_all(&d).unwrap();
    }
}
