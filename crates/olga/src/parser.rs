//! Recursive-descent parser for the OLGA subset.

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, Pos, Tok, Token};

/// A parse error with position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What was expected / found.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: parse error: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// Parses a source text into its compilation units.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_units(src: &str) -> Result<Vec<Unit>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let mut units = Vec::new();
    while !p.peek_is_eof() {
        units.push(p.unit()?);
    }
    Ok(units)
}

/// Parses a source text expected to contain exactly one unit.
///
/// # Errors
///
/// Fails on parse errors or if the text has zero or several units.
pub fn parse_unit(src: &str) -> Result<Unit, ParseError> {
    let mut units = parse_units(src)?;
    if units.len() != 1 {
        return Err(ParseError {
            message: format!(
                "expected exactly one compilation unit, found {}",
                units.len()
            ),
            pos: Pos { line: 1, col: 1 },
        });
    }
    Ok(units.remove(0))
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn peek_is_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            pos: self.pos(),
        })
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<(), ParseError> {
        if self.peek() == &Tok::Kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek()))
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &'static str) -> bool {
        if self.peek() == &Tok::Kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.ident()?];
        while self.eat_punct(",") {
            names.push(self.ident()?);
        }
        Ok(names)
    }

    // ---- units ------------------------------------------------------------

    fn unit(&mut self) -> Result<Unit, ParseError> {
        match self.peek() {
            Tok::Kw("module") => self.module().map(Unit::Module),
            Tok::Kw("attribute") => self.ag().map(Unit::Ag),
            other => self.err(format!(
                "expected `module` or `attribute grammar`, found {other}"
            )),
        }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        self.expect_kw("module")?;
        let name = self.ident()?;
        self.expect_punct(";")?;
        let mut m = Module {
            name,
            ..Module::default()
        };
        loop {
            match self.peek() {
                Tok::Kw("end") => {
                    self.bump();
                    break;
                }
                Tok::Kw("import") => m.imports.push(self.import()?),
                Tok::Kw("export") => {
                    self.bump();
                    let opaque = self.eat_kw("opaque");
                    for name in self.ident_list()? {
                        m.exports.push(Export { name, opaque });
                    }
                    self.expect_punct(";")?;
                }
                Tok::Kw("type") => m.types.push(self.typedef()?),
                Tok::Kw("const") => m.consts.push(self.constdef()?),
                Tok::Kw("function") => m.funcs.push(self.fundef()?),
                other => return self.err(format!("unexpected {other} in module")),
            }
        }
        Ok(m)
    }

    fn import(&mut self) -> Result<Import, ParseError> {
        let pos = self.pos();
        self.expect_kw("import")?;
        let names = self.ident_list()?;
        self.expect_kw("from")?;
        let from = self.ident()?;
        self.expect_punct(";")?;
        Ok(Import { names, from, pos })
    }

    fn typedef(&mut self) -> Result<TypeDef, ParseError> {
        let pos = self.pos();
        self.expect_kw("type")?;
        let name = self.ident()?;
        self.expect_punct("=")?;
        let ty = self.type_expr()?;
        self.expect_punct(";")?;
        Ok(TypeDef { name, ty, pos })
    }

    fn constdef(&mut self) -> Result<ConstDef, ParseError> {
        let pos = self.pos();
        self.expect_kw("const")?;
        let name = self.ident()?;
        self.expect_punct(":")?;
        let ty = self.type_expr()?;
        self.expect_punct("=")?;
        let body = self.expr()?;
        self.expect_punct(";")?;
        Ok(ConstDef {
            name,
            ty,
            body,
            pos,
        })
    }

    fn fundef(&mut self) -> Result<FunDef, ParseError> {
        let pos = self.pos();
        self.expect_kw("function")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pname = self.ident()?;
                self.expect_punct(":")?;
                let pty = self.type_expr()?;
                params.push((pname, pty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct(":")?;
        let ret = self.type_expr()?;
        self.expect_punct("=")?;
        let body = self.expr()?;
        self.expect_punct(";")?;
        Ok(FunDef {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    // ---- attribute grammars -------------------------------------------------

    fn ag(&mut self) -> Result<AgDef, ParseError> {
        self.expect_kw("attribute")?;
        self.expect_kw("grammar")?;
        let name = self.ident()?;
        self.expect_punct(";")?;
        let mut ag = AgDef {
            name,
            ..AgDef::default()
        };
        let mut anon_blocks: Vec<RuleBlock> = Vec::new();
        loop {
            match self.peek() {
                Tok::Kw("end") => {
                    self.bump();
                    break;
                }
                Tok::Kw("import") => ag.imports.push(self.import()?),
                Tok::Kw("phylum") => {
                    self.bump();
                    ag.phyla.extend(self.ident_list()?);
                    self.expect_punct(";")?;
                }
                Tok::Kw("root") => {
                    self.bump();
                    ag.root = Some(self.ident()?);
                    self.expect_punct(";")?;
                }
                Tok::Kw("operator") => {
                    let pos = self.pos();
                    self.bump();
                    let name = self.ident()?;
                    self.expect_punct(":")?;
                    let lhs = self.ident()?;
                    self.expect_punct("::=")?;
                    let mut rhs = Vec::new();
                    while let Tok::Ident(_) = self.peek() {
                        rhs.push(self.ident()?);
                    }
                    self.expect_punct(";")?;
                    ag.operators.push(OpDef {
                        name,
                        lhs,
                        rhs,
                        pos,
                    });
                }
                Tok::Kw("synthesized") | Tok::Kw("inherited") => {
                    let pos = self.pos();
                    let synthesized = matches!(self.bump(), Tok::Kw("synthesized"));
                    let name = self.ident()?;
                    self.expect_punct(":")?;
                    let ty = self.type_expr()?;
                    self.expect_kw("of")?;
                    let phyla = self.ident_list()?;
                    let class = if self.eat_kw("with") {
                        let model = self.ident()?;
                        match model.as_str() {
                            "concat" => AttrClass::Concat,
                            "sum" => AttrClass::Sum,
                            other => {
                                return self
                                    .err(format!("unknown rule model `{other}` (concat, sum)"))
                            }
                        }
                    } else {
                        AttrClass::Plain
                    };
                    self.expect_punct(";")?;
                    ag.attrs.push(AttrDef {
                        synthesized,
                        name,
                        ty,
                        phyla,
                        class,
                        pos,
                    });
                }
                Tok::Kw("threaded") => {
                    let pos = self.pos();
                    self.bump();
                    let name = self.ident()?;
                    self.expect_punct(":")?;
                    let ty = self.type_expr()?;
                    self.expect_kw("of")?;
                    let phyla = self.ident_list()?;
                    self.expect_punct(";")?;
                    ag.threads.push(ThreadDef {
                        name,
                        ty,
                        phyla,
                        pos,
                    });
                }
                Tok::Kw("function") => ag.funcs.push(self.fundef()?),
                Tok::Kw("const") => ag.consts.push(self.constdef()?),
                Tok::Kw("type") => ag.types.push(self.typedef()?),
                Tok::Kw("phase") => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect_punct("{")?;
                    let mut blocks = Vec::new();
                    while !self.eat_punct("}") {
                        blocks.push(self.rule_block()?);
                    }
                    ag.phases.push(Phase { name, blocks });
                }
                Tok::Kw("for") => anon_blocks.push(self.rule_block()?),
                other => return self.err(format!("unexpected {other} in attribute grammar")),
            }
        }
        if !anon_blocks.is_empty() {
            ag.phases.insert(
                0,
                Phase {
                    name: String::new(),
                    blocks: anon_blocks,
                },
            );
        }
        Ok(ag)
    }

    fn rule_block(&mut self) -> Result<RuleBlock, ParseError> {
        let pos = self.pos();
        self.expect_kw("for")?;
        let operator = self.ident()?;
        self.expect_punct("{")?;
        let mut locals = Vec::new();
        let mut rules = Vec::new();
        while !self.eat_punct("}") {
            if self.peek() == &Tok::Kw("local") {
                let pos = self.pos();
                self.bump();
                let name = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.type_expr()?;
                self.expect_punct(":=")?;
                let body = self.expr()?;
                self.expect_punct(";")?;
                locals.push(LocalDef {
                    name,
                    ty,
                    body,
                    pos,
                });
            } else {
                rules.push(self.rule()?);
            }
        }
        Ok(RuleBlock {
            operator,
            locals,
            rules,
            pos,
        })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let pos = self.pos();
        let name = self.ident()?;
        let target = if self.peek() == &Tok::Punct(".") || self.peek() == &Tok::Punct("$") {
            let index = if self.eat_punct("$") {
                match self.bump() {
                    Tok::Int(i) if i >= 1 => Some(i as u32),
                    _ => return self.err("expected a positive occurrence index after `$`"),
                }
            } else {
                None
            };
            self.expect_punct(".")?;
            let attr = self.ident()?;
            RuleTarget::Occ(OccRef {
                name,
                index,
                attr,
                pos,
            })
        } else {
            RuleTarget::Local(name, pos)
        };
        self.expect_punct(":=")?;
        let body = self.expr()?;
        self.expect_punct(";")?;
        Ok(Rule { target, body, pos })
    }

    // ---- types ----------------------------------------------------------

    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        match self.peek().clone() {
            Tok::Kw("int") => {
                self.bump();
                Ok(TypeExpr::Int)
            }
            Tok::Kw("real") => {
                self.bump();
                Ok(TypeExpr::Real)
            }
            Tok::Kw("bool") => {
                self.bump();
                Ok(TypeExpr::Bool)
            }
            Tok::Kw("string") => {
                self.bump();
                Ok(TypeExpr::Str)
            }
            Tok::Kw("unit") => {
                self.bump();
                Ok(TypeExpr::Unit)
            }
            Tok::Kw("tree") => {
                self.bump();
                Ok(TypeExpr::Tree)
            }
            Tok::Kw("list") => {
                self.bump();
                self.expect_kw("of")?;
                Ok(TypeExpr::List(Box::new(self.type_expr()?)))
            }
            Tok::Kw("map") => {
                self.bump();
                self.expect_kw("of")?;
                Ok(TypeExpr::Map(Box::new(self.type_expr()?)))
            }
            Tok::Kw("tuple") => {
                self.bump();
                self.expect_punct("(")?;
                let mut items = vec![self.type_expr()?];
                while self.eat_punct(",") {
                    items.push(self.type_expr()?);
                }
                self.expect_punct(")")?;
                Ok(TypeExpr::Tuple(items))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(TypeExpr::Named(name))
            }
            other => self.err(format!("expected a type, found {other}")),
        }
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Kw("or") {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binop {
                op: "or",
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::Kw("and") {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binop {
                op: "and",
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.cons_expr()?;
        let op = match self.peek() {
            Tok::Punct("=") => "=",
            Tok::Punct("<>") => "<>",
            Tok::Punct("<") => "<",
            Tok::Punct("<=") => "<=",
            Tok::Punct(">") => ">",
            Tok::Punct(">=") => ">=",
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.cons_expr()?;
        Ok(Expr::Binop {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        })
    }

    fn cons_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("::") => "::",
            Tok::Punct("++") => "++",
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.cons_expr()?; // right-associative
        Ok(Expr::Binop {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => "+",
                Tok::Punct("-") => "-",
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binop {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => "*",
                Tok::Punct("/") => "/",
                Tok::Punct("%") => "%",
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binop {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Punct("-") => {
                let pos = self.pos();
                self.bump();
                Ok(Expr::Unop {
                    op: "-",
                    expr: Box::new(self.unary_expr()?),
                    pos,
                })
            }
            Tok::Kw("not") => {
                let pos = self.pos();
                self.bump();
                Ok(Expr::Unop {
                    op: "not",
                    expr: Box::new(self.unary_expr()?),
                    pos,
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(i, pos))
            }
            Tok::Real(r) => {
                self.bump();
                Ok(Expr::Real(r, pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, pos))
            }
            Tok::Kw("true") => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            Tok::Kw("false") => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            Tok::Kw("if") => {
                self.bump();
                let cond = self.expr()?;
                self.expect_kw("then")?;
                let then = self.expr()?;
                self.expect_kw("else")?;
                let els = self.expr()?;
                self.expect_kw("end")?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                    pos,
                })
            }
            Tok::Kw("let") => {
                self.bump();
                let name = self.ident()?;
                self.expect_punct("=")?;
                let value = self.expr()?;
                self.expect_kw("in")?;
                let body = self.expr()?;
                self.expect_kw("end")?;
                Ok(Expr::Let {
                    name,
                    value: Box::new(value),
                    body: Box::new(body),
                    pos,
                })
            }
            Tok::Kw("case") => {
                self.bump();
                let scrutinee = self.expr()?;
                self.expect_kw("of")?;
                let mut arms = Vec::new();
                loop {
                    let pat = self.pattern()?;
                    self.expect_punct("=>")?;
                    let body = self.expr()?;
                    arms.push((pat, body));
                    if !self.eat_punct("|") {
                        break;
                    }
                }
                self.expect_kw("end")?;
                Ok(Expr::Case {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    pos,
                })
            }
            Tok::Punct("(") => {
                self.bump();
                let first = self.expr()?;
                if self.eat_punct(",") {
                    let mut items = vec![first];
                    loop {
                        items.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr::TupleLit(items, pos))
                } else {
                    self.expect_punct(")")?;
                    Ok(first)
                }
            }
            Tok::Punct("[") => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct("]")?;
                }
                Ok(Expr::ListLit(items, pos))
            }
            Tok::Punct("@") => {
                self.bump();
                let op = self.ident()?;
                let mut args = Vec::new();
                if self.eat_punct("(") && !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                Ok(Expr::TreeCons { op, args, pos })
            }
            Tok::Ident(name) => {
                self.bump();
                // Call, occurrence, or plain variable.
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::Call { name, args, pos })
                } else if self.peek() == &Tok::Punct("$") || self.peek() == &Tok::Punct(".") {
                    let index = if self.eat_punct("$") {
                        match self.bump() {
                            Tok::Int(i) if i >= 1 => Some(i as u32),
                            _ => return self.err("expected a positive occurrence index after `$`"),
                        }
                    } else {
                        None
                    };
                    self.expect_punct(".")?;
                    let attr = self.ident()?;
                    Ok(Expr::Occ(OccRef {
                        name,
                        index,
                        attr,
                        pos,
                    }))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    // ---- patterns -----------------------------------------------------------

    fn pattern(&mut self) -> Result<Pat, ParseError> {
        let lhs = self.pattern_prim()?;
        if self.peek() == &Tok::Punct("::") {
            let pos = self.pos();
            self.bump();
            let rhs = self.pattern()?; // right-associative
            return Ok(Pat::Cons(Box::new(lhs), Box::new(rhs), pos));
        }
        Ok(lhs)
    }

    fn pattern_prim(&mut self) -> Result<Pat, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Punct("_") => {
                self.bump();
                Ok(Pat::Wild(pos))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Pat::Int(i, pos))
            }
            Tok::Punct("-") => {
                self.bump();
                match self.bump() {
                    Tok::Int(i) => Ok(Pat::Int(-i, pos)),
                    other => self.err(format!("expected integer after `-`, found {other}")),
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Pat::Str(s, pos))
            }
            Tok::Kw("true") => {
                self.bump();
                Ok(Pat::Bool(true, pos))
            }
            Tok::Kw("false") => {
                self.bump();
                Ok(Pat::Bool(false, pos))
            }
            Tok::Ident(n) => {
                self.bump();
                Ok(Pat::Bind(n, pos))
            }
            Tok::Punct("[") => {
                self.bump();
                self.expect_punct("]")?;
                Ok(Pat::Nil(pos))
            }
            Tok::Punct("(") => {
                self.bump();
                let mut items = vec![self.pattern()?];
                while self.eat_punct(",") {
                    items.push(self.pattern()?);
                }
                self.expect_punct(")")?;
                if items.len() == 1 {
                    Ok(items.remove(0))
                } else {
                    Ok(Pat::Tuple(items, pos))
                }
            }
            Tok::Punct("@") => {
                self.bump();
                let op = self.ident()?;
                let mut args = Vec::new();
                if self.eat_punct("(") && !self.eat_punct(")") {
                    loop {
                        args.push(self.pattern()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                Ok(Pat::Term { op, args, pos })
            }
            other => self.err(format!("expected a pattern, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_small_module() {
        let src = r#"
            module arith;
              export double, origin;
              const origin : int = 0;
              function double(x : int) : int = x + x;
            end
        "#;
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!("expected module");
        };
        assert_eq!(m.name, "arith");
        assert_eq!(m.exports.len(), 2);
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].params.len(), 1);
    }

    #[test]
    fn parse_binary_ag() {
        let src = r#"
            attribute grammar binary;
              phylum Number, Seq, Bit;
              root Number;
              operator number : Number ::= Seq;
              operator pair   : Seq ::= Seq Bit;
              operator single : Seq ::= Bit;
              operator zero   : Bit ::= ;
              operator one    : Bit ::= ;
              synthesized value : real of Number, Seq, Bit;
              synthesized length : int of Seq;
              inherited scale : int of Seq, Bit;
              for number { Number.value := Seq.value; Seq.scale := 0; }
              for pair {
                Seq$1.value := Seq$2.value + Bit.value;
                Seq$1.length := Seq$2.length + 1;
                Seq$2.scale := Seq$1.scale + 1;
                Bit.scale := Seq$1.scale;
              }
              for single { Seq.value := Bit.value; Seq.length := 1; Bit.scale := Seq.scale; }
              for zero { Bit.value := 0.0; }
              for one  { Bit.value := pow2(Bit.scale); }
              function pow2(n : int) : real = if n = 0 then 1.0 else 2.0 * pow2(n - 1) end;
            end
        "#;
        let Unit::Ag(ag) = parse_unit(src).unwrap() else {
            panic!("expected AG");
        };
        assert_eq!(ag.phyla, vec!["Number", "Seq", "Bit"]);
        assert_eq!(ag.operators.len(), 5);
        assert_eq!(ag.attrs.len(), 3);
        assert_eq!(ag.phases.len(), 1);
        assert_eq!(ag.phases[0].blocks.len(), 5);
        let pair = &ag.phases[0].blocks[1];
        assert_eq!(pair.operator, "pair");
        assert_eq!(pair.rules.len(), 4);
        // Seq$2.value parses with index 2.
        let r0 = &pair.rules[0];
        match &r0.body {
            Expr::Binop { op: "+", lhs, .. } => match &**lhs {
                Expr::Occ(o) => {
                    assert_eq!(o.name, "Seq");
                    assert_eq!(o.index, Some(2));
                    assert_eq!(o.attr, "value");
                }
                other => panic!("expected occurrence, got {other:?}"),
            },
            other => panic!("expected +, got {other:?}"),
        }
    }

    #[test]
    fn parse_expressions_and_patterns() {
        let src = r#"
            module m;
              function classify(l : list of int) : string =
                case l of
                  [] => "empty"
                | x :: [] => if x > 0 then "one" else "neg" end
                | _ :: _ => "many"
                end;
              function fst(p : tuple(int, string)) : int =
                case p of (a, _) => a end;
              function mk(n : int) : tree = @leaf(n);
              function depth(t : tree) : int =
                case t of @leaf(_) => 1 | @fork(a, b) => 1 + max(depth(a), depth(b)) end;
              function max(a : int, b : int) : int = if a > b then a else b end;
            end
        "#;
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!("expected module");
        };
        assert_eq!(m.funcs.len(), 5);
        // classify has 3 arms.
        match &m.funcs[0].body {
            Expr::Case { arms, .. } => assert_eq!(arms.len(), 3),
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn parse_phases_and_locals() {
        let src = r#"
            attribute grammar g;
              phylum S;
              operator leaf : S ::= ;
              synthesized v : int of S;
              phase compute {
                for leaf {
                  local tmp : int := 20 + 1;
                  S.v := tmp * 2;
                }
              }
            end
        "#;
        let Unit::Ag(ag) = parse_unit(src).unwrap() else {
            panic!("expected AG");
        };
        assert_eq!(ag.phases.len(), 1);
        assert_eq!(ag.phases[0].name, "compute");
        let block = &ag.phases[0].blocks[0];
        assert_eq!(block.locals.len(), 1);
        assert_eq!(block.rules.len(), 1);
        assert!(matches!(&block.rules[0].target, RuleTarget::Occ(_)));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_unit("module m\nend").unwrap_err();
        assert_eq!(err.pos.line, 2, "{err}");
        assert!(err.message.contains("expected `;`"));
    }

    #[test]
    fn multiple_units() {
        let src = "module a; end module b; end";
        let units = parse_units(src).unwrap();
        assert_eq!(units.len(), 2);
        assert_eq!(units[1].name(), "b");
    }

    #[test]
    fn operators_precedence() {
        let src = "module m; const c : int = 1 + 2 * 3; end";
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!()
        };
        match &m.consts[0].body {
            Expr::Binop { op: "+", rhs, .. } => {
                assert!(matches!(&**rhs, Expr::Binop { op: "*", .. }));
            }
            other => panic!("expected + at top, got {other:?}"),
        }
    }
}
