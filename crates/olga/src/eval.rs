//! The OLGA expression interpreter.
//!
//! Evaluates checked expressions over the dynamic [`Value`] model: this is
//! the role the paper's OLGA-to-C/Lisp translators play at run time (the
//! generated C text is produced by `fnc2-codegen`; measurement runs execute
//! in-process through this interpreter).
//!
//! # Errors
//!
//! OLGA's `error("…")` builtin — the documented abort path of a language
//! whose exceptions were *designed but not implemented* ("the most notable
//! omissions are … exceptions") — and every other runtime failure (partial
//! accessors such as `hd`/`lookup`, an unmatched `case`, a circular
//! constant) surface as [`EvalAbort`] values, never as Rust panics, so the
//! surrounding pipeline can report them as ordinary diagnostics.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use fnc2_ag::Value;

use crate::ast::{Expr, Pat};
use crate::check::UnitEnv;
use crate::lexer::Pos;

/// A runtime failure inside the OLGA interpreter: the `error` builtin, a
/// partial builtin applied out of domain, an unmatched `case`, a circular
/// constant definition, or a dynamic type confusion that slipped past the
/// checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalAbort {
    /// Human-readable description of the failure.
    pub message: String,
    /// Source position, when the failing construct carries one.
    pub pos: Option<Pos>,
}

impl EvalAbort {
    /// An abort without a source position.
    pub fn new(message: impl Into<String>) -> EvalAbort {
        EvalAbort {
            message: message.into(),
            pos: None,
        }
    }

    /// An abort at a known source position.
    pub fn at(message: impl Into<String>, pos: Pos) -> EvalAbort {
        EvalAbort {
            message: message.into(),
            pos: Some(pos),
        }
    }
}

impl fmt::Display for EvalAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} at {pos}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for EvalAbort {}

/// Internal result type: the abort is boxed so the `Result` temporaries in
/// the interpreter's (deeply recursive) frames stay pointer-sized — debug
/// builds do not coalesce stack slots, and OLGA programs recurse hundreds
/// of frames deep.
type EResult = Result<Value, Box<EvalAbort>>;

#[cold]
fn abort(message: String, pos: Pos) -> Box<EvalAbort> {
    Box::new(EvalAbort::at(message, pos))
}

/// Immutable evaluation context: functions and constant values.
#[derive(Clone, Debug)]
pub struct EvalCtx {
    env: Arc<UnitEnv>,
    consts: Arc<HashMap<String, Value>>,
}

impl EvalCtx {
    /// Builds the context for a checked unit: constant definitions are
    /// evaluated once, in dependency order.
    ///
    /// # Errors
    ///
    /// Fails on circular constant definitions (the checker defers the cycle
    /// check to here) or when a constant's body aborts at evaluation time.
    pub fn new(env: &UnitEnv) -> Result<EvalCtx, EvalAbort> {
        let env = Arc::new(env.clone());
        // Dependency-order the constants by the constant names their
        // bodies reference.
        let mut names: Vec<&String> = env.consts.keys().collect();
        names.sort();
        let mut order: Vec<&String> = Vec::new();
        let mut state: HashMap<&str, u8> = HashMap::new(); // 1=visiting, 2=done
        fn visit<'a>(
            n: &'a String,
            env: &'a UnitEnv,
            state: &mut HashMap<&'a str, u8>,
            order: &mut Vec<&'a String>,
        ) -> Result<(), EvalAbort> {
            match state.get(n.as_str()) {
                Some(2) => return Ok(()),
                Some(1) => {
                    return Err(EvalAbort::at(
                        format!("circular constant definition involving `{n}`"),
                        env.consts[n].1.pos(),
                    ))
                }
                _ => {}
            }
            state.insert(n, 1);
            let mut refs = Vec::new();
            let mut bound = Vec::new();
            collect_const_refs(&env.consts[n].1, env, &mut bound, &mut refs);
            for r in refs {
                visit(r, env, state, order)?;
            }
            state.insert(n, 2);
            order.push(n);
            Ok(())
        }
        for n in names {
            visit(n, &env, &mut state, &mut order)?;
        }
        let mut done: HashMap<String, Value> = HashMap::new();
        for n in order {
            let ctx = EvalCtx {
                env: env.clone(),
                consts: Arc::new(done.clone()),
            };
            let v = ctx.eval_closed(&env.consts[n].1.clone())?;
            done.insert(n.clone(), v);
        }
        Ok(EvalCtx {
            env,
            consts: Arc::new(done),
        })
    }

    /// The unit environment.
    pub fn env(&self) -> &UnitEnv {
        &self.env
    }

    /// Evaluates a closed expression.
    ///
    /// # Errors
    /// Fails when evaluation aborts (see [`EvalAbort`]).
    pub fn eval_closed(&self, e: &Expr) -> Result<Value, EvalAbort> {
        let mut scope = Scope::default();
        self.eval(e, &mut scope).map_err(|e| *e)
    }

    /// Evaluates `e` under `bindings` (used by lowered semantic rules).
    ///
    /// # Errors
    /// Fails when evaluation aborts (see [`EvalAbort`]).
    pub fn eval_with(&self, e: &Expr, bindings: &[(String, Value)]) -> Result<Value, EvalAbort> {
        let mut scope = Scope::default();
        for (n, v) in bindings {
            scope.bind(n.clone(), v.clone());
        }
        self.eval(e, &mut scope).map_err(|e| *e)
    }

    /// Applies a user function by name.
    ///
    /// # Errors
    /// Fails if the function is unknown, the arity is wrong (the checker
    /// prevents both for checked programs), or the body aborts.
    pub fn apply(&self, name: &str, args: Vec<Value>) -> Result<Value, EvalAbort> {
        self.apply_inner(name, args).map_err(|e| *e)
    }

    fn apply_inner(&self, name: &str, args: Vec<Value>) -> EResult {
        let sig = self
            .env
            .funcs
            .get(name)
            .ok_or_else(|| Box::new(EvalAbort::new(format!("unknown function `{name}`"))))?;
        if sig.params.len() != args.len() {
            return Err(Box::new(EvalAbort::new(format!(
                "arity mismatch applying `{name}`: expected {} arguments, got {}",
                sig.params.len(),
                args.len()
            ))));
        }
        let mut scope = Scope::default();
        for ((p, _), v) in sig.params.iter().zip(args) {
            scope.bind(p.clone(), v);
        }
        self.eval(&sig.body, &mut scope)
    }

    fn eval(&self, e: &Expr, scope: &mut Scope) -> EResult {
        match e {
            Expr::Int(i, _) => Ok(Value::Int(*i)),
            Expr::Real(r, _) => Ok(Value::Real(*r)),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Str(s, _) => Ok(Value::str(s)),
            Expr::Var(n, pos) => match scope.lookup(n) {
                Some(v) => Ok(v.clone()),
                None => self
                    .consts
                    .get(n)
                    .cloned()
                    .ok_or_else(|| abort(format!("unbound variable `{n}`"), *pos)),
            },
            Expr::Occ(o) => Err(abort(
                format!(
                    "occurrence `{}.{}` reached the interpreter; lowering must substitute it",
                    o.name, o.attr
                ),
                o.pos,
            )),
            Expr::Call { name, args, pos } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scope)?);
                }
                self.call(name, vals, *pos)
            }
            Expr::Unop { op, expr, pos } => {
                let v = self.eval(expr, scope)?;
                match (*op, v) {
                    ("-", Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
                    ("-", Value::Real(r)) => Ok(Value::Real(-r)),
                    ("not", Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, v) => Err(abort(
                        format!("unary `{op}` applied to a {}", v.type_name()),
                        *pos,
                    )),
                }
            }
            Expr::Binop { op, lhs, rhs, pos } => {
                // Short-circuit and/or.
                if *op == "and" {
                    return if want_bool(&self.eval(lhs, scope)?, *pos)? {
                        self.eval(rhs, scope)
                    } else {
                        Ok(Value::Bool(false))
                    };
                }
                if *op == "or" {
                    return if want_bool(&self.eval(lhs, scope)?, *pos)? {
                        Ok(Value::Bool(true))
                    } else {
                        self.eval(rhs, scope)
                    };
                }
                let l = self.eval(lhs, scope)?;
                let r = self.eval(rhs, scope)?;
                binop(op, l, r, *pos)
            }
            Expr::If {
                cond, then, els, ..
            } => {
                if want_bool(&self.eval(cond, scope)?, cond.pos())? {
                    self.eval(then, scope)
                } else {
                    self.eval(els, scope)
                }
            }
            Expr::Let {
                name, value, body, ..
            } => {
                let v = self.eval(value, scope)?;
                scope.bind(name.clone(), v);
                let out = self.eval(body, scope);
                scope.unbind(1);
                out
            }
            Expr::Case {
                scrutinee,
                arms,
                pos,
            } => {
                let v = self.eval(scrutinee, scope)?;
                for (pat, body) in arms {
                    let mut n = 0;
                    if match_pat(pat, &v, scope, &mut n) {
                        let out = self.eval(body, scope);
                        scope.unbind(n);
                        return out;
                    }
                    scope.unbind(n);
                }
                Err(abort(format!("case expression: no arm matched {v}"), *pos))
            }
            Expr::ListLit(items, _) => {
                let mut vs = Vec::with_capacity(items.len());
                for i in items {
                    vs.push(self.eval(i, scope)?);
                }
                Ok(Value::list(vs))
            }
            Expr::TupleLit(items, _) => {
                let mut vs = Vec::with_capacity(items.len());
                for i in items {
                    vs.push(self.eval(i, scope)?);
                }
                Ok(Value::tuple(vs))
            }
            Expr::TreeCons { op, args, .. } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, scope)?);
                }
                Ok(Value::term(op.clone(), vs))
            }
        }
    }

    fn call(&self, name: &str, args: Vec<Value>, pos: Pos) -> EResult {
        let arg = |i: usize| -> Result<&Value, Box<EvalAbort>> {
            args.get(i)
                .ok_or_else(|| abort(format!("builtin `{name}`: missing argument {i}"), pos))
        };
        match name {
            "to_real" => Ok(Value::Real(want_int(arg(0)?, pos)? as f64)),
            "to_int" => Ok(Value::Int(want_real(arg(0)?, pos)? as i64)),
            "abs" => Ok(Value::Int(want_int(arg(0)?, pos)?.wrapping_abs())),
            "min" => Ok(Value::Int(
                want_int(arg(0)?, pos)?.min(want_int(arg(1)?, pos)?),
            )),
            "max" => Ok(Value::Int(
                want_int(arg(0)?, pos)?.max(want_int(arg(1)?, pos)?),
            )),
            "len" => Ok(Value::Int(want_list(arg(0)?, pos)?.len() as i64)),
            "null" => Ok(Value::Bool(want_list(arg(0)?, pos)?.is_empty())),
            "hd" => want_list(arg(0)?, pos)?
                .first()
                .cloned()
                .ok_or_else(|| abort("hd of empty list".to_string(), pos)),
            "tl" => Ok(Value::list(
                want_list(arg(0)?, pos)?.iter().skip(1).cloned(),
            )),
            "rev" => Ok(Value::list(want_list(arg(0)?, pos)?.iter().rev().cloned())),
            "empty_map" => Ok(Value::empty_map()),
            "size" => Ok(Value::Int(want_map(arg(0)?, pos)?.len() as i64)),
            "insert" => {
                let key = want_str(arg(1)?, pos)?.to_string();
                Ok(arg(0)?.map_insert(key, arg(2)?.clone()))
            }
            "lookup" => {
                want_map(arg(0)?, pos)?;
                let key = want_str(arg(1)?, pos)?;
                arg(0)?
                    .map_get(key)
                    .cloned()
                    .ok_or_else(|| abort(format!("lookup: unbound key {key:?}"), pos))
            }
            "bound" => {
                want_map(arg(0)?, pos)?;
                let key = want_str(arg(1)?, pos)?;
                Ok(Value::Bool(arg(0)?.map_get(key).is_some()))
            }
            "remove" => {
                let mut m = want_map(arg(0)?, pos)?.clone();
                m.remove(want_str(arg(1)?, pos)?);
                Ok(Value::Map(Arc::new(m)))
            }
            "itoa" => Ok(Value::str(want_int(arg(0)?, pos)?.to_string())),
            "rtoa" => Ok(Value::str(format!("{}", want_real(arg(0)?, pos)?))),
            "strlen" => Ok(Value::Int(want_str(arg(0)?, pos)?.chars().count() as i64)),
            "error" => Err(abort(
                format!("OLGA error: {}", want_str(arg(0)?, pos)?),
                pos,
            )),
            _ => self.apply_inner(name, args),
        }
    }
}

/// Collects references to constant names in `e` for dependency ordering.
///
/// The scan is binder-aware: `let` and `case` binders shadow constants of
/// the same name, so a shadowed occurrence contributes no dependency edge
/// (a naive scan reports `let c = 1 in c end` as a self-cycle of `c`).
fn collect_const_refs<'a>(
    e: &Expr,
    env: &'a UnitEnv,
    bound: &mut Vec<String>,
    out: &mut Vec<&'a String>,
) {
    match e {
        Expr::Var(n, _) => {
            if bound.iter().any(|b| b == n) {
                return;
            }
            if let Some((k, _)) = env.consts.get_key_value(n) {
                out.push(k);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_const_refs(a, env, bound, out);
            }
        }
        Expr::Unop { expr, .. } => collect_const_refs(expr, env, bound, out),
        Expr::Binop { lhs, rhs, .. } => {
            collect_const_refs(lhs, env, bound, out);
            collect_const_refs(rhs, env, bound, out);
        }
        Expr::If {
            cond, then, els, ..
        } => {
            collect_const_refs(cond, env, bound, out);
            collect_const_refs(then, env, bound, out);
            collect_const_refs(els, env, bound, out);
        }
        Expr::Let {
            name, value, body, ..
        } => {
            collect_const_refs(value, env, bound, out);
            bound.push(name.clone());
            collect_const_refs(body, env, bound, out);
            bound.pop();
        }
        Expr::Case {
            scrutinee, arms, ..
        } => {
            collect_const_refs(scrutinee, env, bound, out);
            for (p, b) in arms {
                let before = bound.len();
                bound.extend(p.binders().into_iter().map(String::from));
                collect_const_refs(b, env, bound, out);
                bound.truncate(before);
            }
        }
        Expr::ListLit(items, _) | Expr::TupleLit(items, _) => {
            for i in items {
                collect_const_refs(i, env, bound, out);
            }
        }
        Expr::TreeCons { args, .. } => {
            for a in args {
                collect_const_refs(a, env, bound, out);
            }
        }
        _ => {}
    }
}

/// Lexical runtime scope.
#[derive(Default, Debug)]
struct Scope {
    stack: Vec<(String, Value)>,
}

impl Scope {
    fn bind(&mut self, name: String, v: Value) {
        self.stack.push((name, v));
    }
    fn unbind(&mut self, n: usize) {
        self.stack.truncate(self.stack.len() - n);
    }
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.stack
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

fn want_int(v: &Value, pos: Pos) -> Result<i64, Box<EvalAbort>> {
    match v {
        Value::Int(i) => Ok(*i),
        v => Err(type_confusion("int", v, pos)),
    }
}

fn want_real(v: &Value, pos: Pos) -> Result<f64, Box<EvalAbort>> {
    match v {
        Value::Real(r) => Ok(*r),
        v => Err(type_confusion("real", v, pos)),
    }
}

fn want_bool(v: &Value, pos: Pos) -> Result<bool, Box<EvalAbort>> {
    match v {
        Value::Bool(b) => Ok(*b),
        v => Err(type_confusion("bool", v, pos)),
    }
}

fn want_str(v: &Value, pos: Pos) -> Result<&str, Box<EvalAbort>> {
    match v {
        Value::Str(s) => Ok(s),
        v => Err(type_confusion("string", v, pos)),
    }
}

fn want_list(v: &Value, pos: Pos) -> Result<&[Value], Box<EvalAbort>> {
    match v {
        Value::List(l) => Ok(l),
        v => Err(type_confusion("list", v, pos)),
    }
}

fn want_map(
    v: &Value,
    pos: Pos,
) -> Result<&std::collections::BTreeMap<String, Value>, Box<EvalAbort>> {
    match v {
        Value::Map(m) => Ok(m),
        v => Err(type_confusion("map", v, pos)),
    }
}

#[cold]
fn type_confusion(wanted: &str, got: &Value, pos: Pos) -> Box<EvalAbort> {
    abort(
        format!("expected a {wanted}, got a {} ({got})", got.type_name()),
        pos,
    )
}

fn binop(op: &str, l: Value, r: Value, pos: Pos) -> EResult {
    use Value::*;
    Ok(match (op, &l, &r) {
        ("+", Int(a), Int(b)) => Int(a.wrapping_add(*b)),
        ("+", Real(a), Real(b)) => Real(a + b),
        ("+", Str(a), Str(b)) => Value::str(format!("{a}{b}")),
        ("-", Int(a), Int(b)) => Int(a.wrapping_sub(*b)),
        ("-", Real(a), Real(b)) => Real(a - b),
        ("*", Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
        ("*", Real(a), Real(b)) => Real(a * b),
        ("/", Int(_), Int(0)) => {
            return Err(abort("integer division by zero".to_string(), pos));
        }
        ("/", Int(a), Int(b)) => Int(a.wrapping_div(*b)),
        ("/", Real(a), Real(b)) => Real(a / b),
        ("%", Int(_), Int(0)) => {
            return Err(abort("integer remainder by zero".to_string(), pos));
        }
        ("%", Int(a), Int(b)) => Int(a.wrapping_rem(*b)),
        ("=", a, b) => Bool(a == b),
        ("<>", a, b) => Bool(a != b),
        ("<", a, b) => Bool(a.partial_cmp(b) == Some(std::cmp::Ordering::Less)),
        ("<=", a, b) => Bool(matches!(
            a.partial_cmp(b),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )),
        (">", a, b) => Bool(a.partial_cmp(b) == Some(std::cmp::Ordering::Greater)),
        (">=", a, b) => Bool(matches!(
            a.partial_cmp(b),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        )),
        ("::", _, List(items)) => {
            let mut v = Vec::with_capacity(items.len() + 1);
            v.push(l.clone());
            v.extend(items.iter().cloned());
            Value::list(v)
        }
        ("++", Str(a), Str(b)) => Value::str(format!("{a}{b}")),
        ("++", List(a), List(b)) => Value::list(a.iter().chain(b.iter()).cloned()),
        (op, l, r) => {
            return Err(abort(
                format!(
                    "binary `{op}` applied to a {} and a {}",
                    l.type_name(),
                    r.type_name()
                ),
                pos,
            ));
        }
    })
}

/// Pattern match; pushes bindings into `scope` (caller pops `*pushed`).
fn match_pat(pat: &Pat, v: &Value, scope: &mut Scope, pushed: &mut usize) -> bool {
    match (pat, v) {
        (Pat::Wild(_), _) => true,
        (Pat::Bind(n, _), v) => {
            scope.bind(n.clone(), v.clone());
            *pushed += 1;
            true
        }
        (Pat::Int(i, _), Value::Int(j)) => i == j,
        (Pat::Bool(b, _), Value::Bool(c)) => b == c,
        (Pat::Str(s, _), Value::Str(t)) => s.as_str() == &**t,
        (Pat::Nil(_), Value::List(items)) => items.is_empty(),
        (Pat::Cons(h, t, _), Value::List(items)) => {
            if items.is_empty() {
                return false;
            }
            match_pat(h, &items[0], scope, pushed)
                && match_pat(t, &Value::list(items[1..].iter().cloned()), scope, pushed)
        }
        (Pat::Tuple(ps, _), Value::Tuple(items)) => {
            ps.len() == items.len()
                && ps
                    .iter()
                    .zip(items.iter())
                    .all(|(p, v)| match_pat(p, v, scope, pushed))
        }
        (Pat::Term { op, args, .. }, Value::Term(t)) => {
            op == &t.op
                && args.len() == t.children.len()
                && args
                    .iter()
                    .zip(&t.children)
                    .all(|(p, v)| match_pat(p, v, scope, pushed))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Unit;
    use crate::check::Compiler;
    use crate::parser::parse_unit;

    use super::*;

    fn ctx_for(src: &str) -> EvalCtx {
        try_ctx_for(src).unwrap()
    }

    fn try_ctx_for(src: &str) -> Result<EvalCtx, EvalAbort> {
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!("expected module")
        };
        let mut c = Compiler::new();
        c.add_module(m.clone()).unwrap();
        EvalCtx::new(&c.module(&m.name).unwrap().env)
    }

    fn apply(ctx: &EvalCtx, name: &str, args: Vec<Value>) -> Value {
        ctx.apply(name, args).unwrap()
    }

    #[test]
    fn arithmetic_and_recursion() {
        let ctx = ctx_for(
            r#"
            module m;
              function fact(n : int) : int = if n <= 1 then 1 else n * fact(n - 1) end;
              function fib(n : int) : int =
                if n < 2 then n else fib(n - 1) + fib(n - 2) end;
            end
            "#,
        );
        assert_eq!(apply(&ctx, "fact", vec![Value::Int(6)]), Value::Int(720));
        assert_eq!(apply(&ctx, "fib", vec![Value::Int(10)]), Value::Int(55));
    }

    #[test]
    fn lists_and_patterns() {
        let ctx = ctx_for(
            r#"
            module m;
              function suml(l : list of int) : int =
                case l of [] => 0 | x :: r => x + suml(r) end;
              function second(l : list of int) : int =
                case l of _ :: y :: _ => y | _ => -1 end;
            end
            "#,
        );
        let l = Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(apply(&ctx, "suml", vec![l.clone()]), Value::Int(6));
        assert_eq!(apply(&ctx, "second", vec![l]), Value::Int(2));
        assert_eq!(
            apply(&ctx, "second", vec![Value::list([Value::Int(9)])]),
            Value::Int(-1)
        );
    }

    #[test]
    fn maps_and_strings() {
        let ctx = ctx_for(
            r#"
            module m;
              function note(e : map of string, k : string, v : string) : map of string =
                insert(e, k, v);
              function get(e : map of string, k : string) : string =
                if bound(e, k) then lookup(e, k) else "?" end;
              const greeting : string = "hi " ++ "there";
            end
            "#,
        );
        let m0 = Value::empty_map();
        let m1 = apply(&ctx, "note", vec![m0, Value::str("a"), Value::str("1")]);
        assert_eq!(
            apply(&ctx, "get", vec![m1.clone(), Value::str("a")]),
            Value::str("1")
        );
        assert_eq!(
            apply(&ctx, "get", vec![m1, Value::str("b")]),
            Value::str("?")
        );
        assert_eq!(
            ctx.eval_closed(&crate::ast::Expr::Var(
                "greeting".into(),
                crate::lexer::Pos { line: 0, col: 0 }
            ))
            .unwrap(),
            Value::str("hi there")
        );
    }

    #[test]
    fn trees_and_term_patterns() {
        let ctx = ctx_for(
            r#"
            module m;
              function mk(n : int) : tree = @leaf(n);
              function depth(t : tree) : int =
                case t of @leaf(_) => 1 | @fork(a, b) => 1 + max(depth(a), depth(b)) end;
              function grow(n : int) : tree =
                if n = 0 then @leaf(0) else @fork(grow(n - 1), @leaf(n)) end;
            end
            "#,
        );
        let t = apply(&ctx, "grow", vec![Value::Int(3)]);
        assert_eq!(apply(&ctx, "depth", vec![t]), Value::Int(4));
    }

    #[test]
    fn consts_depending_on_consts() {
        let ctx = ctx_for(
            r#"
            module m;
              const b : int = a + 1;
              const a : int = 41;
            end
            "#,
        );
        assert_eq!(
            ctx.eval_closed(&crate::ast::Expr::Var(
                "b".into(),
                crate::lexer::Pos { line: 0, col: 0 }
            ))
            .unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn error_builtin_reports_abort() {
        let ctx = ctx_for("module m; function f(x : int) : int = error(\"boom\"); end");
        let err = ctx.apply("f", vec![Value::Int(0)]).unwrap_err();
        assert_eq!(err.message, "OLGA error: boom");
        assert!(err.pos.is_some(), "error builtin reports its call site");
    }

    #[test]
    fn partial_builtins_report_aborts() {
        let ctx = ctx_for(
            r#"
            module m;
              function first(l : list of int) : int = hd(l);
              function get(e : map of string, k : string) : string = lookup(e, k);
              function halve(n : int) : int = n / 0;
            end
            "#,
        );
        let err = ctx.apply("first", vec![Value::list([])]).unwrap_err();
        assert_eq!(err.message, "hd of empty list");
        let err = ctx
            .apply("get", vec![Value::empty_map(), Value::str("k")])
            .unwrap_err();
        assert!(err.message.starts_with("lookup: unbound key"));
        let err = ctx.apply("halve", vec![Value::Int(4)]).unwrap_err();
        assert_eq!(err.message, "integer division by zero");
    }

    #[test]
    fn circular_consts_report_abort() {
        let err = try_ctx_for(
            r#"
            module m;
              const a : int = b + 1;
              const b : int = a + 1;
            end
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("circular constant definition"));
        assert!(err.pos.is_some());
    }

    #[test]
    fn let_shadowing_is_not_a_constant_cycle() {
        // A naive free-variable scan sees `c` in the let body and reports a
        // self-cycle; the binder-aware scan must not.
        let ctx = ctx_for(
            r#"
            module m;
              const c : int = let c = 1 in c + 41 end;
            end
            "#,
        );
        assert_eq!(
            ctx.eval_closed(&crate::ast::Expr::Var(
                "c".into(),
                crate::lexer::Pos { line: 0, col: 0 }
            ))
            .unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn case_binder_shadowing_is_not_a_constant_cycle() {
        let ctx = ctx_for(
            r#"
            module m;
              const c : int = case [7] of c :: _ => c | _ => 0 end;
            end
            "#,
        );
        assert_eq!(
            ctx.eval_closed(&crate::ast::Expr::Var(
                "c".into(),
                crate::lexer::Pos { line: 0, col: 0 }
            ))
            .unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn short_circuit() {
        let ctx = ctx_for(
            r#"
            module m;
              function safe(l : list of int) : bool =
                not null(l) and hd(l) > 0;
            end
            "#,
        );
        assert_eq!(
            apply(&ctx, "safe", vec![Value::list([])]),
            Value::Bool(false),
            "hd must not run on the empty list"
        );
    }
}
