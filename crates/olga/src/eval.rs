//! The OLGA expression interpreter.
//!
//! Evaluates checked expressions over the dynamic [`Value`] model: this is
//! the role the paper's OLGA-to-C/Lisp translators play at run time (the
//! generated C text is produced by `fnc2-codegen`; measurement runs execute
//! in-process through this interpreter).
//!
//! # Panics
//!
//! OLGA's `error("…")` builtin raises a Rust panic carrying the message —
//! the paper's OLGA has exceptions *designed but not implemented* ("the
//! most notable omissions are … exceptions"), and `error` is the documented
//! abort path.

use std::collections::HashMap;
use std::rc::Rc;

use fnc2_ag::Value;

use crate::ast::{Expr, Pat};
use crate::check::UnitEnv;

/// Immutable evaluation context: functions and constant values.
#[derive(Clone, Debug)]
pub struct EvalCtx {
    env: Rc<UnitEnv>,
    consts: Rc<HashMap<String, Value>>,
}

impl EvalCtx {
    /// Builds the context for a checked unit: constant definitions are
    /// evaluated once, in dependency order.
    ///
    /// # Panics
    ///
    /// Panics on circular constant definitions.
    pub fn new(env: &UnitEnv) -> EvalCtx {
        let env = Rc::new(env.clone());
        // Dependency-order the constants by the constant names their
        // bodies reference.
        let mut names: Vec<&String> = env.consts.keys().collect();
        names.sort();
        let mut order: Vec<&String> = Vec::new();
        let mut state: HashMap<&str, u8> = HashMap::new(); // 1=visiting, 2=done
        fn visit<'a>(
            n: &'a String,
            env: &'a UnitEnv,
            state: &mut HashMap<&'a str, u8>,
            order: &mut Vec<&'a String>,
        ) {
            match state.get(n.as_str()) {
                Some(2) => return,
                Some(1) => panic!("circular constant definition involving `{n}`"),
                _ => {}
            }
            state.insert(n, 1);
            let mut refs = Vec::new();
            collect_const_refs(&env.consts[n].1, env, &mut refs);
            for r in refs {
                visit(r, env, state, order);
            }
            state.insert(n, 2);
            order.push(n);
        }
        for n in names {
            visit(n, &env, &mut state, &mut order);
        }
        let mut done: HashMap<String, Value> = HashMap::new();
        for n in order {
            let ctx = EvalCtx {
                env: env.clone(),
                consts: Rc::new(done.clone()),
            };
            let v = ctx.eval_closed(&env.consts[n].1.clone());
            done.insert(n.clone(), v);
        }
        EvalCtx {
            env,
            consts: Rc::new(done),
        }
    }

    /// The unit environment.
    pub fn env(&self) -> &UnitEnv {
        &self.env
    }

    /// Evaluates a closed expression.
    pub fn eval_closed(&self, e: &Expr) -> Value {
        let mut scope = Scope::default();
        self.eval(e, &mut scope)
    }

    /// Evaluates `e` under `bindings` (used by lowered semantic rules).
    pub fn eval_with(&self, e: &Expr, bindings: &[(String, Value)]) -> Value {
        let mut scope = Scope::default();
        for (n, v) in bindings {
            scope.bind(n.clone(), v.clone());
        }
        self.eval(e, &mut scope)
    }

    /// Applies a user function by name.
    ///
    /// # Panics
    /// Panics if the function is unknown or the arity is wrong (the checker
    /// prevents both).
    pub fn apply(&self, name: &str, args: Vec<Value>) -> Value {
        let sig = self
            .env
            .funcs
            .get(name)
            .unwrap_or_else(|| panic!("unknown function `{name}`"));
        assert_eq!(sig.params.len(), args.len(), "arity of `{name}`");
        let mut scope = Scope::default();
        for ((p, _), v) in sig.params.iter().zip(args) {
            scope.bind(p.clone(), v);
        }
        self.eval(&sig.body, &mut scope)
    }

    fn eval(&self, e: &Expr, scope: &mut Scope) -> Value {
        match e {
            Expr::Int(i, _) => Value::Int(*i),
            Expr::Real(r, _) => Value::Real(*r),
            Expr::Bool(b, _) => Value::Bool(*b),
            Expr::Str(s, _) => Value::str(s),
            Expr::Var(n, _) => match scope.lookup(n) {
                Some(v) => v.clone(),
                None => self
                    .consts
                    .get(n)
                    .unwrap_or_else(|| panic!("unbound `{n}` (checker admits consts only)"))
                    .clone(),
            },
            Expr::Occ(o) => panic!(
                "occurrence `{}.{}` reached the interpreter; lowering must substitute it",
                o.name, o.attr
            ),
            Expr::Call { name, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a, scope)).collect();
                self.call(name, vals)
            }
            Expr::Unop { op, expr, .. } => {
                let v = self.eval(expr, scope);
                match (*op, v) {
                    ("-", Value::Int(i)) => Value::Int(-i),
                    ("-", Value::Real(r)) => Value::Real(-r),
                    ("not", Value::Bool(b)) => Value::Bool(!b),
                    (op, v) => panic!("unop `{op}` on {v:?}"),
                }
            }
            Expr::Binop { op, lhs, rhs, .. } => {
                // Short-circuit and/or.
                if *op == "and" {
                    return if self.eval(lhs, scope).as_bool() {
                        self.eval(rhs, scope)
                    } else {
                        Value::Bool(false)
                    };
                }
                if *op == "or" {
                    return if self.eval(lhs, scope).as_bool() {
                        Value::Bool(true)
                    } else {
                        self.eval(rhs, scope)
                    };
                }
                let l = self.eval(lhs, scope);
                let r = self.eval(rhs, scope);
                binop(op, l, r)
            }
            Expr::If {
                cond, then, els, ..
            } => {
                if self.eval(cond, scope).as_bool() {
                    self.eval(then, scope)
                } else {
                    self.eval(els, scope)
                }
            }
            Expr::Let {
                name, value, body, ..
            } => {
                let v = self.eval(value, scope);
                scope.bind(name.clone(), v);
                let out = self.eval(body, scope);
                scope.unbind(1);
                out
            }
            Expr::Case {
                scrutinee, arms, ..
            } => {
                let v = self.eval(scrutinee, scope);
                for (pat, body) in arms {
                    let mut n = 0;
                    if match_pat(pat, &v, scope, &mut n) {
                        let out = self.eval(body, scope);
                        scope.unbind(n);
                        return out;
                    }
                    scope.unbind(n);
                }
                panic!("case expression: no arm matched {v:?}")
            }
            Expr::ListLit(items, _) => Value::list(items.iter().map(|i| self.eval(i, scope))),
            Expr::TupleLit(items, _) => Value::tuple(items.iter().map(|i| self.eval(i, scope))),
            Expr::TreeCons { op, args, .. } => {
                Value::term(op.clone(), args.iter().map(|a| self.eval(a, scope)))
            }
        }
    }

    fn call(&self, name: &str, args: Vec<Value>) -> Value {
        match name {
            "to_real" => Value::Real(args[0].as_int() as f64),
            "to_int" => Value::Int(args[0].as_real() as i64),
            "abs" => Value::Int(args[0].as_int().abs()),
            "min" => Value::Int(args[0].as_int().min(args[1].as_int())),
            "max" => Value::Int(args[0].as_int().max(args[1].as_int())),
            "len" => Value::Int(args[0].as_list().len() as i64),
            "null" => Value::Bool(args[0].as_list().is_empty()),
            "hd" => args[0]
                .as_list()
                .first()
                .cloned()
                .unwrap_or_else(|| panic!("hd of empty list")),
            "tl" => Value::list(args[0].as_list().iter().skip(1).cloned()),
            "rev" => Value::list(args[0].as_list().iter().rev().cloned()),
            "empty_map" => Value::empty_map(),
            "size" => Value::Int(args[0].as_map().len() as i64),
            "insert" => args[0].map_insert(args[1].as_str(), args[2].clone()),
            "lookup" => args[0]
                .map_get(args[1].as_str())
                .cloned()
                .unwrap_or_else(|| panic!("lookup: unbound key {:?}", args[1].as_str())),
            "bound" => Value::Bool(args[0].map_get(args[1].as_str()).is_some()),
            "remove" => {
                let mut m = args[0].as_map().clone();
                m.remove(args[1].as_str());
                Value::Map(Rc::new(m))
            }
            "itoa" => Value::str(args[0].as_int().to_string()),
            "rtoa" => Value::str(format!("{}", args[0].as_real())),
            "strlen" => Value::Int(args[0].as_str().chars().count() as i64),
            "error" => panic!("OLGA error: {}", args[0].as_str()),
            _ => self.apply(name, args),
        }
    }
}

/// Collects references to constant names in `e` (for dependency ordering;
/// let/case binders may shadow, which only over-approximates the edges).
fn collect_const_refs<'a>(e: &Expr, env: &'a UnitEnv, out: &mut Vec<&'a String>) {
    match e {
        Expr::Var(n, _) => {
            if let Some((k, _)) = env.consts.get_key_value(n) {
                out.push(k);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_const_refs(a, env, out);
            }
        }
        Expr::Unop { expr, .. } => collect_const_refs(expr, env, out),
        Expr::Binop { lhs, rhs, .. } => {
            collect_const_refs(lhs, env, out);
            collect_const_refs(rhs, env, out);
        }
        Expr::If {
            cond, then, els, ..
        } => {
            collect_const_refs(cond, env, out);
            collect_const_refs(then, env, out);
            collect_const_refs(els, env, out);
        }
        Expr::Let { value, body, .. } => {
            collect_const_refs(value, env, out);
            collect_const_refs(body, env, out);
        }
        Expr::Case {
            scrutinee, arms, ..
        } => {
            collect_const_refs(scrutinee, env, out);
            for (_, b) in arms {
                collect_const_refs(b, env, out);
            }
        }
        Expr::ListLit(items, _) | Expr::TupleLit(items, _) => {
            for i in items {
                collect_const_refs(i, env, out);
            }
        }
        Expr::TreeCons { args, .. } => {
            for a in args {
                collect_const_refs(a, env, out);
            }
        }
        _ => {}
    }
}

/// Lexical runtime scope.
#[derive(Default, Debug)]
struct Scope {
    stack: Vec<(String, Value)>,
}

impl Scope {
    fn bind(&mut self, name: String, v: Value) {
        self.stack.push((name, v));
    }
    fn unbind(&mut self, n: usize) {
        self.stack.truncate(self.stack.len() - n);
    }
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.stack
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

fn binop(op: &str, l: Value, r: Value) -> Value {
    use Value::*;
    match (op, &l, &r) {
        ("+", Int(a), Int(b)) => Int(a + b),
        ("+", Real(a), Real(b)) => Real(a + b),
        ("+", Str(a), Str(b)) => Value::str(format!("{a}{b}")),
        ("-", Int(a), Int(b)) => Int(a - b),
        ("-", Real(a), Real(b)) => Real(a - b),
        ("*", Int(a), Int(b)) => Int(a * b),
        ("*", Real(a), Real(b)) => Real(a * b),
        ("/", Int(a), Int(b)) => Int(a / b),
        ("/", Real(a), Real(b)) => Real(a / b),
        ("%", Int(a), Int(b)) => Int(a % b),
        ("=", a, b) => Bool(a == b),
        ("<>", a, b) => Bool(a != b),
        ("<", a, b) => Bool(a.partial_cmp(b) == Some(std::cmp::Ordering::Less)),
        ("<=", a, b) => Bool(matches!(
            a.partial_cmp(b),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )),
        (">", a, b) => Bool(a.partial_cmp(b) == Some(std::cmp::Ordering::Greater)),
        (">=", a, b) => Bool(matches!(
            a.partial_cmp(b),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        )),
        ("::", _, List(items)) => {
            let mut v = Vec::with_capacity(items.len() + 1);
            v.push(l.clone());
            v.extend(items.iter().cloned());
            Value::list(v)
        }
        ("++", Str(a), Str(b)) => Value::str(format!("{a}{b}")),
        ("++", List(a), List(b)) => Value::list(a.iter().chain(b.iter()).cloned()),
        (op, l, r) => panic!("binop `{op}` on {l:?} and {r:?}"),
    }
}

/// Pattern match; pushes bindings into `scope` (caller pops `*pushed`).
fn match_pat(pat: &Pat, v: &Value, scope: &mut Scope, pushed: &mut usize) -> bool {
    match (pat, v) {
        (Pat::Wild(_), _) => true,
        (Pat::Bind(n, _), v) => {
            scope.bind(n.clone(), v.clone());
            *pushed += 1;
            true
        }
        (Pat::Int(i, _), Value::Int(j)) => i == j,
        (Pat::Bool(b, _), Value::Bool(c)) => b == c,
        (Pat::Str(s, _), Value::Str(t)) => s.as_str() == &**t,
        (Pat::Nil(_), Value::List(items)) => items.is_empty(),
        (Pat::Cons(h, t, _), Value::List(items)) => {
            if items.is_empty() {
                return false;
            }
            match_pat(h, &items[0], scope, pushed)
                && match_pat(t, &Value::list(items[1..].iter().cloned()), scope, pushed)
        }
        (Pat::Tuple(ps, _), Value::Tuple(items)) => {
            ps.len() == items.len()
                && ps
                    .iter()
                    .zip(items.iter())
                    .all(|(p, v)| match_pat(p, v, scope, pushed))
        }
        (Pat::Term { op, args, .. }, Value::Term(t)) => {
            op == &t.op
                && args.len() == t.children.len()
                && args
                    .iter()
                    .zip(&t.children)
                    .all(|(p, v)| match_pat(p, v, scope, pushed))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Unit;
    use crate::check::Compiler;
    use crate::parser::parse_unit;

    use super::*;

    fn ctx_for(src: &str) -> EvalCtx {
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!("expected module")
        };
        let mut c = Compiler::new();
        c.add_module(m.clone()).unwrap();
        EvalCtx::new(&c.module(&m.name).unwrap().env)
    }

    #[test]
    fn arithmetic_and_recursion() {
        let ctx = ctx_for(
            r#"
            module m;
              function fact(n : int) : int = if n <= 1 then 1 else n * fact(n - 1) end;
              function fib(n : int) : int =
                if n < 2 then n else fib(n - 1) + fib(n - 2) end;
            end
            "#,
        );
        assert_eq!(ctx.apply("fact", vec![Value::Int(6)]), Value::Int(720));
        assert_eq!(ctx.apply("fib", vec![Value::Int(10)]), Value::Int(55));
    }

    #[test]
    fn lists_and_patterns() {
        let ctx = ctx_for(
            r#"
            module m;
              function suml(l : list of int) : int =
                case l of [] => 0 | x :: r => x + suml(r) end;
              function second(l : list of int) : int =
                case l of _ :: y :: _ => y | _ => -1 end;
            end
            "#,
        );
        let l = Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(ctx.apply("suml", vec![l.clone()]), Value::Int(6));
        assert_eq!(ctx.apply("second", vec![l]), Value::Int(2));
        assert_eq!(
            ctx.apply("second", vec![Value::list([Value::Int(9)])]),
            Value::Int(-1)
        );
    }

    #[test]
    fn maps_and_strings() {
        let ctx = ctx_for(
            r#"
            module m;
              function note(e : map of string, k : string, v : string) : map of string =
                insert(e, k, v);
              function get(e : map of string, k : string) : string =
                if bound(e, k) then lookup(e, k) else "?" end;
              const greeting : string = "hi " ++ "there";
            end
            "#,
        );
        let m0 = Value::empty_map();
        let m1 = ctx.apply("note", vec![m0, Value::str("a"), Value::str("1")]);
        assert_eq!(
            ctx.apply("get", vec![m1.clone(), Value::str("a")]),
            Value::str("1")
        );
        assert_eq!(ctx.apply("get", vec![m1, Value::str("b")]), Value::str("?"));
        assert_eq!(
            ctx.eval_closed(&crate::ast::Expr::Var(
                "greeting".into(),
                crate::lexer::Pos { line: 0, col: 0 }
            )),
            Value::str("hi there")
        );
    }

    #[test]
    fn trees_and_term_patterns() {
        let ctx = ctx_for(
            r#"
            module m;
              function mk(n : int) : tree = @leaf(n);
              function depth(t : tree) : int =
                case t of @leaf(_) => 1 | @fork(a, b) => 1 + max(depth(a), depth(b)) end;
              function grow(n : int) : tree =
                if n = 0 then @leaf(0) else @fork(grow(n - 1), @leaf(n)) end;
            end
            "#,
        );
        let t = ctx.apply("grow", vec![Value::Int(3)]);
        assert_eq!(ctx.apply("depth", vec![t]), Value::Int(4));
    }

    #[test]
    fn consts_depending_on_consts() {
        let ctx = ctx_for(
            r#"
            module m;
              const b : int = a + 1;
              const a : int = 41;
            end
            "#,
        );
        assert_eq!(
            ctx.eval_closed(&crate::ast::Expr::Var(
                "b".into(),
                crate::lexer::Pos { line: 0, col: 0 }
            )),
            Value::Int(42)
        );
    }

    #[test]
    #[should_panic(expected = "OLGA error: boom")]
    fn error_builtin_panics() {
        let ctx = ctx_for("module m; function f(x : int) : int = error(\"boom\"); end");
        ctx.apply("f", vec![Value::Int(0)]);
    }

    #[test]
    fn short_circuit() {
        let ctx = ctx_for(
            r#"
            module m;
              function safe(l : list of int) : bool =
                not null(l) and hd(l) > 0;
            end
            "#,
        );
        assert_eq!(
            ctx.apply("safe", vec![Value::list([])]),
            Value::Bool(false),
            "hd must not run on the empty list"
        );
    }
}
