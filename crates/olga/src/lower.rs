//! Lowering a checked OLGA attribute grammar to the abstract AG of
//! `fnc2-ag`.
//!
//! This is the front-end/generator interface of the paper (Figure 2): the
//! OLGA front-end "is responsible for constructing the *abstract AG* to be
//! input to the evaluator generator". Semantic-rule expressions become
//! registered semantic functions (closures over the interpreter); rules
//! that are plain occurrence references stay **copy rules** so the space
//! optimizer can see and eliminate them; and "most copy rules … are
//! automatically generated and need not be specified explicitly" (§2.4):
//! a missing inherited occurrence copies the same-named LHS attribute, and
//! a missing LHS synthesized attribute copies the unique same-named child
//! attribute.

use std::collections::{HashMap, HashSet};
use std::fmt;

use fnc2_ag::{Arg, AttrId, Grammar, GrammarBuilder, LocalId, ONode, Occ, PhylumId, ProductionId};

use crate::ast::{Expr, Pat, RuleTarget};
use crate::check::{CheckedAg, OpCtx};
use crate::eval::{EvalAbort, EvalCtx};
use crate::lexer::Pos;

/// Lowering errors: semantic errors surfaced late (well-definedness) keep
/// their grammar-level description.
#[derive(Debug)]
pub enum LowerError {
    /// A single well-definedness failure (missing/duplicate rules after
    /// auto-copy).
    Grammar(fnc2_ag::GrammarError),
    /// Two or more well-definedness failures. Historically the lowering
    /// collapsed these to the first; they are now all surfaced so the
    /// diagnostic pass can report every violation at once.
    Grammars(Vec<fnc2_ag::GrammarError>),
    /// Constant evaluation aborted while building the interpreter context
    /// (a circular constant definition or a failing constant body).
    Eval(EvalAbort),
    /// An occurrence failed to re-resolve (internal; the checker already
    /// validated it).
    Internal(String, Pos),
}

impl LowerError {
    /// The well-definedness violations carried by this error, if any.
    pub fn grammar_errors(&self) -> &[fnc2_ag::GrammarError] {
        match self {
            LowerError::Grammar(e) => std::slice::from_ref(e),
            LowerError::Grammars(v) => v,
            _ => &[],
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Grammar(e) => write!(f, "{e}"),
            LowerError::Grammars(v) => {
                write!(f, "{} well-definedness violations:", v.len())?;
                for e in v {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            LowerError::Eval(e) => write!(f, "constant evaluation failed: {e}"),
            LowerError::Internal(m, p) => write!(f, "{p}: internal lowering error: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<fnc2_ag::GrammarError> for LowerError {
    fn from(e: fnc2_ag::GrammarError) -> Self {
        LowerError::Grammar(e)
    }
}

impl From<Vec<fnc2_ag::GrammarError>> for LowerError {
    fn from(mut v: Vec<fnc2_ag::GrammarError>) -> Self {
        if v.len() == 1 {
            LowerError::Grammar(v.remove(0))
        } else {
            LowerError::Grammars(v)
        }
    }
}

/// Statistics of one lowering (feeds Table 1's rule counts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerInfo {
    /// Copy rules written explicitly in the OLGA text.
    pub explicit_copies: usize,
    /// Copy rules generated automatically.
    pub auto_copies: usize,
    /// Non-copy rules (registered semantic functions).
    pub computed_rules: usize,
}

/// Lowers a checked AG to an executable [`Grammar`].
///
/// # Errors
///
/// Fails if, even after automatic copy-rule generation, some output
/// occurrence has no rule (or any other well-definedness violation).
pub fn lower(checked: &CheckedAg) -> Result<(Grammar, LowerInfo), LowerError> {
    let ag = &checked.ast;
    let ctx = EvalCtx::new(&checked.env).map_err(LowerError::Eval)?;
    let mut b = GrammarBuilder::new(ag.name.clone());
    let mut info = LowerInfo::default();

    // Phyla.
    let mut phylum_ids: HashMap<&str, PhylumId> = HashMap::new();
    for p in &ag.phyla {
        phylum_ids.insert(p, b.phylum(p.clone()));
    }
    if let Some(root) = &ag.root {
        b.set_root(phylum_ids[root.as_str()]);
    }

    // Attributes, in declaration order per phylum.
    let mut attr_ids: HashMap<(&str, &str), AttrId> = HashMap::new();
    for a in &ag.attrs {
        for p in &a.phyla {
            let id = if a.synthesized {
                b.syn(phylum_ids[p.as_str()], a.name.clone())
            } else {
                b.inh(phylum_ids[p.as_str()], a.name.clone())
            };
            attr_ids.insert((p, &a.name), id);
        }
    }

    // Productions.
    let mut prod_ids: HashMap<&str, ProductionId> = HashMap::new();
    for op in &ag.operators {
        let rhs: Vec<PhylumId> = op.rhs.iter().map(|r| phylum_ids[r.as_str()]).collect();
        let id = b.production(op.name.clone(), phylum_ids[op.lhs.as_str()], &rhs);
        prod_ids.insert(&op.name, id);
    }

    // Rules per production, across phases.
    let mut defined: HashMap<ProductionId, HashSet<ONode>> = HashMap::new();
    for op in &ag.operators {
        let pid = prod_ids[op.name.as_str()];
        let octx = OpCtx::new(op, &checked.attr_table);
        // Locals from every block of this operator.
        let mut local_ids: HashMap<&str, LocalId> = HashMap::new();
        for phase in &ag.phases {
            for block in phase.blocks.iter().filter(|bl| bl.operator == op.name) {
                for l in &block.locals {
                    let id = b.local(pid, l.name.clone());
                    local_ids.insert(&l.name, id);
                }
            }
        }
        let resolve_occ = |o: &crate::ast::OccRef| -> Result<ONode, LowerError> {
            let (pos, _, _) = octx.resolve(o).map_err(|e| {
                LowerError::Internal(format!("occurrence failed to re-resolve: {e}"), o.pos)
            })?;
            let ph = if pos == 0 {
                &op.lhs
            } else {
                &op.rhs[pos as usize - 1]
            };
            let id = attr_ids
                .get(&(ph.as_str(), o.attr.as_str()))
                .copied()
                .ok_or_else(|| {
                    LowerError::Internal(
                        format!("attribute `{}` is not declared of phylum `{ph}`", o.attr),
                        o.pos,
                    )
                })?;
            Ok(ONode::Attr(Occ::new(pos, id)))
        };

        for phase in &ag.phases {
            for block in phase.blocks.iter().filter(|bl| bl.operator == op.name) {
                // Local definitions are rules targeting locals.
                for l in &block.locals {
                    let target = ONode::Local(local_ids[l.name.as_str()]);
                    add_rule(
                        &mut b,
                        pid,
                        target,
                        &l.body,
                        &resolve_occ,
                        &local_ids,
                        &ctx,
                        &mut info,
                    )?;
                    defined.entry(pid).or_default().insert(target);
                }
                for rule in &block.rules {
                    let target = match &rule.target {
                        RuleTarget::Occ(o) => resolve_occ(o)?,
                        RuleTarget::Local(name, _) => ONode::Local(local_ids[name.as_str()]),
                    };
                    add_rule(
                        &mut b,
                        pid,
                        target,
                        &rule.body,
                        &resolve_occ,
                        &local_ids,
                        &ctx,
                        &mut info,
                    )?;
                    defined.entry(pid).or_default().insert(target);
                }
            }
        }
    }

    // Rule-model instantiation (paper §2.4 / [35]): threading pairs and
    // collection classes fill missing outputs before the generic copy
    // rules.
    for op in &ag.operators {
        let pid = prod_ids[op.name.as_str()];
        let table = &checked.attr_table.attrs;
        // --- threading: base_in snakes through the carrying children ---
        for t in &checked.threads {
            let inn = format!("{}_in", t.base);
            let outn = format!("{}_out", t.base);
            let lhs_carries = t.phyla.contains(&op.lhs);
            // Positions of carrying children, left to right.
            let carriers: Vec<(u16, &String)> = op
                .rhs
                .iter()
                .enumerate()
                .filter(|(_, ph)| t.phyla.contains(ph))
                .map(|(j, ph)| ((j + 1) as u16, ph))
                .collect();
            // Source of the incoming state at each point.
            let mut prev: Option<(u16, &String)> = None;
            for &(pos, ph) in &carriers {
                let target = ONode::Attr(Occ::new(pos, attr_ids[&(ph.as_str(), inn.as_str())]));
                let have = defined.entry(pid).or_default();
                if !have.contains(&target) {
                    let src = match prev {
                        Some((ppos, pph)) => {
                            Occ::new(ppos, attr_ids[&(pph.as_str(), outn.as_str())])
                        }
                        None if lhs_carries => {
                            Occ::new(0, attr_ids[&(op.lhs.as_str(), inn.as_str())])
                        }
                        None => continue, // no upstream state: leave missing
                    };
                    b.copy(pid, target, src);
                    info.auto_copies += 1;
                    defined.entry(pid).or_default().insert(target);
                }
                prev = Some((pos, ph));
            }
            // Outgoing state of the LHS.
            if lhs_carries {
                let target = ONode::Attr(Occ::new(0, attr_ids[&(op.lhs.as_str(), outn.as_str())]));
                let have = defined.entry(pid).or_default();
                if !have.contains(&target) {
                    let src = match prev {
                        Some((ppos, pph)) => {
                            Occ::new(ppos, attr_ids[&(pph.as_str(), outn.as_str())])
                        }
                        None => Occ::new(0, attr_ids[&(op.lhs.as_str(), inn.as_str())]),
                    };
                    b.copy(pid, target, src);
                    info.auto_copies += 1;
                    defined.entry(pid).or_default().insert(target);
                }
            }
        }
        // --- collection classes: concat / sum over carrying children ---
        for (aname, class) in &checked.classes {
            let Some((true, ty)) = table[&op.lhs].get(aname) else {
                continue;
            };
            let target = ONode::Attr(Occ::new(0, attr_ids[&(op.lhs.as_str(), aname.as_str())]));
            if defined.entry(pid).or_default().contains(&target) {
                continue;
            }
            let carriers: Vec<Arg> = op
                .rhs
                .iter()
                .enumerate()
                .filter(|(_, ph)| matches!(table[ph.as_str()].get(aname), Some((true, _))))
                .map(|(j, ph)| {
                    Arg::from(Occ::new(
                        (j + 1) as u16,
                        attr_ids[&(ph.as_str(), aname.as_str())],
                    ))
                })
                .collect();
            let is_str = matches!(ty, crate::types::Ty::Str);
            match (carriers.as_slice(), class) {
                ([], crate::ast::AttrClass::Concat) => {
                    let empty = if is_str {
                        fnc2_ag::Value::str("")
                    } else {
                        fnc2_ag::Value::list([])
                    };
                    b.constant(pid, target, empty);
                    info.computed_rules += 1;
                }
                ([], crate::ast::AttrClass::Sum) => {
                    b.constant(pid, target, fnc2_ag::Value::Int(0));
                    info.computed_rules += 1;
                }
                ([one], _) => {
                    b.copy(pid, target, one.clone());
                    info.auto_copies += 1;
                }
                (many, cls) => {
                    let n = many.len();
                    let fname = format!("model@{cls:?}@{n}@{}@{aname}", op.name);
                    let summing = matches!(cls, crate::ast::AttrClass::Sum);
                    b.func(fname.clone(), n, move |vals: &[fnc2_ag::Value]| {
                        if summing {
                            fnc2_ag::Value::Int(vals.iter().map(|v| v.as_int()).sum())
                        } else if matches!(vals[0], fnc2_ag::Value::Str(_)) {
                            fnc2_ag::Value::str(vals.iter().map(|v| v.as_str()).collect::<String>())
                        } else {
                            fnc2_ag::Value::list(vals.iter().flat_map(|v| v.as_list().to_vec()))
                        }
                    });
                    b.call(pid, target, &fname, many.to_vec());
                    info.computed_rules += 1;
                }
            }
            defined.entry(pid).or_default().insert(target);
        }
    }

    // Automatic copy rules for missing output occurrences.
    for op in &ag.operators {
        let pid = prod_ids[op.name.as_str()];
        let have = defined.entry(pid).or_default().clone();
        let table = &checked.attr_table.attrs;
        // RHS inherited occurrences.
        for (j, rhs_ph) in op.rhs.iter().enumerate() {
            let pos = (j + 1) as u16;
            for (aname, (syn, ty)) in &table[rhs_ph] {
                if *syn {
                    continue;
                }
                let node = ONode::Attr(Occ::new(pos, attr_ids[&(rhs_ph.as_str(), aname.as_str())]));
                if have.contains(&node) {
                    continue;
                }
                // Same-named inherited attribute on the LHS?
                if let Some((false, lty)) = table[&op.lhs].get(aname) {
                    if lty.compatible(ty) {
                        let src = Occ::new(0, attr_ids[&(op.lhs.as_str(), aname.as_str())]);
                        b.copy(pid, node, src);
                        info.auto_copies += 1;
                    }
                }
            }
        }
        // LHS synthesized occurrences.
        for (aname, (syn, ty)) in &table[&op.lhs] {
            if !*syn {
                continue;
            }
            let node = ONode::Attr(Occ::new(0, attr_ids[&(op.lhs.as_str(), aname.as_str())]));
            if have.contains(&node) {
                continue;
            }
            let candidates: Vec<u16> = op
                .rhs
                .iter()
                .enumerate()
                .filter(|(_, ph)| {
                    matches!(table[ph.as_str()].get(aname), Some((true, cty)) if cty.compatible(ty))
                })
                .map(|(j, _)| (j + 1) as u16)
                .collect();
            if let [only] = candidates[..] {
                let ph = &op.rhs[only as usize - 1];
                let src = Occ::new(only, attr_ids[&(ph.as_str(), aname.as_str())]);
                b.copy(pid, node, src);
                info.auto_copies += 1;
            }
        }
    }

    let grammar = b.finish_verbose()?;
    Ok((grammar, info))
}

/// Adds one rule: plain occurrence bodies become copy rules, literals
/// become constants, everything else becomes a registered closure over the
/// interpreter.
#[allow(clippy::too_many_arguments)]
fn add_rule(
    b: &mut GrammarBuilder,
    pid: ProductionId,
    target: ONode,
    body: &Expr,
    resolve_occ: &dyn Fn(&crate::ast::OccRef) -> Result<ONode, LowerError>,
    local_ids: &HashMap<&str, LocalId>,
    ctx: &EvalCtx,
    info: &mut LowerInfo,
) -> Result<(), LowerError> {
    // Literal constants.
    match body {
        Expr::Int(i, _) => {
            b.constant(pid, target, fnc2_ag::Value::Int(*i));
            info.computed_rules += 1;
            return Ok(());
        }
        Expr::Real(r, _) => {
            b.constant(pid, target, fnc2_ag::Value::Real(*r));
            info.computed_rules += 1;
            return Ok(());
        }
        Expr::Bool(v, _) => {
            b.constant(pid, target, fnc2_ag::Value::Bool(*v));
            info.computed_rules += 1;
            return Ok(());
        }
        Expr::Str(s, _) => {
            b.constant(pid, target, fnc2_ag::Value::str(s));
            info.computed_rules += 1;
            return Ok(());
        }
        _ => {}
    }

    // Extract occurrence/local/token references into argument slots.
    let mut args: Vec<Arg> = Vec::new();
    let mut keys: Vec<ArgKey> = Vec::new();
    let mut bound: Vec<String> = Vec::new();
    let transformed = extract(
        body,
        resolve_occ,
        local_ids,
        &mut args,
        &mut keys,
        &mut bound,
    )?;

    // A bare occurrence/local/token reference is a copy rule.
    if args.len() == 1 {
        if let Expr::Var(v, _) = &transformed {
            if v == "$0" {
                b.copy(pid, target, args.remove(0));
                info.explicit_copies += 1;
                return Ok(());
            }
        }
    }

    let fname = format!("rule@{pid}@{target:?}");
    let ctx = ctx.clone();
    let arity = args.len();
    b.func_fallible(fname.clone(), arity, move |vals: &[fnc2_ag::Value]| {
        let bindings: Vec<(String, fnc2_ag::Value)> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("${i}"), v.clone()))
            .collect();
        ctx.eval_with(&transformed, &bindings)
            .map_err(|e| fnc2_ag::SemError::new(e.to_string()))
    });
    b.call(pid, target, &fname, args);
    info.computed_rules += 1;
    Ok(())
}

/// Identity of an extracted argument, for deduplication.
#[derive(Clone, PartialEq, Eq, Debug)]
enum ArgKey {
    Node(ONode),
    Token,
}

/// Rewrites occurrence references, production-local references, and
/// `token()` calls into `$k` variables, collecting the argument list.
fn extract(
    e: &Expr,
    resolve_occ: &dyn Fn(&crate::ast::OccRef) -> Result<ONode, LowerError>,
    local_ids: &HashMap<&str, LocalId>,
    args: &mut Vec<Arg>,
    keys: &mut Vec<ArgKey>,
    bound: &mut Vec<String>,
) -> Result<Expr, LowerError> {
    let slot = |key: ArgKey, args: &mut Vec<Arg>, keys: &mut Vec<ArgKey>| -> Expr {
        let i = match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                keys.push(key.clone());
                args.push(match key {
                    ArgKey::Node(n) => Arg::Node(n),
                    ArgKey::Token => Arg::Token,
                });
                keys.len() - 1
            }
        };
        Expr::Var(format!("${i}"), Pos { line: 0, col: 0 })
    };
    Ok(match e {
        Expr::Occ(o) => slot(ArgKey::Node(resolve_occ(o)?), args, keys),
        Expr::Var(n, p) => {
            if !bound.contains(n) {
                if let Some(&l) = local_ids.get(n.as_str()) {
                    return Ok(slot(ArgKey::Node(ONode::Local(l)), args, keys));
                }
            }
            Expr::Var(n.clone(), *p)
        }
        Expr::Call {
            name,
            args: cargs,
            pos: _,
        } if name == "token" && cargs.is_empty() => slot(ArgKey::Token, args, keys),
        Expr::Call {
            name,
            args: cargs,
            pos,
        } => Expr::Call {
            name: name.clone(),
            args: cargs
                .iter()
                .map(|a| extract(a, resolve_occ, local_ids, args, keys, bound))
                .collect::<Result<_, _>>()?,
            pos: *pos,
        },
        Expr::Unop { op, expr, pos } => Expr::Unop {
            op,
            expr: Box::new(extract(expr, resolve_occ, local_ids, args, keys, bound)?),
            pos: *pos,
        },
        Expr::Binop { op, lhs, rhs, pos } => Expr::Binop {
            op,
            lhs: Box::new(extract(lhs, resolve_occ, local_ids, args, keys, bound)?),
            rhs: Box::new(extract(rhs, resolve_occ, local_ids, args, keys, bound)?),
            pos: *pos,
        },
        Expr::If {
            cond,
            then,
            els,
            pos,
        } => Expr::If {
            cond: Box::new(extract(cond, resolve_occ, local_ids, args, keys, bound)?),
            then: Box::new(extract(then, resolve_occ, local_ids, args, keys, bound)?),
            els: Box::new(extract(els, resolve_occ, local_ids, args, keys, bound)?),
            pos: *pos,
        },
        Expr::Let {
            name,
            value,
            body,
            pos,
        } => {
            let value = Box::new(extract(value, resolve_occ, local_ids, args, keys, bound)?);
            bound.push(name.clone());
            let body = extract(body, resolve_occ, local_ids, args, keys, bound);
            bound.pop();
            Expr::Let {
                name: name.clone(),
                value,
                body: Box::new(body?),
                pos: *pos,
            }
        }
        Expr::Case {
            scrutinee,
            arms,
            pos,
        } => {
            let scrutinee = Box::new(extract(
                scrutinee,
                resolve_occ,
                local_ids,
                args,
                keys,
                bound,
            )?);
            let arms = arms
                .iter()
                .map(|(p, b)| {
                    let binders: Vec<String> = p.binders().into_iter().map(String::from).collect();
                    let n = binders.len();
                    bound.extend(binders);
                    let b = extract(b, resolve_occ, local_ids, args, keys, bound);
                    bound.truncate(bound.len() - n);
                    Ok((clone_pat(p), b?))
                })
                .collect::<Result<_, LowerError>>()?;
            Expr::Case {
                scrutinee,
                arms,
                pos: *pos,
            }
        }
        Expr::ListLit(items, pos) => Expr::ListLit(
            items
                .iter()
                .map(|i| extract(i, resolve_occ, local_ids, args, keys, bound))
                .collect::<Result<_, _>>()?,
            *pos,
        ),
        Expr::TupleLit(items, pos) => Expr::TupleLit(
            items
                .iter()
                .map(|i| extract(i, resolve_occ, local_ids, args, keys, bound))
                .collect::<Result<_, _>>()?,
            *pos,
        ),
        Expr::TreeCons {
            op,
            args: targs,
            pos,
        } => Expr::TreeCons {
            op: op.clone(),
            args: targs
                .iter()
                .map(|a| extract(a, resolve_occ, local_ids, args, keys, bound))
                .collect::<Result<_, _>>()?,
            pos: *pos,
        },
        other => other.clone(),
    })
}

fn clone_pat(p: &Pat) -> Pat {
    p.clone()
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{TreeBuilder, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

    use crate::ast::Unit;
    use crate::check::Compiler;
    use crate::parser::parse_unit;

    use super::*;

    fn lower_src(src: &str) -> (Grammar, LowerInfo) {
        lower(&check_src(src)).unwrap()
    }

    fn check_src(src: &str) -> CheckedAg {
        let Unit::Ag(ag) = parse_unit(src).unwrap() else {
            panic!("expected AG")
        };
        Compiler::new().check_ag(ag).unwrap()
    }

    /// Regression for the diagnostics audit: lowering used to collapse
    /// several well-definedness violations into the first one. Two
    /// missing-rule occurrences (no auto-copy candidate for either) must
    /// both be reported.
    #[test]
    fn lowering_reports_every_well_definedness_violation() {
        let err = lower(&check_src(
            r#"
            attribute grammar bad;
              phylum S;
              operator leaf : S ::= ;
              synthesized a : int of S;
              synthesized b : int of S;
            end
            "#,
        ))
        .unwrap_err();
        let grammar_errs = err.grammar_errors();
        assert_eq!(grammar_errs.len(), 2, "{err}");
        assert!(matches!(err, LowerError::Grammars(_)));
        let msg = err.to_string();
        assert!(msg.contains("S.a"), "{msg}");
        assert!(msg.contains("S.b"), "{msg}");
    }

    /// A single violation keeps the historical single-error shape.
    #[test]
    fn single_violation_stays_singular() {
        let err = lower(&check_src(
            r#"
            attribute grammar bad;
              phylum S;
              operator leaf : S ::= ;
              synthesized a : int of S;
            end
            "#,
        ))
        .unwrap_err();
        assert!(matches!(err, LowerError::Grammar(_)), "{err}");
        assert_eq!(err.grammar_errors().len(), 1);
    }

    #[test]
    fn binary_numbers_end_to_end() {
        let (g, info) = lower_src(
            r#"
            attribute grammar binary;
              phylum Number, Seq, Bit;
              root Number;
              operator number : Number ::= Seq;
              operator pair   : Seq ::= Seq Bit;
              operator single : Seq ::= Bit;
              operator zero   : Bit ::= ;
              operator one    : Bit ::= ;
              synthesized value : real of Number, Seq, Bit;
              synthesized length : int of Seq;
              inherited scale : int of Seq, Bit;
              function pow2(n : int) : real =
                if n = 0 then 1.0 else 2.0 * pow2(n - 1) end;
              for number { Seq.scale := 0; }
              for pair {
                Seq$1.value := Seq$2.value + Bit.value;
                Seq$1.length := Seq$2.length + 1;
                Seq$2.scale := Seq$1.scale + 1;
              }
              for single { Seq.length := 1; }
              for zero { Bit.value := 0.0; }
              for one  { Bit.value := pow2(Bit.scale); }
            end
            "#,
        );
        // Auto-copies: number.value (unique child), pair.Bit.scale (same
        // name on LHS), single.value, single.Bit.scale.
        assert_eq!(info.auto_copies, 4, "{info:?}");
        assert_eq!(g.production_count(), 5);

        // Evaluate "1101" = 13.
        let snc = snc_test(&g);
        assert!(snc.is_snc());
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let mut tb = TreeBuilder::new(&g);
        let mut seq = {
            let b = tb.op("one", &[]).unwrap();
            tb.op("single", &[b]).unwrap()
        };
        for c in "101".chars() {
            let b = tb.op(if c == '1' { "one" } else { "zero" }, &[]).unwrap();
            seq = tb.op("pair", &[seq, b]).unwrap();
        }
        let root = tb.op("number", &[seq]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        let (vals, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let number = g.phylum_by_name("Number").unwrap();
        let value = g.attr_by_name(number, "value").unwrap();
        assert_eq!(vals.get(&g, tree.root(), value), Some(&Value::Real(13.0)));
    }

    #[test]
    fn explicit_copies_stay_copies() {
        let (g, info) = lower_src(
            r#"
            attribute grammar t;
              phylum S, A;
              operator mk : S ::= A;
              operator leaf : A ::= ;
              synthesized v : int of S, A;
              for mk { S.v := A.v; }
              for leaf { A.v := 7; }
            end
            "#,
        );
        assert_eq!(info.explicit_copies, 1);
        assert_eq!(g.copy_rule_count(), 1);
    }

    #[test]
    fn locals_lower_to_local_attributes() {
        let (g, _) = lower_src(
            r#"
            attribute grammar t;
              phylum S;
              operator leaf : S ::= ;
              synthesized v : int of S;
              for leaf {
                local t : int := 20 + 1;
                S.v := t * 2;
              }
            end
            "#,
        );
        let leaf = g.production_by_name("leaf").unwrap();
        assert_eq!(g.production(leaf).locals().len(), 1);
        // Evaluate.
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let mut tb = TreeBuilder::new(&g);
        let n = tb.op("leaf", &[]).unwrap();
        let tree = tb.finish_root(n).unwrap();
        let (vals, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let v = g.attr_by_name(s, "v").unwrap();
        assert_eq!(vals.get(&g, tree.root(), v), Some(&Value::Int(42)));
    }

    #[test]
    fn token_rules_read_the_lexeme() {
        let (g, _) = lower_src(
            r#"
            attribute grammar t;
              phylum S;
              operator leaf : S ::= ;
              synthesized v : int of S;
              for leaf { S.v := token(); }
            end
            "#,
        );
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let mut tb = TreeBuilder::new(&g);
        let leaf = g.production_by_name("leaf").unwrap();
        let n = tb.node_with_token(leaf, &[], Some(Value::Int(5))).unwrap();
        let tree = tb.finish_root(n).unwrap();
        let (vals, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let v = g.attr_by_name(s, "v").unwrap();
        assert_eq!(vals.get(&g, tree.root(), v), Some(&Value::Int(5)));
    }

    #[test]
    fn missing_rule_reported_after_autocopy() {
        let Unit::Ag(ag) = parse_unit(
            r#"
            attribute grammar t;
              phylum S, A;
              operator mk : S ::= A;
              operator leaf : A ::= ;
              synthesized v : int of S;
              synthesized w : int of A;
              for leaf { A.w := 1; }
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        let checked = Compiler::new().check_ag(ag).unwrap();
        let err = lower(&checked).unwrap_err();
        // S.v has no rule and no same-named child attribute.
        assert!(err.to_string().contains("S.v"), "{err}");
    }

    #[test]
    fn stale_rule_target_is_diagnosed_not_panicked() {
        let Unit::Ag(ag) = parse_unit(
            r#"
            attribute grammar t;
              phylum S, A;
              operator mk : S ::= A;
              operator leaf : A ::= ;
              synthesized v : int of S, A;
              for mk { S.v := A.v; }
              for leaf { A.v := 7; }
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        let mut checked = Compiler::new().check_ag(ag).unwrap();
        // Corrupt a rule target *after* checking: lowering must surface an
        // internal diagnostic instead of panicking on the stale occurrence.
        for phase in &mut checked.ast.phases {
            for block in &mut phase.blocks {
                for rule in &mut block.rules {
                    if let RuleTarget::Occ(o) = &mut rule.target {
                        o.attr = "no_such_attr".to_string();
                    }
                }
            }
        }
        let err = lower(&checked).unwrap_err();
        assert!(matches!(err, LowerError::Internal(..)), "{err}");
        assert!(err.to_string().contains("internal lowering error"), "{err}");
    }

    #[test]
    fn stale_body_occurrence_is_diagnosed_not_panicked() {
        let Unit::Ag(ag) = parse_unit(
            r#"
            attribute grammar t;
              phylum S, A;
              operator mk : S ::= A;
              operator leaf : A ::= ;
              synthesized v : int of S, A;
              for mk { S.v := A.v + 1; }
              for leaf { A.v := 7; }
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        let mut checked = Compiler::new().check_ag(ag).unwrap();
        // Corrupt an occurrence inside a rule *body* to exercise the
        // extraction path.
        for phase in &mut checked.ast.phases {
            for block in &mut phase.blocks {
                for rule in &mut block.rules {
                    if let Expr::Binop { lhs, .. } = &mut rule.body {
                        if let Expr::Occ(o) = lhs.as_mut() {
                            o.attr = "no_such_attr".to_string();
                        }
                    }
                }
            }
        }
        let err = lower(&checked).unwrap_err();
        assert!(matches!(err, LowerError::Internal(..)), "{err}");
    }

    #[test]
    fn shadowed_locals_are_not_extracted() {
        let (g, _) = lower_src(
            r#"
            attribute grammar t;
              phylum S;
              operator leaf : S ::= ;
              synthesized v : int of S;
              for leaf {
                local x : int := 10;
                S.v := let x = 2 in x + x end + x;
              }
            end
            "#,
        );
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let mut tb = TreeBuilder::new(&g);
        let n = tb.op("leaf", &[]).unwrap();
        let tree = tb.finish_root(n).unwrap();
        let (vals, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let v = g.attr_by_name(s, "v").unwrap();
        // let-bound x = 2 (2+2) plus local x = 10 → 14.
        assert_eq!(vals.get(&g, tree.root(), v), Some(&Value::Int(14)));
    }
}
