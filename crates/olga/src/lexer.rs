//! The OLGA lexer.
//!
//! OLGA is FNC-2's specially designed AG-description language (paper §2.4).
//! This reproduction implements a faithful subset: strongly typed,
//! purely applicative, block-structured, with modules, attribute grammars
//! as tree-to-tree mappings, pattern matching and automatic copy rules.
//! Comments run from `--` to end of line.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (unescaped).
    Str(String),
    /// A reserved word of the OLGA subset.
    Kw(&'static str),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Real(r) => write!(f, "real `{r}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// The reserved words of the OLGA subset.
pub const KEYWORDS: &[&str] = &[
    "module",
    "end",
    "attribute",
    "grammar",
    "phylum",
    "root",
    "operator",
    "synthesized",
    "inherited",
    "of",
    "phase",
    "for",
    "local",
    "function",
    "const",
    "type",
    "import",
    "from",
    "export",
    "opaque",
    "if",
    "then",
    "else",
    "let",
    "in",
    "case",
    "and",
    "or",
    "not",
    "true",
    "threaded",
    "with",
    "false",
    "int",
    "real",
    "bool",
    "string",
    "unit",
    "list",
    "map",
    "tree",
    "tuple",
];

/// Multi-character punctuation, longest first.
const PUNCTS: &[&str] = &[
    "::=", ":=", "=>", "<>", "<=", ">=", "::", "++", "(", ")", "{", "}", "[", "]", ",", ";", ":",
    ".", "$", "@", "+", "-", "*", "/", "%", "=", "<", ">", "|", "_",
];

/// A lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: lexical error: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`.
///
/// # Errors
///
/// Fails on unterminated strings, malformed numbers, or stray characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let n = bytes.len();

    let advance = |c: char, line: &mut u32, col: &mut u32| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < n {
        let c = bytes[i];
        let pos = Pos { line, col };
        // Whitespace.
        if c.is_whitespace() {
            advance(c, &mut line, &mut col);
            i += 1;
            continue;
        }
        // Comment: -- to end of line.
        if c == '-' && i + 1 < n && bytes[i + 1] == '-' {
            while i < n && bytes[i] != '\n' {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            let tok = match KEYWORDS.iter().find(|&&k| k == word) {
                Some(&k) => Tok::Kw(k),
                None => Tok::Ident(word),
            };
            out.push(Token { tok, pos });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && bytes[i].is_ascii_digit() {
                advance(bytes[i], &mut line, &mut col);
                i += 1;
            }
            let mut is_real = false;
            if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                is_real = true;
                advance('.', &mut line, &mut col);
                i += 1;
                while i < n && bytes[i].is_ascii_digit() {
                    advance(bytes[i], &mut line, &mut col);
                    i += 1;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            let tok = if is_real {
                Tok::Real(text.parse().map_err(|_| LexError {
                    message: format!("malformed real literal `{text}`"),
                    pos,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    pos,
                })?)
            };
            out.push(Token { tok, pos });
            continue;
        }
        // String literal.
        if c == '"' {
            advance(c, &mut line, &mut col);
            i += 1;
            let mut s = String::new();
            loop {
                if i >= n {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        pos,
                    });
                }
                let c = bytes[i];
                advance(c, &mut line, &mut col);
                i += 1;
                match c {
                    '"' => break,
                    '\\' => {
                        if i >= n {
                            return Err(LexError {
                                message: "unterminated escape".into(),
                                pos,
                            });
                        }
                        let e = bytes[i];
                        advance(e, &mut line, &mut col);
                        i += 1;
                        s.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            other => {
                                return Err(LexError {
                                    message: format!("unknown escape `\\{other}`"),
                                    pos,
                                })
                            }
                        });
                    }
                    other => s.push(other),
                }
            }
            out.push(Token {
                tok: Tok::Str(s),
                pos,
            });
            continue;
        }
        // Punctuation.
        let rest: String = bytes[i..(i + 3).min(n)].iter().collect();
        match PUNCTS.iter().find(|&&p| rest.starts_with(p)) {
            Some(&p) => {
                for c in p.chars() {
                    advance(c, &mut line, &mut col);
                }
                i += p.chars().count();
                out.push(Token {
                    tok: Tok::Punct(p),
                    pos,
                });
            }
            None => {
                return Err(LexError {
                    message: format!("unexpected character `{c}`"),
                    pos,
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("phylum Number;"),
            vec![
                Tok::Kw("phylum"),
                Tok::Ident("Number".into()),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.25"),
            vec![Tok::Int(42), Tok::Real(3.25), Tok::Eof]
        );
        // `1.` without digits is Int then Punct.
        assert_eq!(kinds("1."), vec![Tok::Int(1), Tok::Punct("."), Tok::Eof]);
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![Tok::Str("a\nb\"c".into()), Tok::Eof]
        );
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- comment ::= junk\n2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn longest_punct_wins() {
        assert_eq!(
            kinds("::= := :: : <> <="),
            vec![
                Tok::Punct("::="),
                Tok::Punct(":="),
                Tok::Punct("::"),
                Tok::Punct(":"),
                Tok::Punct("<>"),
                Tok::Punct("<="),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn minus_is_not_comment() {
        assert_eq!(
            kinds("1 - 2"),
            vec![Tok::Int(1), Tok::Punct("-"), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }
}
