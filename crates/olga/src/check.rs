//! Type- and well-formedness checking of OLGA units.
//!
//! OLGA "is strongly typed, with polymorphism, overloading and type
//! inference" (paper §2.4). The checker resolves imports, types every
//! expression (operators are overloaded over int/real/string, list/map
//! primitives are polymorphic through [`Ty::Any`]), resolves attribute
//! occurrences `Phylum$k.attr` inside rule blocks, and verifies that rules
//! only define output occurrences. Exactly-once definition (after automatic
//! copy-rule insertion) is enforced by the lowering step.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::ast::*;
use crate::lexer::Pos;
use crate::types::{resolve_type, Ty};

/// A semantic error with position.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckError {
    /// Description.
    pub message: String,
    /// Position.
    pub pos: Pos,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: error: {}", self.pos, self.message)
    }
}

impl std::error::Error for CheckError {}

fn err<T>(message: impl Into<String>, pos: Pos) -> Result<T, CheckError> {
    Err(CheckError {
        message: message.into(),
        pos,
    })
}

/// A checked function: resolved signature plus retained body.
#[derive(Clone, Debug)]
pub struct FunSig {
    /// Parameter names and types.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// The body, evaluated by the interpreter.
    pub body: Expr,
}

/// The entities visible inside one unit (own + imported).
#[derive(Clone, Debug, Default)]
pub struct UnitEnv {
    /// Named types.
    pub types: HashMap<String, Ty>,
    /// Constants: type and defining expression.
    pub consts: HashMap<String, (Ty, Expr)>,
    /// Functions.
    pub funcs: HashMap<String, FunSig>,
}

/// A checked module, with its export surface.
#[derive(Clone, Debug)]
pub struct CheckedModule {
    /// The source AST.
    pub ast: Module,
    /// Everything visible inside the module.
    pub env: UnitEnv,
    /// What importers see (opaque types are abstracted).
    pub exports: UnitEnv,
}

/// Attribute information per phylum of an AG.
#[derive(Clone, Debug)]
pub struct AgAttrTable {
    /// `attrs[phylum][attr] = (synthesized, type)`.
    pub attrs: HashMap<String, HashMap<String, (bool, Ty)>>,
}

/// A threaded attribute pair after expansion.
#[derive(Clone, Debug)]
pub struct ThreadInfo {
    /// Base name (`lab` → attributes `lab_in`, `lab_out`).
    pub base: String,
    /// Phyla carrying the pair.
    pub phyla: Vec<String>,
}

/// A checked attribute grammar, ready for lowering.
#[derive(Clone, Debug)]
pub struct CheckedAg {
    /// The source AST.
    pub ast: AgDef,
    /// Visible entities (imports + AG-local).
    pub env: UnitEnv,
    /// Attribute table.
    pub attr_table: AgAttrTable,
    /// Rule models per attribute name (`with concat` / `with sum`).
    pub classes: BTreeMap<String, AttrClass>,
    /// Threaded pairs (the threading rule model).
    pub threads: Vec<ThreadInfo>,
}

/// The multi-unit compiler: checked modules by name, in dependency order
/// (paper §2.3's modularity: an application is a set of modules and AGs).
#[derive(Debug, Default)]
pub struct Compiler {
    modules: HashMap<String, CheckedModule>,
}

impl Compiler {
    /// An empty compiler.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// The checked module `name`, if present.
    pub fn module(&self, name: &str) -> Option<&CheckedModule> {
        self.modules.get(name)
    }

    /// Checks and registers a module.
    ///
    /// # Errors
    ///
    /// Returns the first semantic error.
    pub fn add_module(&mut self, m: Module) -> Result<(), CheckError> {
        let checked = self.check_module(m)?;
        self.modules.insert(checked.ast.name.clone(), checked);
        Ok(())
    }

    /// Checks an attribute grammar against the registered modules.
    ///
    /// # Errors
    ///
    /// Returns the first semantic error.
    pub fn check_ag(&self, ag: AgDef) -> Result<CheckedAg, CheckError> {
        let mut ag = ag;
        // Expand threaded pairs into ordinary attribute declarations; the
        // threading rules themselves are instantiated by the lowering.
        let mut threads = Vec::new();
        for t in std::mem::take(&mut ag.threads) {
            ag.attrs.push(AttrDef {
                synthesized: false,
                name: format!("{}_in", t.name),
                ty: t.ty.clone(),
                phyla: t.phyla.clone(),
                class: AttrClass::Plain,
                pos: t.pos,
            });
            ag.attrs.push(AttrDef {
                synthesized: true,
                name: format!("{}_out", t.name),
                ty: t.ty.clone(),
                phyla: t.phyla.clone(),
                class: AttrClass::Plain,
                pos: t.pos,
            });
            threads.push(ThreadInfo {
                base: t.name,
                phyla: t.phyla,
            });
        }
        let ag = ag;
        let mut env = UnitEnv::default();
        self.apply_imports(&ag.imports, &mut env)?;
        declare_types(&ag.types, &mut env)?;
        declare_functions(&ag.funcs, &mut env)?;
        declare_consts(&ag.consts, &mut env)?;

        // Phyla.
        let mut phyla: Vec<&str> = Vec::new();
        for p in &ag.phyla {
            if phyla.contains(&p.as_str()) {
                return err(format!("duplicate phylum `{p}`"), Pos { line: 1, col: 1 });
            }
            phyla.push(p);
        }
        if phyla.is_empty() {
            return err(
                format!("attribute grammar `{}` declares no phyla", ag.name),
                Pos { line: 1, col: 1 },
            );
        }
        if let Some(root) = &ag.root {
            if !phyla.contains(&root.as_str()) {
                return err(
                    format!("unknown root phylum `{root}`"),
                    Pos { line: 1, col: 1 },
                );
            }
        }
        // Operators.
        let mut op_by_name: HashMap<&str, &OpDef> = HashMap::new();
        for op in &ag.operators {
            if op_by_name.insert(&op.name, op).is_some() {
                return err(format!("duplicate operator `{}`", op.name), op.pos);
            }
            if !phyla.contains(&op.lhs.as_str()) {
                return err(format!("unknown phylum `{}`", op.lhs), op.pos);
            }
            for r in &op.rhs {
                if !phyla.contains(&r.as_str()) {
                    return err(format!("unknown phylum `{r}`"), op.pos);
                }
            }
        }
        // Attributes.
        let mut attr_table = AgAttrTable {
            attrs: phyla
                .iter()
                .map(|&p| (p.to_string(), HashMap::new()))
                .collect(),
        };
        let mut classes: BTreeMap<String, AttrClass> = BTreeMap::new();
        for a in &ag.attrs {
            let ty = resolve_type(&a.ty, &env.types, a.pos).map_err(|(n, pos)| CheckError {
                message: format!("unknown type `{n}`"),
                pos,
            })?;
            match a.class {
                AttrClass::Plain => {}
                AttrClass::Concat => {
                    if !a.synthesized {
                        return err("`with concat` applies to synthesized attributes", a.pos);
                    }
                    if !ty.compatible(&Ty::List(Box::new(Ty::Any))) && !ty.compatible(&Ty::Str) {
                        return err(
                            format!("`with concat` needs a list or string attribute, found `{ty}`"),
                            a.pos,
                        );
                    }
                    classes.insert(a.name.clone(), a.class);
                }
                AttrClass::Sum => {
                    if !a.synthesized {
                        return err("`with sum` applies to synthesized attributes", a.pos);
                    }
                    if !ty.compatible(&Ty::Int) {
                        return err(
                            format!("`with sum` needs an int attribute, found `{ty}`"),
                            a.pos,
                        );
                    }
                    classes.insert(a.name.clone(), a.class);
                }
            }
            for p in &a.phyla {
                let Some(per) = attr_table.attrs.get_mut(p) else {
                    return err(format!("unknown phylum `{p}`"), a.pos);
                };
                if per
                    .insert(a.name.clone(), (a.synthesized, ty.clone()))
                    .is_some()
                {
                    return err(
                        format!("attribute `{}` declared twice on `{p}`", a.name),
                        a.pos,
                    );
                }
            }
        }

        // Rule blocks.
        for phase in &ag.phases {
            for block in &phase.blocks {
                let Some(op) = op_by_name.get(block.operator.as_str()) else {
                    return err(format!("unknown operator `{}`", block.operator), block.pos);
                };
                let ctx = OpCtx::new(op, &attr_table);
                let mut locals: HashMap<String, Ty> = HashMap::new();
                for l in &block.locals {
                    let ty =
                        resolve_type(&l.ty, &env.types, l.pos).map_err(|(n, pos)| CheckError {
                            message: format!("unknown type `{n}`"),
                            pos,
                        })?;
                    let mut scope = Scope::new();
                    let got = check_expr(
                        &l.body,
                        &env,
                        &mut scope,
                        Some(&CtxWithLocals {
                            ctx: &ctx,
                            locals: &locals,
                        }),
                    )?;
                    if !got.compatible(&ty) {
                        return err(
                            format!(
                                "local `{}` declared `{ty}` but defined with `{got}`",
                                l.name
                            ),
                            l.pos,
                        );
                    }
                    if locals.insert(l.name.clone(), ty).is_some() {
                        return err(format!("duplicate local `{}`", l.name), l.pos);
                    }
                }
                for rule in &block.rules {
                    let want = match &rule.target {
                        RuleTarget::Occ(occ) => {
                            let (pos_idx, syn, ty) = ctx.resolve(occ)?;
                            // Output occurrences only: synthesized on the
                            // LHS, inherited on the RHS.
                            let is_output = (pos_idx == 0) == syn;
                            if !is_output {
                                return err(
                                    format!(
                                        "rule defines input occurrence `{}.{}` (a production may only define LHS synthesized and RHS inherited attributes)",
                                        occ.name, occ.attr
                                    ),
                                    occ.pos,
                                );
                            }
                            ty
                        }
                        RuleTarget::Local(name, pos) => match locals.get(name) {
                            Some(t) => t.clone(),
                            None => return err(format!("unknown local `{name}`"), *pos),
                        },
                    };
                    let mut scope = Scope::new();
                    let got = check_expr(
                        &rule.body,
                        &env,
                        &mut scope,
                        Some(&CtxWithLocals {
                            ctx: &ctx,
                            locals: &locals,
                        }),
                    )?;
                    if !got.compatible(&want) {
                        return err(
                            format!("rule has type `{got}`, target expects `{want}`"),
                            rule.pos,
                        );
                    }
                }
            }
        }

        Ok(CheckedAg {
            ast: ag,
            env,
            attr_table,
            classes,
            threads,
        })
    }

    fn check_module(&self, m: Module) -> Result<CheckedModule, CheckError> {
        let mut env = UnitEnv::default();
        self.apply_imports(&m.imports, &mut env)?;
        declare_types(&m.types, &mut env)?;
        declare_functions(&m.funcs, &mut env)?;
        declare_consts(&m.consts, &mut env)?;

        // Export surface. Opaque type exports abstract the representation,
        // so exported signatures are re-resolved from their *syntactic*
        // types under the abstracted view.
        let mut exports = UnitEnv::default();
        if m.exports.is_empty() {
            exports = env.clone();
        } else {
            let mut view = env.types.clone();
            for e in &m.exports {
                if e.opaque && env.types.contains_key(&e.name) {
                    view.insert(e.name.clone(), Ty::Opaque(e.name.clone()));
                }
            }
            let reresolve = |te: &crate::ast::TypeExpr, pos: Pos| {
                resolve_type(te, &view, pos).map_err(|(n, pos)| CheckError {
                    message: format!("unknown type `{n}`"),
                    pos,
                })
            };
            for e in &m.exports {
                let mut found = false;
                if let Some(t) = view.get(&e.name) {
                    exports.types.insert(e.name.clone(), t.clone());
                    found = true;
                }
                if let Some(imported) = env.consts.get(&e.name) {
                    // Defined here: re-resolve from the syntactic type under
                    // the abstracted view. Imported: re-export as checked.
                    match m.consts.iter().find(|c| c.name == e.name) {
                        Some(def) => {
                            let ty = reresolve(&def.ty, def.pos)?;
                            exports
                                .consts
                                .insert(e.name.clone(), (ty, def.body.clone()));
                        }
                        None => {
                            exports.consts.insert(e.name.clone(), imported.clone());
                        }
                    }
                    found = true;
                }
                if let Some(imported) = env.funcs.get(&e.name) {
                    match m.funcs.iter().find(|f| f.name == e.name) {
                        Some(def) => {
                            let params = def
                                .params
                                .iter()
                                .map(|(n, te)| reresolve(te, def.pos).map(|t| (n.clone(), t)))
                                .collect::<Result<Vec<_>, _>>()?;
                            let ret = reresolve(&def.ret, def.pos)?;
                            exports.funcs.insert(
                                e.name.clone(),
                                FunSig {
                                    params,
                                    ret,
                                    body: def.body.clone(),
                                },
                            );
                        }
                        None => {
                            exports.funcs.insert(e.name.clone(), imported.clone());
                        }
                    }
                    found = true;
                }
                if !found {
                    return err(
                        format!(
                            "exported `{}` is not defined in module `{}`",
                            e.name, m.name
                        ),
                        Pos { line: 1, col: 1 },
                    );
                }
            }
        }
        Ok(CheckedModule {
            ast: m,
            env,
            exports,
        })
    }

    fn apply_imports(&self, imports: &[Import], env: &mut UnitEnv) -> Result<(), CheckError> {
        for imp in imports {
            let Some(module) = self.modules.get(&imp.from) else {
                return err(format!("unknown module `{}`", imp.from), imp.pos);
            };
            for name in &imp.names {
                let mut found = false;
                if let Some(t) = module.exports.types.get(name) {
                    env.types.insert(name.clone(), t.clone());
                    found = true;
                }
                if let Some(c) = module.exports.consts.get(name) {
                    env.consts.insert(name.clone(), c.clone());
                    pull_private_deps(&c.1, &module.env, env);
                    found = true;
                }
                if let Some(f) = module.exports.funcs.get(name) {
                    env.funcs.insert(name.clone(), f.clone());
                    pull_private_deps(&f.body, &module.env, env);
                    found = true;
                }
                if !found {
                    return err(
                        format!("module `{}` does not export `{name}`", imp.from),
                        imp.pos,
                    );
                }
            }
        }
        Ok(())
    }
}

/// Imported bodies may reference entities of their defining module that the
/// importer never named (private helpers, transitive constants). Pull the
/// transitive closure of those dependencies into the importing environment
/// so the interpreter (and the translators) can resolve them.
fn pull_private_deps(body: &Expr, src: &UnitEnv, dst: &mut UnitEnv) {
    let mut queue: Vec<String> = Vec::new();
    collect_refs(body, &mut queue);
    while let Some(n) = queue.pop() {
        if let Some(c) = src.consts.get(&n) {
            if !dst.consts.contains_key(&n) {
                dst.consts.insert(n.clone(), c.clone());
                collect_refs(&c.1, &mut queue);
            }
        }
        if let Some(f) = src.funcs.get(&n) {
            if !dst.funcs.contains_key(&n) {
                let f = f.clone();
                collect_refs(&f.body, &mut queue);
                dst.funcs.insert(n.clone(), f);
            }
        }
    }
}

/// Names an expression references as free variables or calls. The scan is
/// binder-aware: `let`- and `case`-bound names shadow outer constants, so
/// a shadowed occurrence is not a reference (a naive scan would pull — or
/// later cycle-check — entities the body never uses). Call names are always
/// collected: value binders never shadow the function namespace.
fn collect_refs(e: &Expr, out: &mut Vec<String>) {
    let mut bound = Vec::new();
    collect_refs_bound(e, &mut bound, out);
}

fn collect_refs_bound(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
    match e {
        Expr::Var(n, _) if !bound.iter().any(|b| b == n) => out.push(n.clone()),
        Expr::Var(..) => {}
        Expr::Call { name, args, .. } => {
            out.push(name.clone());
            for a in args {
                collect_refs_bound(a, bound, out);
            }
        }
        Expr::Unop { expr, .. } => collect_refs_bound(expr, bound, out),
        Expr::Binop { lhs, rhs, .. } => {
            collect_refs_bound(lhs, bound, out);
            collect_refs_bound(rhs, bound, out);
        }
        Expr::If {
            cond, then, els, ..
        } => {
            collect_refs_bound(cond, bound, out);
            collect_refs_bound(then, bound, out);
            collect_refs_bound(els, bound, out);
        }
        Expr::Let {
            name, value, body, ..
        } => {
            collect_refs_bound(value, bound, out);
            bound.push(name.clone());
            collect_refs_bound(body, bound, out);
            bound.pop();
        }
        Expr::Case {
            scrutinee, arms, ..
        } => {
            collect_refs_bound(scrutinee, bound, out);
            for (p, b) in arms {
                let before = bound.len();
                bound.extend(p.binders().into_iter().map(String::from));
                collect_refs_bound(b, bound, out);
                bound.truncate(before);
            }
        }
        Expr::ListLit(items, _) | Expr::TupleLit(items, _) => {
            for i in items {
                collect_refs_bound(i, bound, out);
            }
        }
        Expr::TreeCons { args, .. } => {
            for a in args {
                collect_refs_bound(a, bound, out);
            }
        }
        _ => {}
    }
}

fn declare_types(types: &[TypeDef], env: &mut UnitEnv) -> Result<(), CheckError> {
    for t in types {
        let ty = resolve_type(&t.ty, &env.types, t.pos).map_err(|(n, pos)| CheckError {
            message: format!("unknown type `{n}`"),
            pos,
        })?;
        if env.types.insert(t.name.clone(), ty).is_some() {
            return err(format!("duplicate type `{}`", t.name), t.pos);
        }
    }
    Ok(())
}

fn declare_functions(funcs: &[FunDef], env: &mut UnitEnv) -> Result<(), CheckError> {
    // Two passes: signatures first so functions can be mutually recursive.
    for f in funcs {
        let params: Vec<(String, Ty)> = f
            .params
            .iter()
            .map(|(n, te)| {
                resolve_type(te, &env.types, f.pos)
                    .map(|t| (n.clone(), t))
                    .map_err(|(n, pos)| CheckError {
                        message: format!("unknown type `{n}`"),
                        pos,
                    })
            })
            .collect::<Result<_, _>>()?;
        let ret = resolve_type(&f.ret, &env.types, f.pos).map_err(|(n, pos)| CheckError {
            message: format!("unknown type `{n}`"),
            pos,
        })?;
        if env
            .funcs
            .insert(
                f.name.clone(),
                FunSig {
                    params,
                    ret,
                    body: f.body.clone(),
                },
            )
            .is_some()
        {
            return err(format!("duplicate function `{}`", f.name), f.pos);
        }
    }
    for f in funcs {
        let sig = env.funcs[&f.name].clone();
        let mut scope = Scope::new();
        for (n, t) in &sig.params {
            scope.bind(n.clone(), t.clone());
        }
        let got = check_expr(&f.body, env, &mut scope, None)?;
        if !got.compatible(&sig.ret) {
            return err(
                format!(
                    "function `{}` declared to return `{}` but body has type `{got}`",
                    f.name, sig.ret
                ),
                f.pos,
            );
        }
    }
    Ok(())
}

fn declare_consts(consts: &[ConstDef], env: &mut UnitEnv) -> Result<(), CheckError> {
    // Two passes so constants may reference each other regardless of
    // declaration order (cycles are caught at evaluation time).
    for c in consts {
        let ty = resolve_type(&c.ty, &env.types, c.pos).map_err(|(n, pos)| CheckError {
            message: format!("unknown type `{n}`"),
            pos,
        })?;
        if env
            .consts
            .insert(c.name.clone(), (ty, c.body.clone()))
            .is_some()
        {
            return err(format!("duplicate constant `{}`", c.name), c.pos);
        }
    }
    for c in consts {
        let ty = env.consts[&c.name].0.clone();
        let mut scope = Scope::new();
        let got = check_expr(&c.body, env, &mut scope, None)?;
        if !got.compatible(&ty) {
            return err(
                format!(
                    "constant `{}` declared `{ty}` but defined with `{got}`",
                    c.name
                ),
                c.pos,
            );
        }
    }
    Ok(())
}

/// Occurrence-resolution context for one operator.
#[derive(Clone, Debug)]
pub struct OpCtx {
    /// Phylum name at each position (0 = LHS).
    pub positions: Vec<String>,
    /// Attribute table reference (cloned rows for the phyla involved).
    attrs: HashMap<String, HashMap<String, (bool, Ty)>>,
}

impl OpCtx {
    /// Builds the context of `op`.
    pub fn new(op: &OpDef, table: &AgAttrTable) -> OpCtx {
        let mut positions = vec![op.lhs.clone()];
        positions.extend(op.rhs.iter().cloned());
        let attrs = positions
            .iter()
            .map(|p| (p.clone(), table.attrs.get(p).cloned().unwrap_or_default()))
            .collect();
        OpCtx { positions, attrs }
    }

    /// Resolves `occ` to `(position, synthesized?, type)`.
    ///
    /// # Errors
    ///
    /// Reports unknown phyla/attributes and missing/invalid `$k` indices.
    pub fn resolve(&self, occ: &OccRef) -> Result<(u16, bool, Ty), CheckError> {
        let hits: Vec<u16> = self
            .positions
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == occ.name)
            .map(|(i, _)| i as u16)
            .collect();
        if hits.is_empty() {
            return err(
                format!("phylum `{}` does not occur in this production", occ.name),
                occ.pos,
            );
        }
        let pos_idx = match occ.index {
            None if hits.len() == 1 => hits[0],
            None => {
                return err(
                    format!(
                        "phylum `{}` occurs {} times; use `{}$k.{}`",
                        occ.name,
                        hits.len(),
                        occ.name,
                        occ.attr
                    ),
                    occ.pos,
                )
            }
            Some(k) if (k as usize) <= hits.len() => hits[k as usize - 1],
            Some(k) => {
                return err(
                    format!(
                        "occurrence index ${k} out of range (phylum `{}` occurs {} times)",
                        occ.name,
                        hits.len()
                    ),
                    occ.pos,
                )
            }
        };
        match self.attrs[&occ.name].get(&occ.attr) {
            Some((syn, ty)) => Ok((pos_idx, *syn, ty.clone())),
            None => err(
                format!("attribute `{}` is not declared on `{}`", occ.attr, occ.name),
                occ.pos,
            ),
        }
    }
}

/// Context passed into rule-body checking.
struct CtxWithLocals<'a> {
    ctx: &'a OpCtx,
    locals: &'a HashMap<String, Ty>,
}

/// Lexical scope of binders.
#[derive(Default)]
struct Scope {
    stack: Vec<(String, Ty)>,
}

impl Scope {
    fn new() -> Self {
        Scope::default()
    }
    fn bind(&mut self, name: String, ty: Ty) {
        self.stack.push((name, ty));
    }
    fn unbind(&mut self, n: usize) {
        self.stack.truncate(self.stack.len() - n);
    }
    fn lookup(&self, name: &str) -> Option<&Ty> {
        self.stack
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Types an expression.
fn check_expr(
    e: &Expr,
    env: &UnitEnv,
    scope: &mut Scope,
    rule_ctx: Option<&CtxWithLocals>,
) -> Result<Ty, CheckError> {
    match e {
        Expr::Int(..) => Ok(Ty::Int),
        Expr::Real(..) => Ok(Ty::Real),
        Expr::Bool(..) => Ok(Ty::Bool),
        Expr::Str(..) => Ok(Ty::Str),
        Expr::Var(name, pos) => {
            if let Some(t) = scope.lookup(name) {
                return Ok(t.clone());
            }
            if let Some(ctx) = rule_ctx {
                if let Some(t) = ctx.locals.get(name) {
                    return Ok(t.clone());
                }
            }
            if let Some((t, _)) = env.consts.get(name) {
                return Ok(t.clone());
            }
            err(format!("unknown name `{name}`"), *pos)
        }
        Expr::Occ(occ) => match rule_ctx {
            Some(ctx) => ctx.ctx.resolve(occ).map(|(_, _, t)| t),
            None => err(
                "attribute occurrences are only allowed in semantic rules",
                occ.pos,
            ),
        },
        Expr::Call { name, args, pos } => check_call(name, args, *pos, env, scope, rule_ctx),
        Expr::Unop { op, expr, pos } => {
            let t = check_expr(expr, env, scope, rule_ctx)?;
            match (*op, &t) {
                ("-", Ty::Int) | ("-", Ty::Real) | ("-", Ty::Any) => Ok(t),
                ("not", Ty::Bool) | ("not", Ty::Any) => Ok(Ty::Bool),
                _ => err(format!("operator `{op}` does not apply to `{t}`"), *pos),
            }
        }
        Expr::Binop { op, lhs, rhs, pos } => {
            let lt = check_expr(lhs, env, scope, rule_ctx)?;
            let rt = check_expr(rhs, env, scope, rule_ctx)?;
            check_binop(op, &lt, &rt, *pos)
        }
        Expr::If {
            cond,
            then,
            els,
            pos,
        } => {
            let ct = check_expr(cond, env, scope, rule_ctx)?;
            if !ct.compatible(&Ty::Bool) {
                return err(format!("if condition must be bool, found `{ct}`"), *pos);
            }
            let tt = check_expr(then, env, scope, rule_ctx)?;
            let et = check_expr(els, env, scope, rule_ctx)?;
            if !tt.compatible(&et) {
                return err(format!("if branches disagree: `{tt}` vs `{et}`"), *pos);
            }
            Ok(tt.join(&et))
        }
        Expr::Let {
            name, value, body, ..
        } => {
            let vt = check_expr(value, env, scope, rule_ctx)?;
            scope.bind(name.clone(), vt);
            let bt = check_expr(body, env, scope, rule_ctx)?;
            scope.unbind(1);
            Ok(bt)
        }
        Expr::Case {
            scrutinee,
            arms,
            pos,
        } => {
            let st = check_expr(scrutinee, env, scope, rule_ctx)?;
            let mut result: Option<Ty> = None;
            for (pat, body) in arms {
                let n = bind_pattern(pat, &st, scope)?;
                let bt = check_expr(body, env, scope, rule_ctx)?;
                scope.unbind(n);
                result = Some(match result {
                    None => bt,
                    Some(prev) => {
                        if !prev.compatible(&bt) {
                            return err(format!("case arms disagree: `{prev}` vs `{bt}`"), *pos);
                        }
                        prev.join(&bt)
                    }
                });
            }
            result.ok_or(CheckError {
                message: "case expression has no arms".into(),
                pos: *pos,
            })
        }
        Expr::ListLit(items, _) => {
            let mut elem = Ty::Any;
            for (i, it) in items.iter().enumerate() {
                let t = check_expr(it, env, scope, rule_ctx)?;
                if !t.compatible(&elem) {
                    return err(
                        format!("list element {i} has type `{t}`, expected `{elem}`"),
                        it.pos(),
                    );
                }
                elem = elem.join(&t);
            }
            Ok(Ty::List(Box::new(elem)))
        }
        Expr::TupleLit(items, _) => {
            let ts = items
                .iter()
                .map(|it| check_expr(it, env, scope, rule_ctx))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Ty::Tuple(ts))
        }
        Expr::TreeCons { args, .. } => {
            for a in args {
                check_expr(a, env, scope, rule_ctx)?;
            }
            Ok(Ty::Tree)
        }
    }
}

/// Types a call: built-ins first, then user functions.
fn check_call(
    name: &str,
    args: &[Expr],
    pos: Pos,
    env: &UnitEnv,
    scope: &mut Scope,
    rule_ctx: Option<&CtxWithLocals>,
) -> Result<Ty, CheckError> {
    let tys: Vec<Ty> = args
        .iter()
        .map(|a| check_expr(a, env, scope, rule_ctx))
        .collect::<Result<_, _>>()?;
    let arity = |n: usize| -> Result<(), CheckError> {
        if tys.len() != n {
            err(
                format!("`{name}` expects {n} argument(s), got {}", tys.len()),
                pos,
            )
        } else {
            Ok(())
        }
    };
    let want = |i: usize, t: Ty| -> Result<(), CheckError> {
        if !tys[i].compatible(&t) {
            err(
                format!(
                    "argument {} of `{name}` has type `{}`, expected `{t}`",
                    i + 1,
                    tys[i]
                ),
                pos,
            )
        } else {
            Ok(())
        }
    };
    match name {
        "token" => {
            arity(0)?;
            if rule_ctx.is_none() {
                return err("`token()` is only available in semantic rules", pos);
            }
            Ok(Ty::Any)
        }
        "to_real" => {
            arity(1)?;
            want(0, Ty::Int)?;
            Ok(Ty::Real)
        }
        "to_int" => {
            arity(1)?;
            want(0, Ty::Real)?;
            Ok(Ty::Int)
        }
        "abs" => {
            arity(1)?;
            want(0, Ty::Int)?;
            Ok(Ty::Int)
        }
        "min" | "max" => {
            arity(2)?;
            want(0, Ty::Int)?;
            want(1, Ty::Int)?;
            Ok(Ty::Int)
        }
        "len" => {
            arity(1)?;
            want(0, Ty::List(Box::new(Ty::Any)))?;
            Ok(Ty::Int)
        }
        "null" => {
            arity(1)?;
            want(0, Ty::List(Box::new(Ty::Any)))?;
            Ok(Ty::Bool)
        }
        "hd" => {
            arity(1)?;
            want(0, Ty::List(Box::new(Ty::Any)))?;
            Ok(tys[0].elem().unwrap_or(Ty::Any))
        }
        "tl" | "rev" => {
            arity(1)?;
            want(0, Ty::List(Box::new(Ty::Any)))?;
            Ok(tys[0].clone().join(&Ty::List(Box::new(Ty::Any))))
        }
        "empty_map" => {
            arity(0)?;
            Ok(Ty::Map(Box::new(Ty::Any)))
        }
        "size" => {
            arity(1)?;
            want(0, Ty::Map(Box::new(Ty::Any)))?;
            Ok(Ty::Int)
        }
        "insert" => {
            arity(3)?;
            want(0, Ty::Map(Box::new(Ty::Any)))?;
            want(1, Ty::Str)?;
            let elem = match &tys[0] {
                Ty::Map(t) => (**t).clone(),
                _ => Ty::Any,
            };
            if !tys[2].compatible(&elem) {
                return err(format!("inserting `{}` into `map of {elem}`", tys[2]), pos);
            }
            Ok(Ty::Map(Box::new(elem.join(&tys[2]))))
        }
        "lookup" => {
            arity(2)?;
            want(0, Ty::Map(Box::new(Ty::Any)))?;
            want(1, Ty::Str)?;
            Ok(match &tys[0] {
                Ty::Map(t) => (**t).clone(),
                _ => Ty::Any,
            })
        }
        "bound" => {
            arity(2)?;
            want(0, Ty::Map(Box::new(Ty::Any)))?;
            want(1, Ty::Str)?;
            Ok(Ty::Bool)
        }
        "remove" => {
            arity(2)?;
            want(0, Ty::Map(Box::new(Ty::Any)))?;
            want(1, Ty::Str)?;
            Ok(tys[0].clone())
        }
        "itoa" => {
            arity(1)?;
            want(0, Ty::Int)?;
            Ok(Ty::Str)
        }
        "rtoa" => {
            arity(1)?;
            want(0, Ty::Real)?;
            Ok(Ty::Str)
        }
        "strlen" => {
            arity(1)?;
            want(0, Ty::Str)?;
            Ok(Ty::Int)
        }
        "error" => {
            arity(1)?;
            want(0, Ty::Str)?;
            Ok(Ty::Any)
        }
        _ => match env.funcs.get(name) {
            Some(sig) => {
                arity(sig.params.len())?;
                for (i, (_, pt)) in sig.params.iter().enumerate() {
                    want(i, pt.clone())?;
                }
                Ok(sig.ret.clone())
            }
            None => err(format!("unknown function `{name}`"), pos),
        },
    }
}

fn check_binop(op: &str, lt: &Ty, rt: &Ty, pos: Pos) -> Result<Ty, CheckError> {
    use Ty::*;
    let both = |t: &Ty| lt.compatible(t) && rt.compatible(t);
    match op {
        "+" => {
            if both(&Int) {
                Ok(Int)
            } else if both(&Real) {
                Ok(Real)
            } else if both(&Str) {
                Ok(Str)
            } else {
                err(format!("`+` does not apply to `{lt}` and `{rt}`"), pos)
            }
        }
        "-" | "*" | "/" => {
            if both(&Int) {
                Ok(Int)
            } else if both(&Real) {
                Ok(Real)
            } else {
                err(format!("`{op}` does not apply to `{lt}` and `{rt}`"), pos)
            }
        }
        "%" => {
            if both(&Int) {
                Ok(Int)
            } else {
                err(format!("`%` does not apply to `{lt}` and `{rt}`"), pos)
            }
        }
        "=" | "<>" => {
            if lt.compatible(rt) {
                Ok(Bool)
            } else {
                err(format!("cannot compare `{lt}` with `{rt}`"), pos)
            }
        }
        "<" | "<=" | ">" | ">=" => {
            if both(&Int) || both(&Real) || both(&Str) {
                Ok(Bool)
            } else {
                err(format!("`{op}` does not apply to `{lt}` and `{rt}`"), pos)
            }
        }
        "and" | "or" => {
            if both(&Bool) {
                Ok(Bool)
            } else {
                err(
                    format!("`{op}` needs booleans, found `{lt}` and `{rt}`"),
                    pos,
                )
            }
        }
        "::" => {
            let want = Ty::List(Box::new(lt.clone()));
            if rt.compatible(&want) {
                Ok(rt.join(&want))
            } else {
                err(format!("cannot cons `{lt}` onto `{rt}`"), pos)
            }
        }
        "++" => {
            if both(&Str) {
                Ok(Str)
            } else if lt.compatible(&Ty::List(Box::new(Ty::Any))) && lt.compatible(rt) {
                Ok(lt.join(rt))
            } else {
                err(format!("`++` does not apply to `{lt}` and `{rt}`"), pos)
            }
        }
        other => err(format!("unknown operator `{other}`"), pos),
    }
}

/// Binds a pattern against the scrutinee type; returns the number of
/// binders pushed.
fn bind_pattern(pat: &Pat, scrutinee: &Ty, scope: &mut Scope) -> Result<usize, CheckError> {
    match pat {
        Pat::Wild(_) => Ok(0),
        Pat::Bind(n, _) => {
            scope.bind(n.clone(), scrutinee.clone());
            Ok(1)
        }
        Pat::Int(_, p) => {
            if scrutinee.compatible(&Ty::Int) {
                Ok(0)
            } else {
                err(format!("integer pattern against `{scrutinee}`"), *p)
            }
        }
        Pat::Bool(_, p) => {
            if scrutinee.compatible(&Ty::Bool) {
                Ok(0)
            } else {
                err(format!("boolean pattern against `{scrutinee}`"), *p)
            }
        }
        Pat::Str(_, p) => {
            if scrutinee.compatible(&Ty::Str) {
                Ok(0)
            } else {
                err(format!("string pattern against `{scrutinee}`"), *p)
            }
        }
        Pat::Nil(p) => {
            if scrutinee.compatible(&Ty::List(Box::new(Ty::Any))) {
                Ok(0)
            } else {
                err(format!("list pattern against `{scrutinee}`"), *p)
            }
        }
        Pat::Cons(h, t, p) => {
            if !scrutinee.compatible(&Ty::List(Box::new(Ty::Any))) {
                return err(format!("list pattern against `{scrutinee}`"), *p);
            }
            let elem = scrutinee.elem().unwrap_or(Ty::Any);
            let n1 = bind_pattern(h, &elem, scope)?;
            let n2 = bind_pattern(t, &Ty::List(Box::new(elem)), scope)?;
            Ok(n1 + n2)
        }
        Pat::Tuple(ps, p) => {
            let elems: Vec<Ty> = match scrutinee {
                Ty::Tuple(ts) if ts.len() == ps.len() => ts.clone(),
                Ty::Any => vec![Ty::Any; ps.len()],
                other => {
                    return err(
                        format!("tuple pattern of {} against `{other}`", ps.len()),
                        *p,
                    )
                }
            };
            let mut n = 0;
            for (q, t) in ps.iter().zip(&elems) {
                n += bind_pattern(q, t, scope)?;
            }
            Ok(n)
        }
        Pat::Term { args, pos, .. } => {
            if !scrutinee.compatible(&Ty::Tree) {
                return err(format!("tree pattern against `{scrutinee}`"), *pos);
            }
            let mut n = 0;
            for q in args {
                n += bind_pattern(q, &Ty::Any, scope)?;
            }
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Unit;
    use crate::parser::parse_unit;

    use super::*;

    fn check_module_src(src: &str) -> Result<(), CheckError> {
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!("expected module")
        };
        Compiler::new().add_module(m)
    }

    fn check_ag_src(src: &str) -> Result<CheckedAg, CheckError> {
        let Unit::Ag(ag) = parse_unit(src).unwrap() else {
            panic!("expected AG")
        };
        Compiler::new().check_ag(ag)
    }

    #[test]
    fn well_typed_module() {
        check_module_src(
            r#"
            module m;
              type env = map of int;
              const empty : env = empty_map();
              function get(e : env, k : string) : int =
                if bound(e, k) then lookup(e, k) else 0 end;
              function suml(l : list of int) : int =
                case l of [] => 0 | x :: r => x + suml(r) end;
            end
            "#,
        )
        .unwrap();
    }

    #[test]
    fn type_errors_are_reported() {
        let e =
            check_module_src("module m; function f(x : int) : int = x + \"a\"; end").unwrap_err();
        assert!(e.message.contains("`+`"), "{e}");

        let e = check_module_src("module m; function f(x : int) : string = x; end").unwrap_err();
        assert!(e.message.contains("declared to return"), "{e}");

        let e = check_module_src("module m; const c : int = nope; end").unwrap_err();
        assert!(e.message.contains("unknown name"), "{e}");
    }

    #[test]
    fn overloading_and_polymorphism() {
        check_module_src(
            r#"
            module m;
              const a : int = 1 + 2;
              const b : real = 1.5 + 2.5;
              const c : string = "x" + "y";
              const d : list of int = 1 :: [];
              const e : list of string = ["a"] ++ ["b"];
            end
            "#,
        )
        .unwrap();
    }

    #[test]
    fn imports_and_opacity() {
        let mut c = Compiler::new();
        let Unit::Module(m) = parse_unit(
            r#"
            module base;
              export opaque handle;
              export mk, use_it;
              type handle = int;
              function mk() : handle = 42;
              function use_it(h : handle) : int = 1;
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m).unwrap();
        // Importer can pass handles around but not exploit int-ness.
        let Unit::Module(m2) = parse_unit(
            r#"
            module client;
              import handle, mk, use_it from base;
              const h : handle = mk();
              const ok : int = use_it(mk());
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m2).unwrap();
        let Unit::Module(m3) =
            parse_unit("module bad; import handle, mk from base; const x : int = mk(); end")
                .unwrap()
        else {
            panic!()
        };
        let e = c.add_module(m3).unwrap_err();
        assert!(e.message.contains("declared `int`"), "{e}");
    }

    #[test]
    fn ag_occurrence_resolution() {
        let ag = check_ag_src(
            r#"
            attribute grammar g;
              phylum S, A;
              operator mk : S ::= A A;
              operator leaf : A ::= ;
              synthesized v : int of S, A;
              for mk { S.v := A$1.v + A$2.v; }
              for leaf { A.v := 1; }
            end
            "#,
        )
        .unwrap();
        assert_eq!(ag.ast.operators.len(), 2);

        // Ambiguous occurrence without $k.
        let e = check_ag_src(
            r#"
            attribute grammar g;
              phylum S, A;
              operator mk : S ::= A A;
              operator leaf : A ::= ;
              synthesized v : int of S, A;
              for mk { S.v := A.v; }
              for leaf { A.v := 1; }
            end
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("occurs 2 times"), "{e}");
    }

    #[test]
    fn rule_must_define_outputs() {
        let e = check_ag_src(
            r#"
            attribute grammar g;
              phylum S, A;
              operator mk : S ::= A;
              operator leaf : A ::= ;
              synthesized v : int of S, A;
              for mk { A.v := 1; }
            end
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("input occurrence"), "{e}");
    }

    #[test]
    fn rule_type_mismatch() {
        let e = check_ag_src(
            r#"
            attribute grammar g;
              phylum S;
              operator leaf : S ::= ;
              synthesized v : int of S;
              for leaf { S.v := "nope"; }
            end
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("expects `int`"), "{e}");
    }

    #[test]
    fn token_only_in_rules() {
        let e = check_module_src("module m; const c : int = token(); end").unwrap_err();
        assert!(
            e.message.contains("only available in semantic rules"),
            "{e}"
        );
    }

    #[test]
    fn locals_are_visible_in_rules() {
        check_ag_src(
            r#"
            attribute grammar g;
              phylum S;
              operator leaf : S ::= ;
              synthesized v : int of S;
              for leaf {
                local t : int := 20;
                S.v := t + t + 2;
              }
            end
            "#,
        )
        .unwrap();
    }

    #[test]
    fn reexporting_imported_names_is_not_a_panic() {
        // `hub` exports entities it only imported; the export loop used to
        // expect a local definition and aborted the process.
        let mut c = Compiler::new();
        let Unit::Module(m) = parse_unit(
            r#"
            module base;
              export k, twice;
              const k : int = 21;
              function twice(n : int) : int = n * 2;
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m).unwrap();
        let Unit::Module(m2) = parse_unit(
            r#"
            module hub;
              import k, twice from base;
              export k, twice;
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m2).unwrap();
        let Unit::Module(m3) = parse_unit(
            r#"
            module user;
              import k, twice from hub;
              const answer : int = twice(k);
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m3).unwrap();
    }

    #[test]
    fn shadowed_binders_do_not_pull_false_deps() {
        // The free-variable scan that drives dependency pulling must not
        // report `let`/`case`-bound names: `helper`'s body binds `secret`,
        // which shares its name with a private const of `base` that the
        // body never actually references.
        let mut c = Compiler::new();
        let Unit::Module(m) = parse_unit(
            r#"
            module base;
              export helper;
              const secret : int = 7;
              function helper(n : int) : int = let secret = n in secret + 1 end;
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m).unwrap();
        let Unit::Module(m2) = parse_unit(
            r#"
            module user;
              import helper from base;
              const out : int = helper(1);
            end
            "#,
        )
        .unwrap() else {
            panic!()
        };
        c.add_module(m2).unwrap();
        let env = &c.module("user").unwrap().env;
        assert!(
            !env.consts.contains_key("secret"),
            "shadowed binder must not pull the unrelated private const"
        );
    }
}
