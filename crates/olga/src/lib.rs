//! # fnc2-olga — the OLGA AG-description language (paper §2.4, §3.2)
//!
//! FNC-2 rejected "implementation language plus attribute accessors" input
//! styles and designed OLGA: purely applicative (but not functional),
//! strongly typed with overloading and local inference, block-structured
//! and modular — compilation units are declaration/definition **modules**
//! and **attribute grammars**, an AG defines a tree-to-tree mapping, AGs
//! are structured into **phases**, rules may bind production-**local**
//! attributes, and most copy rules are generated automatically.
//!
//! This crate implements a faithful subset: lexer, parser, type checker,
//! module system with opaque exports, expression interpreter, and the
//! lowering to the abstract AG consumed by the evaluator generator.
//!
//! ```
//! use fnc2_olga::compile_ag_source;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (grammar, info) = compile_ag_source(r#"
//!     attribute grammar count;
//!       phylum S;
//!       operator leaf : S ::= ;
//!       operator node : S ::= S;
//!       synthesized n : int of S;
//!       for leaf { S.n := 0; }
//!       for node { S$1.n := S$2.n + 1; }
//!     end
//! "#)?;
//! assert_eq!(grammar.production_count(), 2);
//! assert_eq!(info.computed_rules, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod check;
mod eval;
mod lexer;
mod lower;
mod parser;
mod types;

pub use check::{
    AgAttrTable, CheckError, CheckedAg, CheckedModule, Compiler, FunSig, OpCtx, ThreadInfo, UnitEnv,
};
pub use eval::{EvalAbort, EvalCtx};
pub use lexer::{lex, LexError, Pos, Tok, Token};
pub use lower::{lower, LowerError, LowerInfo};
pub use parser::{parse_unit, parse_units, ParseError};
pub use types::{resolve_type, Ty};

use ast::Unit;
use fnc2_ag::Grammar;

/// Everything that can go wrong while compiling OLGA sources.
#[derive(Debug)]
pub enum OlgaError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Checking failed.
    Check(CheckError),
    /// Lowering failed (well-definedness).
    Lower(LowerError),
}

impl std::fmt::Display for OlgaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OlgaError::Parse(e) => write!(f, "{e}"),
            OlgaError::Check(e) => write!(f, "{e}"),
            OlgaError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OlgaError {}

impl From<ParseError> for OlgaError {
    fn from(e: ParseError) -> Self {
        OlgaError::Parse(e)
    }
}
impl From<CheckError> for OlgaError {
    fn from(e: CheckError) -> Self {
        OlgaError::Check(e)
    }
}
impl From<LowerError> for OlgaError {
    fn from(e: LowerError) -> Self {
        OlgaError::Lower(e)
    }
}

/// One-call pipeline: parse, check and lower a source text containing any
/// number of modules followed by exactly one attribute grammar.
///
/// # Errors
///
/// Returns the first parse/check/lowering error.
pub fn compile_ag_source(src: &str) -> Result<(Grammar, LowerInfo), OlgaError> {
    let units = parse_units(src)?;
    let mut compiler = Compiler::new();
    let mut ag = None;
    for unit in units {
        match unit {
            Unit::Module(m) => compiler.add_module(m)?,
            Unit::Ag(a) => {
                if ag.is_some() {
                    return Err(OlgaError::Parse(ParseError {
                        message: "source contains more than one attribute grammar".into(),
                        pos: Pos { line: 1, col: 1 },
                    }));
                }
                ag = Some(a);
            }
        }
    }
    let Some(ag) = ag else {
        return Err(OlgaError::Parse(ParseError {
            message: "source contains no attribute grammar".into(),
            pos: Pos { line: 1, col: 1 },
        }));
    };
    let checked = compiler.check_ag(ag)?;
    Ok(lower(&checked)?)
}

/// Parses and checks a source of modules only, returning the compiler
/// holding them (for multi-file applications à la `mkfnc2`).
///
/// # Errors
///
/// Returns the first parse/check error.
pub fn compile_modules(src: &str) -> Result<Compiler, OlgaError> {
    let units = parse_units(src)?;
    let mut compiler = Compiler::new();
    for unit in units {
        match unit {
            Unit::Module(m) => compiler.add_module(m)?,
            Unit::Ag(a) => {
                return Err(OlgaError::Check(CheckError {
                    message: format!(
                        "expected modules only, found attribute grammar `{}`",
                        a.name
                    ),
                    pos: Pos { line: 1, col: 1 },
                }))
            }
        }
    }
    Ok(compiler)
}
