//! The semantic type language of OLGA and its compatibility relation.

use std::collections::HashMap;
use std::fmt;

use crate::ast::TypeExpr;
use crate::lexer::Pos;

/// A resolved OLGA type.
///
/// [`Ty::Any`] is the checker's polymorphic hole: the type of `[]`, of
/// `error(…)`, and of tree-pattern binders. It is compatible with every
/// type — a pragmatic rendition of the paper's partially implemented
/// polymorphism ("the most notable omissions are full polymorphism…").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integers.
    Int,
    /// Double-precision reals.
    Real,
    /// Booleans.
    Bool,
    /// Strings.
    Str,
    /// The unit type.
    Unit,
    /// Output-tree terms.
    Tree,
    /// Homogeneous lists.
    List(Box<Ty>),
    /// String-keyed finite maps.
    Map(Box<Ty>),
    /// Tuples.
    Tuple(Vec<Ty>),
    /// An opaque (abstract) imported type.
    Opaque(String),
    /// The polymorphic hole.
    Any,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Real => write!(f, "real"),
            Ty::Bool => write!(f, "bool"),
            Ty::Str => write!(f, "string"),
            Ty::Unit => write!(f, "unit"),
            Ty::Tree => write!(f, "tree"),
            Ty::List(t) => write!(f, "list of {t}"),
            Ty::Map(t) => write!(f, "map of {t}"),
            Ty::Tuple(ts) => {
                write!(f, "tuple(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::Opaque(n) => write!(f, "{n}"),
            Ty::Any => write!(f, "_"),
        }
    }
}

impl Ty {
    /// True if a value of `self` can be used where `other` is expected
    /// (symmetric; `Any` unifies with everything).
    pub fn compatible(&self, other: &Ty) -> bool {
        match (self, other) {
            (Ty::Any, _) | (_, Ty::Any) => true,
            (Ty::List(a), Ty::List(b)) | (Ty::Map(a), Ty::Map(b)) => a.compatible(b),
            (Ty::Tuple(a), Ty::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            (a, b) => a == b,
        }
    }

    /// The more specific of two compatible types.
    pub fn join(&self, other: &Ty) -> Ty {
        match (self, other) {
            (Ty::Any, t) => t.clone(),
            (t, Ty::Any) => t.clone(),
            (Ty::List(a), Ty::List(b)) => Ty::List(Box::new(a.join(b))),
            (Ty::Map(a), Ty::Map(b)) => Ty::Map(Box::new(a.join(b))),
            (Ty::Tuple(a), Ty::Tuple(b)) if a.len() == b.len() => {
                Ty::Tuple(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            (t, _) => t.clone(),
        }
    }

    /// The element type, if this is a list (`Any` yields `Any`).
    pub fn elem(&self) -> Option<Ty> {
        match self {
            Ty::List(t) => Some((**t).clone()),
            Ty::Any => Some(Ty::Any),
            _ => None,
        }
    }
}

/// Resolves a syntactic type against the visible named types.
///
/// # Errors
///
/// Returns the unknown type name and its position.
pub fn resolve_type(
    te: &TypeExpr,
    named: &HashMap<String, Ty>,
    pos: Pos,
) -> Result<Ty, (String, Pos)> {
    Ok(match te {
        TypeExpr::Int => Ty::Int,
        TypeExpr::Real => Ty::Real,
        TypeExpr::Bool => Ty::Bool,
        TypeExpr::Str => Ty::Str,
        TypeExpr::Unit => Ty::Unit,
        TypeExpr::Tree => Ty::Tree,
        TypeExpr::List(t) => Ty::List(Box::new(resolve_type(t, named, pos)?)),
        TypeExpr::Map(t) => Ty::Map(Box::new(resolve_type(t, named, pos)?)),
        TypeExpr::Tuple(ts) => Ty::Tuple(
            ts.iter()
                .map(|t| resolve_type(t, named, pos))
                .collect::<Result<_, _>>()?,
        ),
        TypeExpr::Named(n) => named.get(n).cloned().ok_or_else(|| (n.clone(), pos))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility() {
        assert!(Ty::Int.compatible(&Ty::Int));
        assert!(!Ty::Int.compatible(&Ty::Real));
        assert!(Ty::Any.compatible(&Ty::List(Box::new(Ty::Int))));
        assert!(Ty::List(Box::new(Ty::Any)).compatible(&Ty::List(Box::new(Ty::Str))));
        assert!(!Ty::List(Box::new(Ty::Int)).compatible(&Ty::List(Box::new(Ty::Str))));
        assert!(Ty::Tuple(vec![Ty::Int, Ty::Any]).compatible(&Ty::Tuple(vec![Ty::Int, Ty::Str])));
        assert!(!Ty::Tuple(vec![Ty::Int]).compatible(&Ty::Tuple(vec![Ty::Int, Ty::Int])));
    }

    #[test]
    fn join_prefers_specific() {
        let j = Ty::List(Box::new(Ty::Any)).join(&Ty::List(Box::new(Ty::Int)));
        assert_eq!(j, Ty::List(Box::new(Ty::Int)));
    }

    #[test]
    fn resolve_named() {
        let mut named = HashMap::new();
        named.insert("env".to_string(), Ty::Map(Box::new(Ty::Int)));
        let pos = Pos { line: 1, col: 1 };
        let t = resolve_type(&TypeExpr::Named("env".into()), &named, pos).unwrap();
        assert_eq!(t, Ty::Map(Box::new(Ty::Int)));
        assert!(resolve_type(&TypeExpr::Named("nope".into()), &named, pos).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::List(Box::new(Ty::Int)).to_string(), "list of int");
        assert_eq!(
            Ty::Tuple(vec![Ty::Int, Ty::Str]).to_string(),
            "tuple(int, string)"
        );
    }
}
