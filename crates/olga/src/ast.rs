//! Abstract syntax of the OLGA subset.

use crate::lexer::Pos;

/// A compilation unit: a module or an attribute grammar (paper §2.4:
/// "compilation units are declaration and definition modules … and AGs").
#[derive(Clone, Debug)]
pub enum Unit {
    /// A module of types, constants and functions.
    Module(Module),
    /// An attribute grammar (a tree-to-tree mapping).
    Ag(AgDef),
}

impl Unit {
    /// The unit's name.
    pub fn name(&self) -> &str {
        match self {
            Unit::Module(m) => &m.name,
            Unit::Ag(a) => &a.name,
        }
    }
}

/// `import a, b from M;`
#[derive(Clone, Debug)]
pub struct Import {
    /// Imported entity names.
    pub names: Vec<String>,
    /// Source module.
    pub from: String,
    /// Position of the `import`.
    pub pos: Pos,
}

/// `export x;` or `export opaque T;`
#[derive(Clone, Debug)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// Opaque exports hide a type's representation.
    pub opaque: bool,
}

/// `type T = <type>;`
#[derive(Clone, Debug)]
pub struct TypeDef {
    /// The type's name.
    pub name: String,
    /// Its definition.
    pub ty: TypeExpr,
    /// Position.
    pub pos: Pos,
}

/// `const c : T = e;`
#[derive(Clone, Debug)]
pub struct ConstDef {
    /// The constant's name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Defining expression.
    pub body: Expr,
    /// Position.
    pub pos: Pos,
}

/// `function f(x : T, …) : R = e;`
#[derive(Clone, Debug)]
pub struct FunDef {
    /// The function's name.
    pub name: String,
    /// Parameters with declared types.
    pub params: Vec<(String, TypeExpr)>,
    /// Return type.
    pub ret: TypeExpr,
    /// Body expression.
    pub body: Expr,
    /// Position.
    pub pos: Pos,
}

/// A module.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Imports.
    pub imports: Vec<Import>,
    /// Exports (empty = export everything).
    pub exports: Vec<Export>,
    /// Type definitions.
    pub types: Vec<TypeDef>,
    /// Constants.
    pub consts: Vec<ConstDef>,
    /// Functions.
    pub funcs: Vec<FunDef>,
}

/// `op : Lhs ::= Rhs…;`
#[derive(Clone, Debug)]
pub struct OpDef {
    /// Operator name.
    pub name: String,
    /// LHS phylum.
    pub lhs: String,
    /// RHS phyla.
    pub rhs: Vec<String>,
    /// Position.
    pub pos: Pos,
}

/// The semantic-rule model attached to an attribute declaration (paper
/// §2.4 / \[35\]: "attribute classes and semantic rules models … the
/// system will automatically instantiate these models into actual semantic
/// rules whenever necessary and applicable").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AttrClass {
    /// No model: only the default same-name copy rules are generated.
    #[default]
    Plain,
    /// Synthesized collection: a missing LHS rule concatenates the
    /// same-named attribute of every child that has it (`[]` if none).
    Concat,
    /// Synthesized collection: a missing LHS rule sums the same-named
    /// attribute over the children (`0` if none).
    Sum,
}

/// `synthesized value : real of Number, Seq;`
#[derive(Clone, Debug)]
pub struct AttrDef {
    /// True for synthesized, false for inherited.
    pub synthesized: bool,
    /// Attribute name.
    pub name: String,
    /// Value type.
    pub ty: TypeExpr,
    /// Phyla carrying the attribute.
    pub phyla: Vec<String>,
    /// The rule model (`with concat` / `with sum`).
    pub class: AttrClass,
    /// Position.
    pub pos: Pos,
}

/// `threaded lab : int of Stmts, Stmt;` — declares the inherited `lab_in`
/// and synthesized `lab_out` pair and instantiates the *threading* rule
/// model: the state snakes left-to-right through the children that carry
/// the pair, entering at `lab_in` and leaving at `lab_out`.
#[derive(Clone, Debug)]
pub struct ThreadDef {
    /// Base name (`lab` → `lab_in` / `lab_out`).
    pub name: String,
    /// Value type.
    pub ty: TypeExpr,
    /// Phyla carrying the pair.
    pub phyla: Vec<String>,
    /// Position.
    pub pos: Pos,
}

/// `local tmp : T := e;` inside a rule block.
#[derive(Clone, Debug)]
pub struct LocalDef {
    /// Local attribute name.
    pub name: String,
    /// Type.
    pub ty: TypeExpr,
    /// Defining expression.
    pub body: Expr,
    /// Position.
    pub pos: Pos,
}

/// An attribute-occurrence reference `Phylum.attr` / `Phylum$2.attr`.
#[derive(Clone, Debug, PartialEq)]
pub struct OccRef {
    /// Phylum name (or, after resolution, a local/variable name when
    /// `attr` is `None`).
    pub name: String,
    /// The `$k` disambiguator for repeated phyla (1-based among the
    /// occurrences of that phylum, LHS first).
    pub index: Option<u32>,
    /// Attribute name.
    pub attr: String,
    /// Position.
    pub pos: Pos,
}

/// `Target := expr;`
#[derive(Clone, Debug)]
pub struct Rule {
    /// Defined occurrence (`name` may be a local attribute, with no dot).
    pub target: RuleTarget,
    /// Defining expression.
    pub body: Expr,
    /// Position.
    pub pos: Pos,
}

/// The left-hand side of a rule.
#[derive(Clone, Debug)]
pub enum RuleTarget {
    /// An attribute occurrence.
    Occ(OccRef),
    /// A production-local attribute.
    Local(String, Pos),
}

/// `for op { … }` — the semantic rules of one operator.
#[derive(Clone, Debug)]
pub struct RuleBlock {
    /// The operator name.
    pub operator: String,
    /// Production-local attributes.
    pub locals: Vec<LocalDef>,
    /// The semantic rules.
    pub rules: Vec<Rule>,
    /// Position.
    pub pos: Pos,
}

/// A phase: a named group of rule blocks (paper §2.4: "an AG can be
/// structured into phases… a given production may appear in several phases
/// or not at all").
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name ("" for the anonymous top-level phase).
    pub name: String,
    /// Rule blocks.
    pub blocks: Vec<RuleBlock>,
}

/// An attribute-grammar definition.
#[derive(Clone, Debug, Default)]
pub struct AgDef {
    /// AG name.
    pub name: String,
    /// Imports.
    pub imports: Vec<Import>,
    /// Declared phyla.
    pub phyla: Vec<String>,
    /// The root phylum (default: the first declared).
    pub root: Option<String>,
    /// Operators (productions).
    pub operators: Vec<OpDef>,
    /// Attribute declarations.
    pub attrs: Vec<AttrDef>,
    /// Threaded attribute pairs.
    pub threads: Vec<ThreadDef>,
    /// AG-local functions.
    pub funcs: Vec<FunDef>,
    /// AG-local constants.
    pub consts: Vec<ConstDef>,
    /// AG-local types.
    pub types: Vec<TypeDef>,
    /// Phases (including the anonymous one).
    pub phases: Vec<Phase>,
}

/// A type expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `real`
    Real,
    /// `bool`
    Bool,
    /// `string`
    Str,
    /// `unit`
    Unit,
    /// `tree` — a constructed output-tree term.
    Tree,
    /// `list of T`
    List(Box<TypeExpr>),
    /// `map of T` (string keys).
    Map(Box<TypeExpr>),
    /// `tuple (T, …)`
    Tuple(Vec<TypeExpr>),
    /// A named (user-defined, possibly opaque) type.
    Named(String),
}

/// Binary operators.
pub type BinOp = &'static str;

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Real literal.
    Real(f64, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// String literal.
    Str(String, Pos),
    /// A variable: let binder, parameter, constant, or production-local
    /// attribute (resolved by the checker).
    Var(String, Pos),
    /// An attribute occurrence.
    Occ(OccRef),
    /// Function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Unary operator (`-`, `not`).
    Unop {
        /// The operator.
        op: BinOp,
        /// Operand.
        expr: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Binary operator.
    Binop {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `if c then t else e end`
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        els: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `let x = v in body end`
    Let {
        /// Binder.
        name: String,
        /// Bound value.
        value: Box<Expr>,
        /// Body.
        body: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `case e of p => e | … end`
    Case {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<(Pat, Expr)>,
        /// Position.
        pos: Pos,
    },
    /// `[e, …]`
    ListLit(Vec<Expr>, Pos),
    /// `(e, e, …)` (2+ elements).
    TupleLit(Vec<Expr>, Pos),
    /// `@op(e, …)` — output-tree construction (tree-to-tree mapping).
    TreeCons {
        /// Constructor (operator) name.
        op: String,
        /// Children.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Real(_, p)
            | Expr::Bool(_, p)
            | Expr::Str(_, p)
            | Expr::Var(_, p)
            | Expr::ListLit(_, p)
            | Expr::TupleLit(_, p) => *p,
            Expr::Occ(o) => o.pos,
            Expr::Call { pos, .. }
            | Expr::Unop { pos, .. }
            | Expr::Binop { pos, .. }
            | Expr::If { pos, .. }
            | Expr::Let { pos, .. }
            | Expr::Case { pos, .. }
            | Expr::TreeCons { pos, .. } => *pos,
        }
    }
}

/// A pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum Pat {
    /// `_`
    Wild(Pos),
    /// A binder.
    Bind(String, Pos),
    /// Integer literal pattern.
    Int(i64, Pos),
    /// Boolean literal pattern.
    Bool(bool, Pos),
    /// String literal pattern.
    Str(String, Pos),
    /// `[]` — the empty list.
    Nil(Pos),
    /// `p :: p`
    Cons(Box<Pat>, Box<Pat>, Pos),
    /// `(p, p, …)`
    Tuple(Vec<Pat>, Pos),
    /// `@op(p, …)` — output-tree pattern.
    Term {
        /// Constructor name.
        op: String,
        /// Child patterns.
        args: Vec<Pat>,
        /// Position.
        pos: Pos,
    },
}

impl Pat {
    /// Names bound by this pattern, in left-to-right order.
    pub fn binders(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Pat, out: &mut Vec<&'a str>) {
            match p {
                Pat::Bind(n, _) => out.push(n),
                Pat::Cons(a, b, _) => {
                    walk(a, out);
                    walk(b, out);
                }
                Pat::Tuple(ps, _) | Pat::Term { args: ps, .. } => {
                    for q in ps {
                        walk(q, out);
                    }
                }
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }
}
