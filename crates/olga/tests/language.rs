//! OLGA language-level integration tests: phases, nested constructs,
//! diagnostics quality, and end-to-end compilation corners.

use fnc2_olga::ast::Unit;
use fnc2_olga::{compile_ag_source, parse_unit, Compiler, OlgaError};

#[test]
fn rules_merge_across_phases() {
    // One operator's rules split over two phases (paper §2.4: "a given
    // production may appear in several phases or not at all").
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar phased;
          phylum S, A;
          operator mk : S ::= A;
          operator leaf : A ::= ;
          synthesized v : int of S;
          synthesized w : int of A;
          inherited seed : int of A;
          phase down {
            for mk { A.seed := 10; }
          }
          phase up {
            for mk { S.v := A.w; }
            for leaf { A.w := A.seed * 2; }
          }
        end
        "#,
    )
    .unwrap();
    let mk = g.production_by_name("mk").unwrap();
    assert_eq!(g.production(mk).rules().len(), 2);
    // Evaluate: v = 20.
    let c = fnc2_analysis::classify(&g, 1, fnc2_analysis::Inclusion::Long).unwrap();
    let seqs = fnc2_visit::build_visit_seqs(&g, &c.l_ordered.unwrap());
    let ev = fnc2_visit::Evaluator::new(&g, &seqs);
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let leaf = tb.op("leaf", &[]).unwrap();
    let root = tb.op("mk", &[leaf]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let (vals, _) = ev.evaluate(&tree, &Default::default()).unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let v = g.attr_by_name(s, "v").unwrap();
    assert_eq!(vals.get(&g, tree.root(), v), Some(&fnc2_ag::Value::Int(20)));
}

#[test]
fn duplicate_rule_across_phases_is_rejected() {
    let err = compile_ag_source(
        r#"
        attribute grammar dup;
          phylum S;
          operator leaf : S ::= ;
          synthesized v : int of S;
          phase one { for leaf { S.v := 1; } }
          phase two { for leaf { S.v := 2; } }
        end
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("defined twice"), "{err}");
}

#[test]
fn nested_control_flow_parses_and_types() {
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar nested;
          phylum S;
          operator leaf : S ::= ;
          synthesized v : int of S;
          function collatz(n : int, fuel : int) : int =
            if fuel = 0 then n
            else if n % 2 = 0 then collatz(n / 2, fuel - 1)
            else collatz(3 * n + 1, fuel - 1) end end;
          function classify(l : list of tuple(int, string)) : string =
            case l of
              [] => "none"
            | (k, name) :: rest =>
                if k > 0 then name else classify(rest) end
            end;
          for leaf {
            local pairs : list of tuple(int, string) :=
              [(0, "zero"), (collatz(7, 100), "seven")];
            S.v := strlen(classify(pairs));
          }
        end
        "#,
    )
    .unwrap();
    let c = fnc2_analysis::classify(&g, 1, fnc2_analysis::Inclusion::Long).unwrap();
    let seqs = fnc2_visit::build_visit_seqs(&g, &c.l_ordered.unwrap());
    let ev = fnc2_visit::Evaluator::new(&g, &seqs);
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let n = tb.op("leaf", &[]).unwrap();
    let tree = tb.finish_root(n).unwrap();
    let (vals, _) = ev.evaluate(&tree, &Default::default()).unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let v = g.attr_by_name(s, "v").unwrap();
    // collatz(7) reaches 1 within fuel → classify yields "seven" → 5.
    assert_eq!(vals.get(&g, tree.root(), v), Some(&fnc2_ag::Value::Int(5)));
}

#[test]
fn error_positions_are_precise() {
    // Line/column of the offending token, not just "error".
    let err = compile_ag_source(
        "attribute grammar g;\n  phylum S;\n  operator leaf : S ::= ;\n  synthesized v : int of S;\n  for leaf { S.v := \"x\" + 1; }\nend",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.starts_with("5:"), "{msg}");
    assert!(msg.contains("`+`"), "{msg}");
}

#[test]
fn case_arms_must_agree() {
    let err = compile_ag_source(
        r#"
        attribute grammar g;
          phylum S;
          operator leaf : S ::= ;
          synthesized v : int of S;
          function f(x : int) : int =
            case x of 0 => 1 | _ => "no" end;
          for leaf { S.v := f(0); }
        end
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("arms disagree"), "{err}");
}

#[test]
fn tuple_pattern_arity_checked() {
    let err = compile_ag_source(
        r#"
        attribute grammar g;
          phylum S;
          operator leaf : S ::= ;
          synthesized v : int of S;
          function f(p : tuple(int, int)) : int =
            case p of (a, b, c) => a end;
          for leaf { S.v := f((1, 2)); }
        end
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("tuple pattern"), "{err}");
}

#[test]
fn module_chains_resolve_transitively() {
    let src = r#"
        module base;
          export one;
          const one : int = 1;
        end
        module mid;
          import one from base;
          export two;
          const two : int = one + one;
        end
        attribute grammar top;
          import two from mid;
          phylum S;
          operator leaf : S ::= ;
          synthesized v : int of S;
          for leaf { S.v := two * 21; }
        end
    "#;
    let (g, _) = compile_ag_source(src).unwrap();
    let ev = fnc2_visit::DynamicEvaluator::new(&g);
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let n = tb.op("leaf", &[]).unwrap();
    let tree = tb.finish_root(n).unwrap();
    let (vals, _) = ev.evaluate(&tree, &Default::default()).unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let v = g.attr_by_name(s, "v").unwrap();
    assert_eq!(vals.get(&g, tree.root(), v), Some(&fnc2_ag::Value::Int(42)));
}

#[test]
fn import_of_missing_entity_reported_with_module_name() {
    let mut c = Compiler::new();
    let Unit::Module(m) = parse_unit("module m; export a; const a : int = 1; end").unwrap() else {
        panic!()
    };
    c.add_module(m).unwrap();
    let Unit::Module(bad) = parse_unit("module bad; import nope from m; end").unwrap() else {
        panic!()
    };
    let err = c.add_module(bad).unwrap_err();
    assert!(err.to_string().contains("does not export `nope`"), "{err}");
}

#[test]
fn ag_without_root_defaults_to_first_phylum() {
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar g;
          phylum First, Second;
          operator fleaf : First ::= Second;
          operator sleaf : Second ::= ;
          synthesized v : int of First;
          synthesized w : int of Second;
          for fleaf { First.v := Second.w; }
          for sleaf { Second.w := 9; }
        end
        "#,
    )
    .unwrap();
    assert_eq!(g.phylum(g.root()).name(), "First");
}

#[test]
fn multiple_ags_in_one_source_rejected() {
    let err = compile_ag_source(
        "attribute grammar a; phylum S; operator l : S ::= ; synthesized v : int of S; for l { S.v := 1; } end\nattribute grammar b; phylum T; operator m : T ::= ; synthesized w : int of T; for m { T.w := 2; } end",
    )
    .unwrap_err();
    assert!(matches!(err, OlgaError::Parse(_)), "{err}");
}
