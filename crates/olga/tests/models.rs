//! Rule-model tests (paper §2.4 / \[35\]): the `threaded` pair model and
//! the `with concat` / `with sum` collection classes.

use fnc2_olga::compile_ag_source;

fn eval_root(g: &fnc2_ag::Grammar, tree: &fnc2_ag::Tree, attr: &str) -> fnc2_ag::Value {
    let c = fnc2_analysis::classify(g, 1, fnc2_analysis::Inclusion::Long).unwrap();
    let seqs = fnc2_visit::build_visit_seqs(g, &c.l_ordered.unwrap());
    let ev = fnc2_visit::Evaluator::new(g, &seqs);
    let (vals, _) = ev.evaluate(tree, &Default::default()).unwrap();
    let ph = g.production(tree.node(tree.root()).production()).lhs();
    let a = g.attr_by_name(ph, attr).unwrap();
    vals.get(g, tree.root(), a).unwrap().clone()
}

#[test]
fn threaded_pair_generates_the_snake() {
    // A label counter threaded through a statement list, with NO explicit
    // threading rules except where the model must be overridden.
    let (g, info) = compile_ag_source(
        r#"
        attribute grammar labels;
          phylum Prog, Stmts, Stmt;
          root Prog;
          operator prog : Prog ::= Stmts;
          operator cons : Stmts ::= Stmt Stmts;
          operator nil  : Stmts ::= ;
          operator simple : Stmt ::= ;
          operator looped : Stmt ::= ;
          synthesized nlabels : int of Prog;
          threaded lab : int of Stmts, Stmt;
          for prog {
            Stmts.lab_in := 0;
            Prog.nlabels := Stmts.lab_out;
          }
          -- cons/nil get their threading entirely from the model.
          for simple { }
          for looped { Stmt.lab_out := Stmt.lab_in + 2; }
        end
        "#,
    )
    .unwrap();
    assert!(
        info.auto_copies >= 5,
        "threading was instantiated: {info:?}"
    );

    // simple needs lab_out := lab_in (model, no carriers); looped adds 2.
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let mut list = tb.op("nil", &[]).unwrap();
    for name in ["looped", "simple", "looped"] {
        let s = tb.op(name, &[]).unwrap();
        list = tb.op("cons", &[s, list]).unwrap();
    }
    let root = tb.op("prog", &[list]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    assert_eq!(eval_root(&g, &tree, "nlabels"), fnc2_ag::Value::Int(4));
}

#[test]
fn concat_class_collects_over_children() {
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar errsup;
          phylum S, A;
          root S;
          operator mk : S ::= A A A;
          operator ok : A ::= ;
          operator bad : A ::= ;
          synthesized errs : list of string of S, A with concat;
          for ok { A.errs := []; }
          for bad { A.errs := ["bad"]; }
          -- mk has NO errs rule: the concat model folds the children.
        end
        "#,
    )
    .unwrap();
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let a = tb.op("bad", &[]).unwrap();
    let b = tb.op("ok", &[]).unwrap();
    let c = tb.op("bad", &[]).unwrap();
    let root = tb.op("mk", &[a, b, c]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let errs = eval_root(&g, &tree, "errs");
    assert_eq!(errs.as_list().len(), 2);
}

#[test]
fn sum_class_and_leaf_default() {
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar sizes;
          phylum T;
          root T;
          operator fork : T ::= T T;
          operator leaf : T ::= ;
          synthesized size : int of T with sum;
          for leaf { T.size := 1; }
          -- fork's size = sum of children... plus nothing: the model sums.
        end
        "#,
    )
    .unwrap();
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let l1 = tb.op("leaf", &[]).unwrap();
    let l2 = tb.op("leaf", &[]).unwrap();
    let f1 = tb.op("fork", &[l1, l2]).unwrap();
    let l3 = tb.op("leaf", &[]).unwrap();
    let root = tb.op("fork", &[f1, l3]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    assert_eq!(eval_root(&g, &tree, "size"), fnc2_ag::Value::Int(3));
}

#[test]
fn explicit_rules_override_models() {
    // `fork` overrides the sum model with max-like semantics.
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar depth;
          phylum T;
          root T;
          operator fork : T ::= T T;
          operator leaf : T ::= ;
          synthesized d : int of T with sum;
          for leaf { T.d := 1; }
          for fork { T$1.d := 1 + max(T$2.d, T$3.d); }
        end
        "#,
    )
    .unwrap();
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let l1 = tb.op("leaf", &[]).unwrap();
    let l2 = tb.op("leaf", &[]).unwrap();
    let f1 = tb.op("fork", &[l1, l2]).unwrap();
    let l3 = tb.op("leaf", &[]).unwrap();
    let root = tb.op("fork", &[f1, l3]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    assert_eq!(eval_root(&g, &tree, "d"), fnc2_ag::Value::Int(3));
}

#[test]
fn class_misuse_is_rejected() {
    let e = compile_ag_source(
        "attribute grammar g; phylum S; operator l : S ::= ; inherited x : int of S with sum; for l { } end",
    )
    .unwrap_err();
    assert!(e.to_string().contains("synthesized"), "{e}");
    let e = compile_ag_source(
        "attribute grammar g; phylum S; operator l : S ::= ; synthesized x : bool of S with concat; for l { S.x := true; } end",
    )
    .unwrap_err();
    assert!(e.to_string().contains("list or string"), "{e}");
    let e = compile_ag_source(
        "attribute grammar g; phylum S; operator l : S ::= ; synthesized x : int of S with frobnicate; for l { S.x := 1; } end",
    )
    .unwrap_err();
    assert!(e.to_string().contains("unknown rule model"), "{e}");
}

#[test]
fn string_concat_class() {
    let (g, _) = compile_ag_source(
        r#"
        attribute grammar strs;
          phylum S, W;
          root S;
          operator mk : S ::= W W;
          operator word : W ::= ;
          synthesized text : string of S, W with concat;
          for word { W.text := token(); }
        end
        "#,
    )
    .unwrap();
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let w1 = tb
        .node_with_token(
            g.production_by_name("word").unwrap(),
            &[],
            Some(fnc2_ag::Value::str("foo")),
        )
        .unwrap();
    let w2 = tb
        .node_with_token(
            g.production_by_name("word").unwrap(),
            &[],
            Some(fnc2_ag::Value::str("bar")),
        )
        .unwrap();
    let root = tb.op("mk", &[w1, w2]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    assert_eq!(eval_root(&g, &tree, "text"), fnc2_ag::Value::str("foobar"));
}
