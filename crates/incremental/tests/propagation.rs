//! Incremental-evaluation integration tests: downward propagation through
//! sibling subtrees (the DNC scenario), internal-node replacement, and
//! wave accounting.

use fnc2_ag::{Grammar, GrammarBuilder, Occ, TreeBuilder, Value};
use fnc2_incremental::{Equality, IncrementalEvaluator};
use fnc2_visit::{DynamicEvaluator, RootInputs};

/// `root : S ::= A B` with `B.base := A.sum`: an edit inside A must
/// propagate *down into B's subtree* (synthesized → sibling inherited →
/// descendants), the pattern DNC start-anywhere evaluation exists for.
fn cross_grammar_ok() -> Grammar {
    let mut g = GrammarBuilder::new("cross");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let b = g.phylum("B");
    let out = g.syn(s, "out");
    let asum = g.syn(a, "sum");
    let bbase = g.inh(b, "base");
    let bout = g.syn(b, "out");
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
    let root = g.production("root", s, &[a, b]);
    g.copy(root, Occ::new(2, bbase), Occ::new(1, asum));
    g.copy(root, Occ::lhs(out), Occ::new(2, bout));
    let aleaf = g.production("aleaf", a, &[]);
    g.copy(aleaf, Occ::lhs(asum), fnc2_ag::Arg::Token);
    let achain = g.production("achain", a, &[a]);
    g.call(achain, Occ::lhs(asum), "succ", [Occ::new(1, asum).into()]);
    // B: a chain threading base down and echoing it back up.
    let bleaf = g.production("bleaf", b, &[]);
    g.copy(bleaf, Occ::lhs(bout), Occ::lhs(bbase));
    let bchain = g.production("bchain", b, &[b]);
    g.call(bchain, Occ::new(1, bbase), "succ", [Occ::lhs(bbase).into()]);
    g.copy(bchain, Occ::lhs(bout), Occ::new(1, bout));
    g.finish().unwrap()
}

fn build_cross(g: &Grammar, a_depth: usize, b_depth: usize, leaf: i64) -> fnc2_ag::Tree {
    let mut tb = TreeBuilder::new(g);
    let mut a = tb
        .node_with_token(
            g.production_by_name("aleaf").unwrap(),
            &[],
            Some(Value::Int(leaf)),
        )
        .unwrap();
    for _ in 0..a_depth {
        a = tb.op("achain", &[a]).unwrap();
    }
    let mut b = tb.op("bleaf", &[]).unwrap();
    for _ in 0..b_depth {
        b = tb.op("bchain", &[b]).unwrap();
    }
    let root = tb.op("root", &[a, b]).unwrap();
    tb.finish_root(root).unwrap()
}

#[test]
fn edit_in_a_propagates_down_through_b() {
    let g = cross_grammar_ok();
    let tree = build_cross(&g, 3, 8, 10);
    let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();
    // out = (10+3) + 8 = 21.
    assert_eq!(inc.value(inc.tree().root(), out), Some(&Value::Int(21)));

    // Replace A's leaf: 10 → 100.
    let victim = inc
        .tree()
        .preorder()
        .find(|&(n, _)| inc.tree().node(n).token().is_some())
        .map(|(n, _)| n)
        .unwrap();
    let mut tb = TreeBuilder::new(&g);
    let nl = tb
        .node_with_token(
            g.production_by_name("aleaf").unwrap(),
            &[],
            Some(Value::Int(100)),
        )
        .unwrap();
    let sub = tb.finish(nl);
    let stats = inc.replace_subtree(victim, &sub).unwrap();
    assert_eq!(inc.value(inc.tree().root(), out), Some(&Value::Int(111)));
    // The wave crossed: A's spine (3) + root + B's whole chain (9 nodes ×
    // 2 attrs-ish). Everything B-side had to be reevaluated.
    assert!(stats.changed >= 9 + 3, "{stats:?}");

    // And a from-scratch run agrees on every instance.
    let (want, _) = DynamicEvaluator::new(&g)
        .evaluate(inc.tree(), &RootInputs::new())
        .unwrap();
    for (n, _) in inc.tree().preorder() {
        let ph = inc.tree().phylum(&g, n);
        for &attr in g.phylum(ph).attrs() {
            assert_eq!(inc.value(n, attr), want.get(&g, n, attr));
        }
    }
}

#[test]
fn internal_node_replacement() {
    let g = cross_grammar_ok();
    let tree = build_cross(&g, 4, 2, 7);
    let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
    // Replace an *internal* achain node (with its whole subtree) by a
    // fresh two-level chain over a new leaf.
    let victim = inc
        .tree()
        .preorder()
        .find(|&(n, _)| {
            g.production(inc.tree().node(n).production()).name() == "achain"
                && inc.tree().depth(n) == 2
        })
        .map(|(n, _)| n)
        .unwrap();
    let mut tb = TreeBuilder::new(&g);
    let leaf = tb
        .node_with_token(
            g.production_by_name("aleaf").unwrap(),
            &[],
            Some(Value::Int(50)),
        )
        .unwrap();
    let c1 = tb.op("achain", &[leaf]).unwrap();
    let c2 = tb.op("achain", &[c1]).unwrap();
    let sub = tb.finish(c2);
    inc.replace_subtree(victim, &sub).unwrap();
    let (want, _) = DynamicEvaluator::new(&g)
        .evaluate(inc.tree(), &RootInputs::new())
        .unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();
    assert_eq!(
        inc.value(inc.tree().root(), out),
        want.get(&g, inc.tree().root(), out)
    );
}

#[test]
fn semantic_cut_stops_the_wave_early() {
    // A saturating rule (`min(sum, 50)`) makes most edits semantically
    // invisible one level up: the Changed/Unchanged control must cut the
    // wave immediately instead of reevaluating the whole 200-node spine.
    let mut g = GrammarBuilder::new("saturate");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let out = g.syn(s, "out");
    let asum = g.syn(a, "sum");
    g.func("cap50", 1, |v| Value::Int(v[0].as_int().min(50)));
    let root = g.production("root", s, &[a]);
    g.copy(root, Occ::lhs(out), Occ::new(1, asum));
    let aleaf = g.production("aleaf", a, &[]);
    g.copy(aleaf, Occ::lhs(asum), fnc2_ag::Arg::Token);
    let achain = g.production("achain", a, &[a]);
    g.call(achain, Occ::lhs(asum), "cap50", [Occ::new(1, asum).into()]);
    let g = g.finish().unwrap();

    let mut tb = TreeBuilder::new(&g);
    let mut cur = tb
        .node_with_token(
            g.production_by_name("aleaf").unwrap(),
            &[],
            Some(Value::Int(60)),
        )
        .unwrap();
    for _ in 0..200 {
        cur = tb.op("achain", &[cur]).unwrap();
    }
    let root = tb.op("root", &[cur]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
    let instances = inc.instance_count();

    // 60 → 70: still capped at 50 one level up.
    let victim = inc
        .tree()
        .preorder()
        .find(|&(n, _)| inc.tree().node(n).token().is_some())
        .map(|(n, _)| n)
        .unwrap();
    let mut tb = TreeBuilder::new(&g);
    let nl = tb
        .node_with_token(
            g.production_by_name("aleaf").unwrap(),
            &[],
            Some(Value::Int(70)),
        )
        .unwrap();
    let sub = tb.finish(nl);
    let stats = inc.replace_subtree(victim, &sub).unwrap();
    assert!(
        stats.reevaluated <= 3,
        "the cap cuts immediately: {stats:?} of {instances}"
    );
    assert!(stats.cut >= 1, "{stats:?}");
    let s_ph = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s_ph, "out").unwrap();
    assert_eq!(inc.value(inc.tree().root(), out), Some(&Value::Int(50)));
}
