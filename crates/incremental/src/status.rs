//! Semantic-control status and adaptable equality.

use std::fmt;
use std::sync::Arc;

use fnc2_ag::Value;

/// The status of an attribute instance during incremental reevaluation
/// (paper §2.1.2): the semantic-control functions compare old and new
/// values and propagate only past `Changed` instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The new value differs from the old one (per the chosen equality).
    Changed,
    /// The new value equals the old one: propagation is cut here.
    Unchanged,
    /// Not yet reevaluated in this wave.
    Unknown,
}

/// The boxed comparison implementation.
type EqImpl = Arc<dyn Fn(&Value, &Value) -> bool + Send + Sync>;

/// The notion of equality used to compare old and new attribute values.
///
/// The default compares with `PartialEq`; an application can plug a coarser
/// comparison (e.g. treating two symbol tables as equal when the visible
/// bindings agree) to cut propagation earlier — the paper calls this
/// adaptability a key source of versatility.
#[derive(Clone)]
pub struct Equality {
    eq: EqImpl,
    structural: bool,
}

impl Equality {
    /// Wraps a custom comparison.
    ///
    /// The comparison must be reflexive (`eq(v, v)` is `true` for every
    /// value): the evaluator takes bitwise-identical old/new values as
    /// unchanged without consulting it.
    pub fn new(eq: impl Fn(&Value, &Value) -> bool + Send + Sync + 'static) -> Self {
        Equality {
            eq: Arc::new(eq),
            structural: false,
        }
    }

    /// Applies the comparison.
    pub fn same(&self, a: &Value, b: &Value) -> bool {
        (self.eq)(a, b)
    }

    /// True when this is plain structural equality (the default). The
    /// incremental evaluator then decides change status by comparing
    /// hash-consed identities — O(1) instead of a deep traversal.
    pub fn is_structural(&self) -> bool {
        self.structural
    }
}

impl Default for Equality {
    /// Structural equality via `PartialEq`.
    fn default() -> Self {
        Equality {
            eq: Arc::new(|a: &Value, b: &Value| a == b),
            structural: true,
        }
    }
}

impl fmt::Debug for Equality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Equality(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_structural() {
        let eq = Equality::default();
        assert!(eq.same(&Value::Int(1), &Value::Int(1)));
        assert!(!eq.same(&Value::Int(1), &Value::Int(2)));
    }

    #[test]
    fn custom_equality() {
        // "Equal modulo sign".
        let eq = Equality::new(|a, b| a.as_int().abs() == b.as_int().abs());
        assert!(eq.same(&Value::Int(-3), &Value::Int(3)));
        assert!(!eq.same(&Value::Int(2), &Value::Int(3)));
    }
}
