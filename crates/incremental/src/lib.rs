//! # fnc2-incremental — incremental attribute evaluation (paper §2.1.2)
//!
//! FNC-2's incremental method rests on the **doubly non-circular** class:
//! an exhaustive evaluator whose argument selectors are closed both "from
//! below" (`IO`) and "from above" (`OI`) can *start at any node in the
//! tree*. Incrementality is then "a set of semantic-control functions
//! limiting the reevaluation process to affected instances", based on the
//! status of each attribute instance — **Changed**, **Unchanged** or
//! **Unknown** — and the comparison of old and new values, where "the
//! notion of equality used in this comparison can be adapted to the problem
//! at hand" ([`Equality`]). Multiple subtree replacements are supported
//! ([`IncrementalEvaluator::replace_subtrees`]).
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, TreeBuilder, Value};
//! use fnc2_incremental::IncrementalEvaluator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = GrammarBuilder::new("count");
//! let s = g.phylum("S");
//! let n = g.syn(s, "n");
//! let leaf = g.production("leaf", s, &[]);
//! g.constant(leaf, Occ::lhs(n), Value::Int(0));
//! let node = g.production("node", s, &[s]);
//! g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
//! g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
//! let grammar = g.finish()?;
//!
//! let mut tb = TreeBuilder::new(&grammar);
//! let a = tb.op("leaf", &[])?;
//! let b = tb.op("node", &[a])?;
//! let tree = tb.finish_root(b)?;
//!
//! let mut inc = IncrementalEvaluator::new(&grammar, tree, Default::default())?;
//! let root = inc.tree().root();
//! assert_eq!(inc.value(root, n), Some(&Value::Int(1)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod evaluator;
mod status;

pub use evaluator::{IncrementalEvaluator, IncrementalStats};
pub use status::{Equality, Status};
