//! The DNC-based incremental evaluator.
//!
//! Keeps a fully decorated tree; after one or more subtree replacements it
//! (1) evaluates the fresh subtree *starting at its root* — legal exactly
//! because DNC argument selectors are closed from above and below — and
//! (2) runs the semantic-control propagation: dependents of a **Changed**
//! instance are reevaluated, and propagation is **cut** at instances whose
//! new value equals the old one.

use std::collections::VecDeque;

use fnc2_ag::{
    AttrKind, AttrValues, Grammar, LocalFrames, LocalId, NodeId, ONode, Occ, ProductionId, Tree,
    TreeError, Value,
};
use fnc2_guard::{BudgetMeter, EvalBudget};
use fnc2_obs::{ChangeStatus, Counters, Event, Key, NoopRecorder, Recorder};
use fnc2_visit::{CompiledProgram, EvalError, InternCtx, RootInputs};

use crate::status::Equality;

/// Counters for one incremental wave (the §2.1.2 economy argument: compare
/// `reevaluated` with the instance count of a full evaluation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Rule evaluations performed (fresh subtree + propagation).
    pub reevaluated: usize,
    /// Instances whose value actually changed.
    pub changed: usize,
    /// Instances reevaluated to an equal value (propagation cut there).
    pub cut: usize,
}

impl IncrementalStats {
    /// The stats as seen through the shared [`fnc2_obs`] counter
    /// vocabulary (`cut` maps to `inc.unchanged`).
    pub fn from_counters(counters: &Counters) -> IncrementalStats {
        IncrementalStats {
            reevaluated: counters.get(Key::IncReevaluated) as usize,
            changed: counters.get(Key::IncChanged) as usize,
            cut: counters.get(Key::IncUnchanged) as usize,
        }
    }

    /// The stats as a dense counter block (inverse of
    /// [`IncrementalStats::from_counters`]; `inc.unknown` is tracked by
    /// the evaluator itself, not by this view).
    pub fn to_counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set(Key::IncReevaluated, self.reevaluated as u64);
        c.set(Key::IncChanged, self.changed as u64);
        c.set(Key::IncUnchanged, self.cut as u64);
        c
    }
}

/// An incrementally maintained attributed tree.
#[derive(Debug)]
pub struct IncrementalEvaluator<'g> {
    grammar: &'g Grammar,
    program: CompiledProgram,
    tree: Tree,
    values: AttrValues,
    locals: LocalFrames,
    inputs: RootInputs,
    eq: Equality,
    budget: EvalBudget,
    /// The hash-cons context, owned for the evaluator's whole lifetime so
    /// canonical identities stay comparable across edit waves (the O(1)
    /// cutoff compares a value interned in one wave with one interned in a
    /// later wave). `None` disables interning (`--no-intern`).
    ictx: Option<InternCtx>,
}

/// An attribute or local instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Inst {
    Attr(NodeId, fnc2_ag::AttrId),
    Local(NodeId, LocalId),
}

impl<'g> IncrementalEvaluator<'g> {
    /// Fully evaluates `tree` (which must have no root inherited
    /// attributes) and takes ownership of it.
    ///
    /// # Errors
    ///
    /// Fails if the tree's instances are circular or a token is missing.
    pub fn new(grammar: &'g Grammar, tree: Tree, eq: Equality) -> Result<Self, EvalError> {
        Self::with_inputs(grammar, tree, RootInputs::new(), eq)
    }

    /// Like [`new`](Self::new) but supplies the root's inherited
    /// attributes.
    ///
    /// # Errors
    ///
    /// Fails if a root input is missing or evaluation fails.
    pub fn with_inputs(
        grammar: &'g Grammar,
        tree: Tree,
        inputs: RootInputs,
        eq: Equality,
    ) -> Result<Self, EvalError> {
        Self::with_inputs_guarded(grammar, tree, inputs, eq, EvalBudget::default())
    }

    /// Like [`with_inputs`](Self::with_inputs) under an explicit
    /// [`EvalBudget`]; the budget also governs every later edit wave.
    ///
    /// # Errors
    ///
    /// As for [`with_inputs`](Self::with_inputs), plus
    /// [`EvalError::BudgetExceeded`] when a limit is exhausted.
    pub fn with_inputs_guarded(
        grammar: &'g Grammar,
        tree: Tree,
        inputs: RootInputs,
        eq: Equality,
        budget: EvalBudget,
    ) -> Result<Self, EvalError> {
        Self::with_inputs_guarded_interned(grammar, tree, inputs, eq, budget, true)
    }

    /// The fully general constructor:
    /// [`with_inputs_guarded`](Self::with_inputs_guarded) with hash-cons
    /// interning explicitly on or off. Interning is on by default — with
    /// the default structural [`Equality`] the change cutoff is then an
    /// O(1) identity comparison and semantic functions are memoized;
    /// `intern: false` is the `--no-intern` differential escape hatch.
    ///
    /// # Errors
    ///
    /// As for [`with_inputs_guarded`](Self::with_inputs_guarded).
    pub fn with_inputs_guarded_interned(
        grammar: &'g Grammar,
        tree: Tree,
        inputs: RootInputs,
        eq: Equality,
        budget: EvalBudget,
        intern: bool,
    ) -> Result<Self, EvalError> {
        let mut this = IncrementalEvaluator {
            grammar,
            program: CompiledProgram::new(grammar),
            tree,
            values: AttrValues::default(),
            locals: LocalFrames::default(),
            inputs,
            eq,
            budget,
            ictx: intern.then(InternCtx::local),
        };
        this.values = AttrValues::new(grammar, &this.tree);
        this.locals = LocalFrames::new(grammar, &this.tree);
        let root = this.tree.root();
        let root_ph = grammar.production(this.tree.node(root).production()).lhs();
        let mut icounters = Counters::new();
        for attr in grammar.inherited(root_ph) {
            let v = this
                .inputs
                .get(&attr)
                .ok_or_else(|| EvalError::MissingRootInput {
                    what: grammar.attr(attr).name().to_string(),
                })?
                .clone();
            let v = match &mut this.ictx {
                Some(ictx) => ictx.intern(v, &mut icounters).0,
                None => v,
            };
            this.values.set(grammar, root, attr, v);
        }
        let mut stats = IncrementalStats::default();
        let mut unknown = 0usize;
        let mut meter = BudgetMeter::new(&this.budget);
        this.eval_subtree(
            root,
            &mut stats,
            &mut unknown,
            &mut meter,
            &mut NoopRecorder,
        )?;
        Ok(this)
    }

    /// Replaces the budget governing subsequent edit waves.
    pub fn set_budget(&mut self, budget: EvalBudget) {
        self.budget = budget;
    }

    /// True when this evaluator hash-conses its values.
    pub fn interning(&self) -> bool {
        self.ictx.is_some()
    }

    /// Decides whether `old` and `new` are the same value for the change
    /// cutoff. Identity equality short-circuits first (two live values
    /// with one identity are the same allocation, and any reflexive
    /// equality accepts them); with interning and the default structural
    /// equality, two *stable* values with distinct identities are known
    /// different in O(1) — no deep traversal in either direction.
    fn values_same(&self, old: &Value, new: &Value) -> bool {
        if old.ident() == new.ident() {
            return true;
        }
        if self.eq.is_structural() {
            if let Some(ictx) = &self.ictx {
                if ictx.is_stable(old) && ictx.is_stable(new) {
                    return false;
                }
            }
            old == new
        } else {
            self.eq.same(old, new)
        }
    }

    /// Canonicalizes `v` when interning is on (setup paths outside the
    /// compiled rule programs).
    fn intern_value(&mut self, v: Value) -> Value {
        match &mut self.ictx {
            Some(ictx) => {
                let mut scratch = Counters::new();
                ictx.intern(v, &mut scratch).0
            }
            None => v,
        }
    }

    /// The decorated tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The current value of `(node, attr)`.
    pub fn value(&self, node: NodeId, attr: fnc2_ag::AttrId) -> Option<&Value> {
        self.values.get(self.grammar, node, attr)
    }

    /// Total number of live attribute instances (for comparing incremental
    /// cost with exhaustive cost).
    pub fn instance_count(&self) -> usize {
        self.tree
            .preorder()
            .map(|(n, _)| {
                let ph = self.tree.phylum(self.grammar, n);
                self.grammar.phylum(ph).attrs().len()
            })
            .sum()
    }

    /// Replaces the subtree at `at` and reevaluates incrementally.
    ///
    /// # Errors
    ///
    /// Fails if the replacement derives the wrong phylum, or evaluation
    /// fails.
    pub fn replace_subtree(
        &mut self,
        at: NodeId,
        replacement: &Tree,
    ) -> Result<IncrementalStats, Box<dyn std::error::Error>> {
        self.replace_subtrees(vec![(at, replacement.clone())])
    }

    /// Applies several subtree replacements, then runs one combined
    /// reevaluation wave (paper §2.1.2: "this method can accommodate
    /// multiple subtree replacements").
    ///
    /// # Errors
    ///
    /// Fails if a replacement derives the wrong phylum ([`TreeError`]), or
    /// evaluation fails ([`EvalError`]).
    pub fn replace_subtrees(
        &mut self,
        edits: Vec<(NodeId, Tree)>,
    ) -> Result<IncrementalStats, Box<dyn std::error::Error>> {
        self.replace_subtrees_recorded(edits, &mut NoopRecorder)
    }

    /// [`replace_subtrees`](Self::replace_subtrees), instrumented: the
    /// wave's counters are replayed into `rec` under the `inc.*` keys
    /// (`inc.unknown` counts fresh instances with no prior value), and
    /// when tracing is on every semantic-control decision emits a
    /// `StatusComputed` event.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`replace_subtrees`](Self::replace_subtrees).
    pub fn replace_subtrees_recorded<R: Recorder>(
        &mut self,
        edits: Vec<(NodeId, Tree)>,
        rec: &mut R,
    ) -> Result<IncrementalStats, Box<dyn std::error::Error>> {
        let g = self.grammar;
        let mut stats = IncrementalStats::default();
        let mut unknown = 0usize;
        let mut meter = BudgetMeter::new(&self.budget);
        let mut frontier: Vec<NodeId> = Vec::new();

        for (at, replacement) in edits {
            // Save the old boundary values of the replaced node.
            let ph = self.tree.phylum(g, at);
            let old: Vec<(fnc2_ag::AttrId, Option<Value>)> = g
                .phylum(ph)
                .attrs()
                .iter()
                .map(|&a| (a, self.values.get(g, at, a).cloned()))
                .collect();
            let new_root = self
                .tree
                .replace_subtree(g, at, &replacement)
                .map_err(Box::<TreeError>::new)?;
            self.values.sync(g, &self.tree);
            self.locals.sync(g, &self.tree);

            // Re-establish the inherited attributes of the new subtree root
            // (same defining rules in the parent, hence the old values).
            for (a, v) in &old {
                if g.attr(*a).kind() == AttrKind::Inherited {
                    if let Some(v) = v.clone() {
                        self.values.set(g, new_root, *a, v);
                    }
                }
            }
            if self.tree.node(new_root).parent().is_none() {
                // Replacing the root: supply the root inputs.
                for a in g.inherited(ph) {
                    if let Some(v) = self.inputs.get(&a) {
                        let v = v.clone();
                        let v = self.intern_value(v);
                        self.values.set(g, new_root, a, v);
                    }
                }
            }
            // Evaluate the fresh subtree, starting at its root (DNC).
            self.eval_subtree(new_root, &mut stats, &mut unknown, &mut meter, rec)
                .map_err(Box::new)?;
            // Seed propagation with the synthesized attributes whose value
            // differs from the replaced node's.
            for (a, oldv) in old {
                if g.attr(a).kind() != AttrKind::Synthesized {
                    continue;
                }
                let newv = self.values.get(g, new_root, a);
                let same = match (&oldv, newv) {
                    (Some(o), Some(n)) => self.values_same(o, n),
                    (None, None) => true,
                    _ => false,
                };
                if !same {
                    stats.changed += 1;
                    frontier.push(new_root);
                }
            }
        }

        // Propagation wave over changed instances.
        let mut queue: VecDeque<Inst> = VecDeque::new();
        let mut seed_changed: Vec<Inst> = Vec::new();
        for n in frontier {
            let ph = self.tree.phylum(g, n);
            for a in g.synthesized(ph) {
                seed_changed.push(Inst::Attr(n, a));
            }
        }
        for inst in seed_changed {
            self.enqueue_dependents(inst, &mut queue);
        }
        self.propagate(&mut queue, &mut stats, &mut unknown, &mut meter, rec)?;
        let mut counters = stats.to_counters();
        counters.set(Key::IncUnknown, unknown as u64);
        counters.replay(rec);
        Ok(stats)
    }

    /// Replaces the production applied at `at` **in place** (the
    /// operator-swap edit — see [`Tree::replace_production`]) and
    /// reevaluates incrementally: the node's attribute cells and everything
    /// it dominates are invalidated and recomputed, then the usual
    /// semantic-control propagation runs above it with equality cuts.
    ///
    /// # Errors
    ///
    /// Fails if the new production has a different LHS phylum or RHS
    /// signature ([`TreeError`]), or evaluation fails ([`EvalError`]).
    pub fn swap_production(
        &mut self,
        at: NodeId,
        production: ProductionId,
    ) -> Result<IncrementalStats, Box<dyn std::error::Error>> {
        self.swap_production_recorded(at, production, &mut NoopRecorder)
    }

    /// [`swap_production`](Self::swap_production), instrumented like
    /// [`replace_subtrees_recorded`](Self::replace_subtrees_recorded).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`swap_production`](Self::swap_production).
    pub fn swap_production_recorded<R: Recorder>(
        &mut self,
        at: NodeId,
        production: ProductionId,
        rec: &mut R,
    ) -> Result<IncrementalStats, Box<dyn std::error::Error>> {
        let g = self.grammar;
        let mut stats = IncrementalStats::default();
        let mut unknown = 0usize;
        let mut meter = BudgetMeter::new(&self.budget);
        let ph = self.tree.phylum(g, at);
        let old: Vec<(fnc2_ag::AttrId, Option<Value>)> = g
            .phylum(ph)
            .attrs()
            .iter()
            .map(|&a| (a, self.values.get(g, at, a).cloned()))
            .collect();
        self.tree
            .replace_production(g, at, production)
            .map_err(Box::<TreeError>::new)?;
        // The stores detect the in-place swap and drop the node's stale
        // cells; the subtree below is invalidated explicitly, since its
        // inherited attributes flowed through the replaced rules.
        self.values.sync(g, &self.tree);
        self.locals.sync(g, &self.tree);
        let mut subtree = vec![at];
        let mut i = 0;
        while i < subtree.len() {
            let n = subtree[i];
            i += 1;
            subtree.extend(self.tree.node(n).children().iter().copied());
        }
        for &n in &subtree[1..] {
            let nph = self.tree.phylum(g, n);
            for &a in g.phylum(nph).attrs() {
                self.values.clear(g, n, a);
            }
        }
        for &n in &subtree {
            let p = self.tree.node(n).production();
            for li in 0..g.production(p).locals().len() {
                self.locals.clear(n, LocalId::from_raw(li as u32));
            }
        }
        // Re-establish the node's inherited attributes: their defining
        // rules live in the (unchanged) parent production.
        for (a, v) in &old {
            if g.attr(*a).kind() == AttrKind::Inherited {
                if let Some(v) = v.clone() {
                    self.values.set(g, at, *a, v);
                }
            }
        }
        if self.tree.node(at).parent().is_none() {
            for a in g.inherited(ph) {
                if let Some(v) = self.inputs.get(&a) {
                    let v = v.clone();
                    let v = self.intern_value(v);
                    self.values.set(g, at, a, v);
                }
            }
        }
        self.eval_subtree(at, &mut stats, &mut unknown, &mut meter, rec)
            .map_err(Box::new)?;
        // Seed propagation with the synthesized attributes whose value
        // differs from the pre-swap decoration.
        let mut queue: VecDeque<Inst> = VecDeque::new();
        let mut changed_syn = false;
        for (a, oldv) in old {
            if g.attr(a).kind() != AttrKind::Synthesized {
                continue;
            }
            let newv = self.values.get(g, at, a);
            let same = match (&oldv, newv) {
                (Some(o), Some(n)) => self.values_same(o, n),
                (None, None) => true,
                _ => false,
            };
            if !same {
                stats.changed += 1;
                changed_syn = true;
            }
        }
        if changed_syn {
            for a in g.synthesized(ph) {
                self.enqueue_dependents(Inst::Attr(at, a), &mut queue);
            }
        }
        self.propagate(&mut queue, &mut stats, &mut unknown, &mut meter, rec)?;
        let mut counters = stats.to_counters();
        counters.set(Key::IncUnknown, unknown as u64);
        counters.replay(rec);
        Ok(stats)
    }

    /// Drains the propagation queue: dependents of changed instances are
    /// reevaluated, with propagation cut where the new value equals the
    /// old one.
    fn propagate<R: Recorder>(
        &mut self,
        queue: &mut VecDeque<Inst>,
        stats: &mut IncrementalStats,
        unknown: &mut usize,
        meter: &mut BudgetMeter,
        rec: &mut R,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let g = self.grammar;
        while let Some(inst) = queue.pop_front() {
            meter
                .step()
                .map_err(|k| Box::new(EvalError::budget(k, "incremental propagation")))?;
            let (newv, oldv) = {
                let old = match inst {
                    Inst::Attr(n, a) => self.values.get(g, n, a).cloned(),
                    Inst::Local(n, l) => self.locals.get(n, l).cloned(),
                };
                let new = self.compute_instance(inst, rec).map_err(Box::new)?;
                (new, old)
            };
            meter
                .grow_cells(newv.cell_count() as u64)
                .map_err(|k| Box::new(EvalError::budget(k, "incremental propagation")))?;
            stats.reevaluated += 1;
            let same = oldv
                .as_ref()
                .map(|o| self.values_same(o, &newv))
                .unwrap_or(false);
            if oldv.is_none() {
                *unknown += 1;
            }
            if rec.trace() {
                if let Inst::Attr(n, a) = inst {
                    let status = if oldv.is_none() {
                        ChangeStatus::Unknown
                    } else if same {
                        ChangeStatus::Unchanged
                    } else {
                        ChangeStatus::Changed
                    };
                    rec.emit(Event::StatusComputed {
                        node: n.index() as u32,
                        attr: a.index() as u32,
                        status,
                    });
                }
            }
            if same {
                stats.cut += 1;
                continue;
            }
            stats.changed += 1;
            match inst {
                Inst::Attr(n, a) => {
                    self.values.set(g, n, a, newv);
                }
                Inst::Local(n, l) => {
                    self.locals.set(n, l, newv);
                }
            }
            self.enqueue_dependents(inst, queue);
        }
        Ok(())
    }

    /// Exhaustively evaluates the subtree rooted at `node`, whose inherited
    /// attributes must already have values.
    fn eval_subtree<R: Recorder>(
        &mut self,
        node: NodeId,
        stats: &mut IncrementalStats,
        unknown: &mut usize,
        meter: &mut BudgetMeter,
        rec: &mut R,
    ) -> Result<(), EvalError> {
        let g = self.grammar;
        // Demand-driven over the subtree's instances (memoized by
        // presence).
        let subtree: Vec<NodeId> = {
            let mut v = Vec::new();
            let mut stack = vec![node];
            while let Some(n) = stack.pop() {
                v.push(n);
                stack.extend(self.tree.node(n).children().iter().copied());
            }
            v
        };
        let goals: Vec<Inst> = subtree
            .iter()
            .flat_map(|&n| {
                let ph = self.tree.phylum(g, n);
                g.phylum(ph)
                    .attrs()
                    .iter()
                    .map(move |&a| Inst::Attr(n, a))
                    .collect::<Vec<_>>()
            })
            .collect();
        for goal in goals {
            self.demand(goal, stats, unknown, meter, rec)?;
        }
        Ok(())
    }

    /// Demand-evaluates `goal` within the subtree rooted at `limit`;
    /// instances outside the subtree must already have values.
    ///
    /// Runs on an explicit work-stack so tree depth is a checked budget
    /// rather than native stack exhaustion. DNC membership guarantees the
    /// demand graph is acyclic; the depth budget bounds accidental cycles
    /// from malformed programs.
    fn demand<R: Recorder>(
        &mut self,
        goal: Inst,
        stats: &mut IncrementalStats,
        unknown: &mut usize,
        meter: &mut BudgetMeter,
        rec: &mut R,
    ) -> Result<(), EvalError> {
        enum Task {
            Enter(Inst),
            Finish(Inst),
        }
        let g = self.grammar;
        let mut stack: Vec<Task> = vec![Task::Enter(goal)];
        while let Some(task) = stack.pop() {
            match task {
                Task::Enter(goal) => {
                    match goal {
                        Inst::Attr(n, a) if self.values.get(g, n, a).is_some() => continue,
                        Inst::Local(n, l) if self.locals.get(n, l).is_some() => continue,
                        _ => {}
                    }
                    // Resolve the defining rule through the compiled index.
                    let (def_node, target) = self.definition_of(goal);
                    let p = self.tree.node(def_node).production();
                    let rule_ix = self
                        .program
                        .production(p)
                        .rule_index(target)
                        .expect("validated grammar");
                    let rule = &g.production(p).rules()[rule_ix as usize];
                    stack.push(Task::Finish(goal));
                    let base = stack.len();
                    for arg in rule.read_nodes() {
                        let sub = match arg {
                            ONode::Attr(Occ { pos, attr }) => {
                                let at = if pos == 0 {
                                    def_node
                                } else {
                                    self.tree.node(def_node).children()[pos as usize - 1]
                                };
                                Inst::Attr(at, attr)
                            }
                            ONode::Local(l) => Inst::Local(def_node, l),
                        };
                        stack.push(Task::Enter(sub));
                    }
                    stack[base..].reverse();
                    meter.check_depth(stack.len()).map_err(|k| {
                        EvalError::budget(k, format!("incremental evaluator, {def_node}"))
                    })?;
                }
                Task::Finish(goal) => {
                    meter
                        .step()
                        .map_err(|k| EvalError::budget(k, "incremental evaluator"))?;
                    let v = self.compute_instance(goal, rec)?;
                    meter
                        .grow_cells(v.cell_count() as u64)
                        .map_err(|k| EvalError::budget(k, "incremental evaluator"))?;
                    stats.reevaluated += 1;
                    *unknown += 1;
                    if rec.trace() {
                        if let Inst::Attr(n, a) = goal {
                            rec.emit(Event::StatusComputed {
                                node: n.index() as u32,
                                attr: a.index() as u32,
                                status: ChangeStatus::Unknown,
                            });
                        }
                    }
                    match goal {
                        Inst::Attr(n, a) => {
                            self.values.set(g, n, a, v);
                        }
                        Inst::Local(n, l) => {
                            self.locals.set(n, l, v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The (defining node, target occurrence) of an instance.
    fn definition_of(&self, inst: Inst) -> (NodeId, ONode) {
        let g = self.grammar;
        match inst {
            Inst::Local(n, l) => (n, ONode::Local(l)),
            Inst::Attr(n, a) => match g.attr(a).kind() {
                AttrKind::Synthesized => (n, ONode::Attr(Occ::lhs(a))),
                AttrKind::Inherited => {
                    let parent = self
                        .tree
                        .node(n)
                        .parent()
                        .expect("root inherited supplied as inputs");
                    let pos = self.tree.child_index(n).expect("child position") as u16;
                    (parent, ONode::Attr(Occ::new(pos, a)))
                }
            },
        }
    }

    /// Recomputes an instance's value through the slot-compiled program,
    /// replaying fetch counters into `rec` and — when profiling or tracing
    /// is on — attributing the firing to its `(production, rule)` pair.
    /// With interning on, the result is canonical and the memo cache may
    /// answer without firing the semantic function at all.
    fn compute_instance<R: Recorder>(
        &mut self,
        inst: Inst,
        rec: &mut R,
    ) -> Result<Value, EvalError> {
        let g = self.grammar;
        let (def_node, target) = self.definition_of(inst);
        let p = self.tree.node(def_node).production();
        let rule = self
            .program
            .production(p)
            .rule_index(target)
            .expect("validated grammar");
        let mut buf = Vec::with_capacity(4);
        let mut counters = Counters::new();
        let t0 = if rec.profiling() && rec.sample_rule() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let (v, is_copy) = self.program.eval_rule(
            g,
            &self.tree,
            p,
            rule,
            def_node,
            &self.values,
            &self.locals,
            &mut buf,
            &mut counters,
            self.ictx.as_mut(),
        )?;
        counters.replay(rec);
        if rec.profiling() {
            rec.rule_cost(
                p.index() as u32,
                rule,
                is_copy,
                t0.map(|t| t.elapsed().as_nanos() as u64),
            );
        }
        if rec.trace() {
            rec.emit(Event::RuleFired {
                node: def_node.index() as u32,
                production: p.index() as u32,
                rule,
            });
        }
        Ok(v)
    }

    /// Enqueues the instances that read `inst`.
    fn enqueue_dependents(&self, inst: Inst, queue: &mut VecDeque<Inst>) {
        let g = self.grammar;
        let mut push = |i: Inst| {
            if !queue.contains(&i) {
                queue.push_back(i);
            }
        };
        // Readers live in the production at the node (LHS occurrence of an
        // attribute, or a local) and — for attributes — in the parent's
        // production (child occurrence).
        let mut contexts: Vec<(NodeId, ONode)> = Vec::new();
        match inst {
            Inst::Local(n, l) => contexts.push((n, ONode::Local(l))),
            Inst::Attr(n, a) => {
                contexts.push((n, ONode::Attr(Occ::lhs(a))));
                if let Some(parent) = self.tree.node(n).parent() {
                    let pos = self.tree.child_index(n).expect("child position") as u16;
                    contexts.push((parent, ONode::Attr(Occ::new(pos, a))));
                }
            }
        }
        for (host, as_node) in contexts {
            let p = self.tree.node(host).production();
            for rule in g.production(p).rules() {
                if !rule.read_nodes().any(|r| r == as_node) {
                    continue;
                }
                let dep = match rule.target() {
                    ONode::Attr(Occ { pos, attr }) => {
                        let at = if pos == 0 {
                            host
                        } else {
                            self.tree.node(host).children()[pos as usize - 1]
                        };
                        Inst::Attr(at, attr)
                    }
                    ONode::Local(l) => Inst::Local(host, l),
                };
                push(dep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, TreeBuilder, Value};
    use fnc2_visit::DynamicEvaluator;

    use super::*;

    /// Summing leaves with a threaded depth: exercises inherited and
    /// synthesized propagation.
    fn sum_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("sum");
        let s = g.phylum("S");
        let e = g.phylum("E");
        let total = g.syn(s, "total");
        let depth = g.inh(e, "depth");
        let sum = g.syn(e, "sum");
        g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
        g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
        let root = g.production("root", s, &[e]);
        g.copy(root, Occ::lhs(total), Occ::new(1, sum));
        g.constant(root, Occ::new(1, depth), Value::Int(0));
        let fork = g.production("fork", e, &[e, e]);
        g.call(fork, Occ::new(1, depth), "succ", [Occ::lhs(depth).into()]);
        g.call(fork, Occ::new(2, depth), "succ", [Occ::lhs(depth).into()]);
        g.call(
            fork,
            Occ::lhs(sum),
            "add",
            [Occ::new(1, sum).into(), Occ::new(2, sum).into()],
        );
        let leaf = g.production("leafe", e, &[]);
        g.copy(leaf, Occ::lhs(sum), fnc2_ag::Arg::Token);
        // Same signature as `fork` but combines with max — the in-place
        // production-swap target.
        g.func("maxf", 2, |v| Value::Int(v[0].as_int().max(v[1].as_int())));
        let forkmax = g.production("forkmax", e, &[e, e]);
        g.call(
            forkmax,
            Occ::new(1, depth),
            "succ",
            [Occ::lhs(depth).into()],
        );
        g.call(
            forkmax,
            Occ::new(2, depth),
            "succ",
            [Occ::lhs(depth).into()],
        );
        g.call(
            forkmax,
            Occ::lhs(sum),
            "maxf",
            [Occ::new(1, sum).into(), Occ::new(2, sum).into()],
        );
        g.finish().unwrap()
    }

    fn build_tree(g: &Grammar, values: &[i64]) -> Tree {
        let mut tb = TreeBuilder::new(g);
        let leafe = g.production_by_name("leafe").unwrap();
        let mut nodes: Vec<NodeId> = values
            .iter()
            .map(|&v| tb.node_with_token(leafe, &[], Some(Value::Int(v))).unwrap())
            .collect();
        while nodes.len() > 1 {
            let b = nodes.pop().unwrap();
            let a = nodes.pop().unwrap();
            nodes.push(tb.op("fork", &[a, b]).unwrap());
        }
        let root = tb.op("root", &[nodes[0]]).unwrap();
        tb.finish_root(root).unwrap()
    }

    #[test]
    fn initial_evaluation_matches_dynamic() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[1, 2, 3, 4]);
        let dynev = DynamicEvaluator::new(&g);
        let (want, _) = dynev.evaluate(&tree, &RootInputs::new()).unwrap();
        let inc = IncrementalEvaluator::new(&g, tree.clone(), Equality::default()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let total = g.attr_by_name(s, "total").unwrap();
        assert_eq!(
            inc.value(tree.root(), total),
            want.get(&g, tree.root(), total)
        );
        assert_eq!(inc.value(tree.root(), total), Some(&Value::Int(10)));
    }

    #[test]
    fn small_edit_reevaluates_little() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
        let total_instances = inc.instance_count();

        // Replace one leaf (token 1 -> 100).
        let target = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).token() == Some(&Value::Int(1)))
            .map(|(n, _)| n)
            .unwrap();
        let mut tb = TreeBuilder::new(&g);
        let leafe = g.production_by_name("leafe").unwrap();
        let nl = tb
            .node_with_token(leafe, &[], Some(Value::Int(100)))
            .unwrap();
        let sub = tb.finish(nl);
        let stats = inc.replace_subtree(target, &sub).unwrap();

        let s = g.phylum_by_name("S").unwrap();
        let total = g.attr_by_name(s, "total").unwrap();
        let root = inc.tree().root();
        assert_eq!(inc.value(root, total), Some(&Value::Int(135)));
        // Only the spine to the root reevaluates, far less than everything.
        assert!(
            stats.reevaluated * 2 < total_instances,
            "reevaluated {} of {total_instances}",
            stats.reevaluated
        );
    }

    #[test]
    fn equal_value_edit_cuts_propagation() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[5, 2, 3]);
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
        // Replace the 5-leaf by another 5-leaf: nothing changes above.
        let target = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).token() == Some(&Value::Int(5)))
            .map(|(n, _)| n)
            .unwrap();
        let mut tb = TreeBuilder::new(&g);
        let leafe = g.production_by_name("leafe").unwrap();
        let nl = tb.node_with_token(leafe, &[], Some(Value::Int(5))).unwrap();
        let sub = tb.finish(nl);
        let stats = inc.replace_subtree(target, &sub).unwrap();
        // The fresh leaf is evaluated but no propagation occurs.
        assert_eq!(stats.changed, 0, "{stats:?}");
    }

    #[test]
    fn multiple_replacements_in_one_wave() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[1, 2, 3, 4]);
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
        let leaves: Vec<NodeId> = inc
            .tree()
            .preorder()
            .filter(|&(n, _)| inc.tree().node(n).children().is_empty())
            .map(|(n, _)| n)
            .collect();
        let leafe = g.production_by_name("leafe").unwrap();
        let mk = |v: i64| {
            let mut tb = TreeBuilder::new(&g);
            let nl = tb.node_with_token(leafe, &[], Some(Value::Int(v))).unwrap();
            tb.finish(nl)
        };
        let edits = vec![(leaves[0], mk(10)), (leaves[1], mk(20))];
        inc.replace_subtrees(edits).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let total = g.attr_by_name(s, "total").unwrap();
        // Replaced two of {1,2,3,4} (preorder order) by 10 and 20.
        let dynev = DynamicEvaluator::new(&g);
        let (want, _) = dynev.evaluate(inc.tree(), &RootInputs::new()).unwrap();
        assert_eq!(
            inc.value(inc.tree().root(), total),
            want.get(&g, inc.tree().root(), total)
        );
    }

    #[test]
    fn custom_equality_cuts_more() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[4, 2, 3]);
        // Equality modulo 2: replacing 4 by 6 changes the leaf sum 4→6 but
        // both are even, so the coarse equality cuts immediately.
        let eq = Equality::new(|a, b| a.as_int() % 2 == b.as_int() % 2);
        let mut inc = IncrementalEvaluator::new(&g, tree, eq).unwrap();
        let target = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).token() == Some(&Value::Int(4)))
            .map(|(n, _)| n)
            .unwrap();
        let mut tb = TreeBuilder::new(&g);
        let leafe = g.production_by_name("leafe").unwrap();
        let nl = tb.node_with_token(leafe, &[], Some(Value::Int(6))).unwrap();
        let sub = tb.finish(nl);
        let stats = inc.replace_subtree(target, &sub).unwrap();
        assert_eq!(stats.changed, 0, "{stats:?}");
    }

    #[test]
    fn production_swap_reevaluates_subtree() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[1, 2, 3, 4]);
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let total = g.attr_by_name(s, "total").unwrap();
        assert_eq!(inc.value(inc.tree().root(), total), Some(&Value::Int(10)));

        // Swap the topmost fork (sum) for forkmax (max) in place.
        let fork = g.production_by_name("fork").unwrap();
        let forkmax = g.production_by_name("forkmax").unwrap();
        let target = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).production() == fork)
            .map(|(n, _)| n)
            .unwrap();
        inc.swap_production(target, forkmax).unwrap();

        // The edited tree must match a from-scratch evaluation.
        let dynev = DynamicEvaluator::new(&g);
        let (want, _) = dynev.evaluate(inc.tree(), &RootInputs::new()).unwrap();
        assert_eq!(
            inc.value(inc.tree().root(), total),
            want.get(&g, inc.tree().root(), total)
        );
        // fork(1, fork(2, fork(3, 4))) → max(1, 2+3+4) = 9.
        assert_eq!(inc.value(inc.tree().root(), total), Some(&Value::Int(9)));

        // Swapping back restores the original answer.
        inc.swap_production(target, fork).unwrap();
        assert_eq!(inc.value(inc.tree().root(), total), Some(&Value::Int(10)));

        // Signature mismatches are rejected without mutating the tree.
        let root_p = g.production_by_name("root").unwrap();
        assert!(inc.swap_production(target, root_p).is_err());
        assert_eq!(inc.value(inc.tree().root(), total), Some(&Value::Int(10)));
    }

    #[test]
    fn production_swap_deep_in_tree() {
        let g = sum_grammar();
        let tree = build_tree(&g, &[1, 2, 3, 4, 5]);
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).unwrap();
        let fork = g.production_by_name("fork").unwrap();
        let forkmax = g.production_by_name("forkmax").unwrap();
        // Deepest fork: the last one in preorder.
        let target = inc
            .tree()
            .preorder()
            .filter(|&(n, _)| inc.tree().node(n).production() == fork)
            .map(|(n, _)| n)
            .last()
            .unwrap();
        let stats = inc.swap_production(target, forkmax).unwrap();
        let dynev = DynamicEvaluator::new(&g);
        let (want, _) = dynev.evaluate(inc.tree(), &RootInputs::new()).unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let total = g.attr_by_name(s, "total").unwrap();
        assert_eq!(
            inc.value(inc.tree().root(), total),
            want.get(&g, inc.tree().root(), total)
        );
        // Propagation from a deep swap changes the spine above it.
        assert!(stats.changed > 0, "{stats:?}");
    }
}
