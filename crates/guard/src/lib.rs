//! # fnc2-guard — resource-governed, fault-isolated evaluation
//!
//! FNC-2's static guarantees (SNC termination, lifetime-analyzed storage)
//! say nothing about *how much* work a hostile or pathological input tree
//! can demand: a 100k-deep chain used to overflow the recursive visit
//! drivers, and nothing bounded rule-eval steps, aggregate value size or
//! wall-clock time. This crate supplies the dynamic safety net:
//!
//! - [`EvalBudget`] — declarative limits (steps, visit depth, aggregate
//!   value cells, optional [`Deadline`]) shared by every evaluator;
//! - [`BudgetMeter`] — the cheap per-evaluation counter that enforces a
//!   budget on the hot path (integer decrements; the deadline is polled
//!   every [`DEADLINE_POLL_MASK`]` + 1` steps so `Instant::now` stays off
//!   the common path);
//! - [`FaultPlan`] / [`InjectedFault`] — deterministic, seed-driven fault
//!   injection used by the fuzz oracle and the batch-determinism tests to
//!   prove that every fault surfaces as a *classified* error, never a
//!   process abort.
//!
//! The crate is dependency-free on purpose: `fnc2-visit`, `fnc2-space`,
//! `fnc2-incremental` and `fnc2-par` all sit on top of it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::time::{Duration, Instant};

/// Which budget dimension was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// Rule-evaluation step budget ([`EvalBudget::max_steps`]).
    Steps,
    /// Visit/demand depth budget ([`EvalBudget::max_depth`]).
    Depth,
    /// Aggregate produced-value size budget ([`EvalBudget::max_value_cells`]).
    ValueCells,
    /// The wall-clock [`Deadline`] expired.
    Deadline,
    /// A deterministic fault injected by a [`FaultPlan`] (tests/fuzzing).
    Fault,
}

impl BudgetKind {
    /// Stable lowercase name, used in diagnostics and metrics.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::Steps => "steps",
            BudgetKind::Depth => "depth",
            BudgetKind::ValueCells => "value-cells",
            BudgetKind::Deadline => "deadline",
            BudgetKind::Fault => "injected-fault",
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A cheap polled wall-clock deadline token.
///
/// Carries the absolute expiry instant; [`BudgetMeter`] polls it only once
/// every few hundred steps, so creating one costs a single `Instant::now`
/// and enforcing it costs (amortized) nearly nothing.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Self::after(Duration::from_millis(ms))
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Default step budget: effectively unlimited for legitimate grammars but
/// finite, so a run away interpreter loop still terminates with a
/// diagnostic.
pub const DEFAULT_MAX_STEPS: u64 = 1 << 40;
/// Default visit-depth budget. Far above the 100k-deep pathological corpus
/// (the explicit work-stacks heap-allocate frames, so this bounds memory,
/// not the thread stack).
pub const DEFAULT_MAX_DEPTH: usize = 1 << 21;
/// Default aggregate value-cell budget (~4G cells).
pub const DEFAULT_MAX_VALUE_CELLS: u64 = 1 << 32;
/// The deadline is polled when `steps & DEADLINE_POLL_MASK == 0`.
pub const DEADLINE_POLL_MASK: u64 = 0xff;

/// Declarative evaluation limits, threaded through every evaluator.
///
/// `Default` gives generous-but-finite limits (pathological corpus trees
/// pass; unbounded loops and value balloons do not). Use
/// [`EvalBudget::unlimited`] to switch every check off.
#[derive(Clone, Copy, Debug)]
pub struct EvalBudget {
    /// Maximum rule evaluations (including copy rules) per evaluation.
    pub max_steps: u64,
    /// Maximum visit/demand nesting depth.
    pub max_depth: usize,
    /// Maximum aggregate cells ([`cell_count`-style]) of produced values.
    pub max_value_cells: u64,
    /// Optional wall-clock deadline.
    pub deadline: Option<Deadline>,
}

impl Default for EvalBudget {
    fn default() -> Self {
        EvalBudget {
            max_steps: DEFAULT_MAX_STEPS,
            max_depth: DEFAULT_MAX_DEPTH,
            max_value_cells: DEFAULT_MAX_VALUE_CELLS,
            deadline: None,
        }
    }
}

impl EvalBudget {
    /// A budget with every check effectively disabled.
    pub fn unlimited() -> Self {
        EvalBudget {
            max_steps: u64::MAX,
            max_depth: usize::MAX,
            max_value_cells: u64::MAX,
            deadline: None,
        }
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the depth budget.
    pub fn with_max_depth(mut self, n: usize) -> Self {
        self.max_depth = n;
        self
    }

    /// Sets the value-cell budget.
    pub fn with_max_value_cells(mut self, n: u64) -> Self {
        self.max_value_cells = n;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Deadline) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// What an armed injected fault does when it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultAction {
    Fail,
    Panic,
    ExpireDeadline,
}

/// A deterministic fault to inject into one evaluation (tests/fuzzing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The rule evaluated at step `step` fails with a classified error
    /// ([`BudgetKind::Fault`]).
    FailRule {
        /// 1-based step at which the failure fires.
        step: u64,
    },
    /// The evaluation panics at step `step` (caught by the batch driver).
    PanicAtStep {
        /// 1-based step at which the panic fires.
        step: u64,
    },
    /// The worker panics before the evaluation even starts.
    PanicOnEntry,
    /// The worker reports a *semantic* failure (a non-budget classified
    /// error carrying [`INJECTED_FAILURE_MSG`]) before the evaluation
    /// starts — the only injected fault that exercises the plain
    /// `Failed` classification rather than a budget trip or a panic.
    FailOnEntry,
    /// The deadline "expires" at step `step` ([`BudgetKind::Deadline`]).
    ExpireDeadline {
        /// 1-based step at which the deadline reports expiry.
        step: u64,
    },
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFault::FailRule { step } => write!(f, "fail-rule@{step}"),
            InjectedFault::PanicAtStep { step } => write!(f, "panic@{step}"),
            InjectedFault::PanicOnEntry => write!(f, "panic-on-entry"),
            InjectedFault::FailOnEntry => write!(f, "fail-on-entry"),
            InjectedFault::ExpireDeadline { step } => write!(f, "deadline@{step}"),
        }
    }
}

/// The message used by injected panics, so tests can tell an injected
/// panic apart from a real defect.
pub const INJECTED_PANIC_MSG: &str = "fnc2-guard injected fault: panic";

/// The message carried by [`InjectedFault::FailOnEntry`] errors, so tests
/// can tell an injected semantic failure apart from a real defect.
pub const INJECTED_FAILURE_MSG: &str = "fnc2-guard injected fault: semantic failure";

/// Per-evaluation enforcement state for an [`EvalBudget`].
///
/// All checks are `#[inline]` integer compares; the meter is created once
/// per evaluation and dropped with it.
#[derive(Debug)]
pub struct BudgetMeter {
    steps: u64,
    max_steps: u64,
    max_depth: usize,
    cells: u64,
    max_cells: u64,
    deadline: Option<Deadline>,
    bomb: Option<(u64, FaultAction)>,
}

impl BudgetMeter {
    /// A meter enforcing `budget`, with no injected fault.
    pub fn new(budget: &EvalBudget) -> Self {
        Self::with_fault(budget, None)
    }

    /// A meter enforcing `budget` with an optional injected fault armed.
    pub fn with_fault(budget: &EvalBudget, fault: Option<InjectedFault>) -> Self {
        let bomb = match fault {
            Some(InjectedFault::FailRule { step }) => Some((step, FaultAction::Fail)),
            Some(InjectedFault::PanicAtStep { step }) => Some((step, FaultAction::Panic)),
            Some(InjectedFault::ExpireDeadline { step }) => {
                Some((step, FaultAction::ExpireDeadline))
            }
            // Entry faults are the batch driver's job, not the meter's.
            Some(InjectedFault::PanicOnEntry) | Some(InjectedFault::FailOnEntry) | None => None,
        };
        BudgetMeter {
            steps: 0,
            max_steps: budget.max_steps,
            max_depth: budget.max_depth,
            cells: 0,
            max_cells: budget.max_value_cells,
            deadline: budget.deadline,
            bomb,
        }
    }

    /// Counts one rule-evaluation step; errs when the step budget or the
    /// (sparsely polled) deadline is exhausted, or an armed fault fires.
    #[inline]
    pub fn step(&mut self) -> Result<(), BudgetKind> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(BudgetKind::Steps);
        }
        if let Some((at, action)) = self.bomb {
            if self.steps >= at {
                self.bomb = None;
                match action {
                    FaultAction::Fail => return Err(BudgetKind::Fault),
                    FaultAction::ExpireDeadline => return Err(BudgetKind::Deadline),
                    FaultAction::Panic => panic!("{INJECTED_PANIC_MSG}"),
                }
            }
        }
        if self.steps & DEADLINE_POLL_MASK == 0 {
            if let Some(d) = self.deadline {
                if d.expired() {
                    return Err(BudgetKind::Deadline);
                }
            }
        }
        Ok(())
    }

    /// Checks a visit/demand nesting depth against the budget.
    #[inline]
    pub fn check_depth(&self, depth: usize) -> Result<(), BudgetKind> {
        if depth > self.max_depth {
            Err(BudgetKind::Depth)
        } else {
            Ok(())
        }
    }

    /// Accounts `cells` more cells of produced value storage.
    #[inline]
    pub fn grow_cells(&mut self, cells: u64) -> Result<(), BudgetKind> {
        self.cells += cells;
        if self.cells > self.max_cells {
            Err(BudgetKind::ValueCells)
        } else {
            Ok(())
        }
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Value cells accounted so far.
    pub fn cells(&self) -> u64 {
        self.cells
    }
}

/// One planned fault: which tree it hits, what it does, and whether it is
/// transient (fires only on the first attempt, so a retry succeeds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// Batch index of the poisoned tree.
    pub tree: usize,
    /// The fault to inject.
    pub fault: InjectedFault,
    /// Transient faults fire on attempt 0 only; permanent ones always.
    pub transient: bool,
}

/// A deterministic, seed-driven set of faults over a batch of trees.
///
/// The plan is a pure function of `(seed, trees)`: the same seed always
/// poisons the same trees the same way, which is what lets the fuzz oracle
/// assert bit-identical convergence after retries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

/// SplitMix64 — same generator family as `fnc2_corpus::rng`, inlined here
/// so the guard crate stays dependency-free.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with exactly the given faults.
    pub fn with_faults(faults: Vec<PlannedFault>) -> Self {
        FaultPlan { faults }
    }

    /// Derives a plan for a batch of `trees` trees from `seed`: poisons
    /// 1..=min(3, trees) distinct trees with a seed-chosen fault kind, each
    /// independently transient or permanent.
    pub fn from_seed(seed: u64, trees: usize) -> Self {
        let mut faults = Vec::new();
        if trees == 0 {
            return FaultPlan { faults };
        }
        let mut st = seed ^ 0x6a09_e667_f3bc_c909;
        let n = 1 + (splitmix(&mut st) as usize) % trees.min(3);
        for _ in 0..n {
            let tree = (splitmix(&mut st) as usize) % trees;
            if faults.iter().any(|p: &PlannedFault| p.tree == tree) {
                continue;
            }
            let step = 1 + splitmix(&mut st) % 16;
            let fault = match splitmix(&mut st) % 5 {
                0 => InjectedFault::FailRule { step },
                1 => InjectedFault::PanicAtStep { step },
                2 => InjectedFault::PanicOnEntry,
                3 => InjectedFault::FailOnEntry,
                _ => InjectedFault::ExpireDeadline { step },
            };
            let transient = splitmix(&mut st) & 1 == 0;
            faults.push(PlannedFault {
                tree,
                fault,
                transient,
            });
        }
        FaultPlan { faults }
    }

    /// The fault (if any) to apply to `tree` on retry attempt `attempt`
    /// (attempt 0 is the first try).
    pub fn fault_for(&self, tree: usize, attempt: u32) -> Option<InjectedFault> {
        self.faults
            .iter()
            .find(|p| p.tree == tree && (!p.transient || attempt == 0))
            .map(|p| p.fault)
    }

    /// All planned faults.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Trees poisoned by a *permanent* fault (these can never succeed, no
    /// matter how many retries).
    pub fn permanent_trees(&self) -> Vec<usize> {
        self.faults
            .iter()
            .filter(|p| !p.transient)
            .map(|p| p.tree)
            .collect()
    }
}

/// Hard ceiling for [`backoff_delay`], whatever the caller passes.
pub const MAX_BACKOFF_MS: u64 = 1_000;

/// Bounded exponential backoff before retry `attempt` (1-based: the delay
/// *preceding* that attempt; attempt 0 — the first try — never waits).
///
/// The delay doubles per attempt starting from `base_ms` and is clamped to
/// `min(cap_ms, `[`MAX_BACKOFF_MS`]`)`, so a retry loop over transient
/// faults (EINTR, a briefly-full disk) is polite but can never stall a
/// batch for more than a bounded, configuration-independent time.
pub fn backoff_delay(attempt: u32, base_ms: u64, cap_ms: u64) -> Duration {
    if attempt == 0 || base_ms == 0 {
        return Duration::ZERO;
    }
    let cap = cap_ms.min(MAX_BACKOFF_MS);
    let ms = base_ms
        .checked_shl(attempt.saturating_sub(1).min(20))
        .unwrap_or(cap)
        .min(cap);
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_zero_then_doubles_then_caps() {
        assert_eq!(backoff_delay(0, 10, 500), Duration::ZERO);
        assert_eq!(backoff_delay(1, 10, 500), Duration::from_millis(10));
        assert_eq!(backoff_delay(2, 10, 500), Duration::from_millis(20));
        assert_eq!(backoff_delay(3, 10, 500), Duration::from_millis(40));
        assert_eq!(backoff_delay(9, 10, 500), Duration::from_millis(500));
        // The hard ceiling binds even a generous cap.
        assert_eq!(
            backoff_delay(30, 10, u64::MAX),
            Duration::from_millis(MAX_BACKOFF_MS)
        );
        assert_eq!(backoff_delay(5, 0, 500), Duration::ZERO);
    }

    #[test]
    fn default_budget_is_generous_but_finite() {
        let b = EvalBudget::default();
        assert!(b.max_steps >= 1 << 30);
        assert!(b.max_depth >= 1 << 20, "100k chains must fit with slack");
        assert!(b.max_value_cells >= 1 << 30);
        assert!(b.deadline.is_none());
    }

    #[test]
    fn meter_trips_each_dimension() {
        let mut m = BudgetMeter::new(&EvalBudget::default().with_max_steps(2));
        assert_eq!(m.step(), Ok(()));
        assert_eq!(m.step(), Ok(()));
        assert_eq!(m.step(), Err(BudgetKind::Steps));

        let m = BudgetMeter::new(&EvalBudget::default().with_max_depth(5));
        assert_eq!(m.check_depth(5), Ok(()));
        assert_eq!(m.check_depth(6), Err(BudgetKind::Depth));

        let mut m = BudgetMeter::new(&EvalBudget::default().with_max_value_cells(10));
        assert_eq!(m.grow_cells(10), Ok(()));
        assert_eq!(m.grow_cells(1), Err(BudgetKind::ValueCells));
    }

    #[test]
    fn expired_deadline_is_seen_at_poll_boundary() {
        let budget =
            EvalBudget::unlimited().with_deadline(Deadline::after(Duration::from_millis(0)));
        let mut m = BudgetMeter::new(&budget);
        let mut tripped = None;
        for i in 1..=2 * (DEADLINE_POLL_MASK + 1) {
            if let Err(k) = m.step() {
                tripped = Some((i, k));
                break;
            }
        }
        let (at, kind) = tripped.expect("deadline must trip within one poll window");
        assert_eq!(kind, BudgetKind::Deadline);
        assert_eq!(at & DEADLINE_POLL_MASK, 0, "polled sparsely");
    }

    #[test]
    fn injected_fail_and_deadline_fire_once_at_step() {
        let budget = EvalBudget::unlimited();
        let mut m = BudgetMeter::with_fault(&budget, Some(InjectedFault::FailRule { step: 3 }));
        assert_eq!(m.step(), Ok(()));
        assert_eq!(m.step(), Ok(()));
        assert_eq!(m.step(), Err(BudgetKind::Fault));
        assert_eq!(m.step(), Ok(()), "a fault fires once, then disarms");

        let mut m =
            BudgetMeter::with_fault(&budget, Some(InjectedFault::ExpireDeadline { step: 1 }));
        assert_eq!(m.step(), Err(BudgetKind::Deadline));
    }

    #[test]
    fn injected_panic_panics_with_marker_message() {
        let budget = EvalBudget::unlimited();
        let caught = std::panic::catch_unwind(move || {
            let mut m =
                BudgetMeter::with_fault(&budget, Some(InjectedFault::PanicAtStep { step: 1 }));
            let _ = m.step();
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn fault_plan_is_deterministic_and_respects_transience() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed, 7);
            let b = FaultPlan::from_seed(seed, 7);
            assert_eq!(a, b, "pure function of the seed");
            assert!(!a.is_empty());
            for p in a.faults() {
                assert!(p.tree < 7);
                assert_eq!(a.fault_for(p.tree, 0), Some(p.fault));
                if p.transient {
                    assert_eq!(a.fault_for(p.tree, 1), None, "transient clears on retry");
                } else {
                    assert_eq!(a.fault_for(p.tree, 1), Some(p.fault));
                }
            }
        }
    }

    #[test]
    fn fault_plan_empty_batch() {
        assert!(FaultPlan::from_seed(0, 0).is_empty());
    }
}
