//! Shared semantic-rule evaluation over an abstract attribute storage.

use std::error::Error;
use std::fmt;

use fnc2_ag::{Arg, Grammar, NodeId, ONode, Occ, ProductionId, RuleBody, Tree, Value};

/// Errors raised while evaluating attribute instances.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// An argument value was not available — a scheduling bug or, for the
    /// dynamic evaluator, a dependency on a circular instance.
    MissingValue {
        /// The node whose attribute was read.
        node: NodeId,
        /// Display name of the attribute or local.
        what: String,
    },
    /// The dynamic evaluator found a cycle among attribute instances.
    CircularInstance {
        /// The node on the cycle.
        node: NodeId,
        /// Display name of the attribute.
        what: String,
    },
    /// A rule read the node's lexical token but the tree node carries none.
    MissingToken {
        /// The tokenless node.
        node: NodeId,
        /// The production applied there.
        production: String,
    },
    /// The tree's root phylum carries an inherited attribute with no value
    /// supplied in the root inputs.
    MissingRootInput {
        /// Display name of the attribute.
        what: String,
    },
    /// A semantic function aborted at runtime (e.g. the OLGA `error`
    /// builtin fired in user-level attribution code).
    SemanticFailure {
        /// The node whose rule was being evaluated.
        node: NodeId,
        /// The failure message reported by the function.
        message: String,
    },
    /// An [`fnc2_guard::EvalBudget`] limit was exhausted (or a
    /// deterministic fault was injected): the evaluation was cut short and
    /// degraded to this diagnostic instead of a stack overflow or OOM.
    BudgetExceeded {
        /// The exhausted budget dimension.
        kind: fnc2_guard::BudgetKind,
        /// Where evaluation stopped (evaluator + node, best effort).
        at: String,
    },
}

impl EvalError {
    /// Builds a [`EvalError::BudgetExceeded`] for `kind` at location `at`.
    pub fn budget(kind: fnc2_guard::BudgetKind, at: impl Into<String>) -> Self {
        EvalError::BudgetExceeded {
            kind,
            at: at.into(),
        }
    }

    /// True for budget/fault outcomes (exit code 2 in `fnc2c`).
    pub fn is_budget(&self) -> bool {
        matches!(self, EvalError::BudgetExceeded { .. })
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingValue { node, what } => {
                write!(f, "value of `{what}` at {node} not yet available")
            }
            EvalError::CircularInstance { node, what } => {
                write!(f, "attribute instance `{what}` at {node} is circular")
            }
            EvalError::MissingToken { node, production } => {
                write!(f, "node {node} ({production}) carries no lexical token")
            }
            EvalError::MissingRootInput { what } => {
                write!(f, "no value supplied for root inherited attribute `{what}`")
            }
            EvalError::SemanticFailure { node, message } => {
                write!(f, "semantic function failed at {node}: {message}")
            }
            EvalError::BudgetExceeded { kind, at } => {
                write!(f, "evaluation budget exceeded ({kind}) at {at}")
            }
        }
    }
}

impl Error for EvalError {}

/// Read access to attribute instances and production locals during rule
/// evaluation.
pub trait Store {
    /// The value of `(node, attr)`, if evaluated.
    fn value(&self, node: NodeId, attr: fnc2_ag::AttrId) -> Option<Value>;
    /// The value of a production-local attribute of `node`.
    fn local(&self, node: NodeId, local: fnc2_ag::LocalId) -> Option<Value>;
}

/// Evaluates the rule defining `target` in production `p` applied at
/// `node`, reading arguments from `store`.
///
/// Returns the computed value and whether the rule was a copy rule (for the
/// copy-elimination statistics).
///
/// # Errors
///
/// Fails when an argument is unavailable ([`EvalError::MissingValue`]) or a
/// token is missing.
pub fn eval_rule<S: Store>(
    grammar: &Grammar,
    tree: &Tree,
    p: ProductionId,
    node: NodeId,
    target: ONode,
    store: &S,
) -> Result<(Value, bool), EvalError> {
    let rule = grammar
        .rule_for(p, target)
        .unwrap_or_else(|| panic!("validated grammar defines {target:?} in {p}"));
    eval_rule_resolved(grammar, tree, rule, node, store)
}

/// Like [`eval_rule`] with the rule already resolved — the hot path of the
/// compiled evaluator, which looks rules up once at construction time.
///
/// # Errors
///
/// Same as [`eval_rule`].
pub fn eval_rule_resolved<S: Store>(
    grammar: &Grammar,
    tree: &Tree,
    rule: &fnc2_ag::SemRule,
    node: NodeId,
    store: &S,
) -> Result<(Value, bool), EvalError> {
    let p = tree.node(node).production();
    let fetch = |arg: &Arg| -> Result<Value, EvalError> {
        match arg {
            Arg::Const(v) => Ok(v.clone()),
            Arg::Token => tree
                .node(node)
                .token()
                .cloned()
                .ok_or_else(|| EvalError::MissingToken {
                    node,
                    production: grammar.production(p).name().to_string(),
                }),
            Arg::Node(ONode::Attr(Occ { pos, attr })) => {
                let at = if *pos == 0 {
                    node
                } else {
                    tree.node(node).children()[*pos as usize - 1]
                };
                store
                    .value(at, *attr)
                    .ok_or_else(|| EvalError::MissingValue {
                        node: at,
                        what: grammar.attr(*attr).name().to_string(),
                    })
            }
            Arg::Node(ONode::Local(l)) => {
                store
                    .local(node, *l)
                    .ok_or_else(|| EvalError::MissingValue {
                        node,
                        what: grammar.production(p).locals()[l.index()].name().to_string(),
                    })
            }
        }
    };
    match rule.body() {
        RuleBody::Copy(arg) => Ok((fetch(arg)?, rule.is_copy())),
        RuleBody::Call { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(fetch(a)?);
            }
            let v =
                grammar
                    .function(*func)
                    .apply(&vals)
                    .map_err(|e| EvalError::SemanticFailure {
                        node,
                        message: e.message,
                    })?;
            Ok((v, false))
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, TreeBuilder};

    use super::*;

    struct MapStore(std::collections::HashMap<(NodeId, fnc2_ag::AttrId), Value>);
    impl Store for MapStore {
        fn value(&self, node: NodeId, attr: fnc2_ag::AttrId) -> Option<Value> {
            self.0.get(&(node, attr)).cloned()
        }
        fn local(&self, _: NodeId, _: fnc2_ag::LocalId) -> Option<Value> {
            None
        }
    }

    #[test]
    fn eval_call_and_copy() {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let w = g.syn(a, "w");
        g.func("double", 1, |v| Value::Int(v[0].as_int() * 2));
        let root = g.production("root", s, &[a]);
        g.call(root, Occ::lhs(out), "double", [Occ::new(1, w).into()]);
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(w), Arg::Token);
        let g = g.finish().unwrap();

        let mut tb = TreeBuilder::new(&g);
        let leaf_p = g.production_by_name("leaf").unwrap();
        let root_p = g.production_by_name("root").unwrap();
        let l = tb
            .node_with_token(leaf_p, &[], Some(Value::Int(21)))
            .unwrap();
        let r = tb.node(root_p, &[l]).unwrap();
        let tree = tb.finish_root(r).unwrap();

        // Token copy at the leaf.
        let store = MapStore(Default::default());
        let (v, is_copy) =
            eval_rule(&g, &tree, leaf_p, l, ONode::Attr(Occ::lhs(w)), &store).unwrap();
        assert_eq!(v, Value::Int(21));
        assert!(!is_copy, "token copies are not occurrence copy rules");

        // Call at the root once w is available.
        let mut m = std::collections::HashMap::new();
        m.insert((l, w), Value::Int(21));
        let store = MapStore(m);
        let (v, _) = eval_rule(&g, &tree, root_p, r, ONode::Attr(Occ::lhs(out)), &store).unwrap();
        assert_eq!(v, Value::Int(42));

        // Missing value reported.
        let store = MapStore(Default::default());
        let err = eval_rule(&g, &tree, root_p, r, ONode::Attr(Occ::lhs(out)), &store).unwrap_err();
        assert!(matches!(err, EvalError::MissingValue { .. }));
    }
}
