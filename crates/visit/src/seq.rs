//! Visit-sequence construction (paper §2.1.1).
//!
//! A visit-sequence evaluator is "a visit-sequence interpreter: there
//! exists one visit-sequence per production" — per (production, LHS
//! partition) pair after the SNC → l-ordered transformation — "which is a
//! sequence of instructions" `BEGIN i / EVAL s / VISIT i,j / LEAVE i`.
//! Here a sequence is stored as its segments: `segments[i-1]` holds the
//! instructions between `BEGIN i+…+LEAVE i`, so `BEGIN`/`LEAVE` are
//! implicit in the segment structure.

use std::collections::HashMap;

use fnc2_ag::{Grammar, ONode, Occ, PhylumId, ProductionId};
use fnc2_analysis::{LOrdered, TotalOrder};

/// One visit-sequence instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Evaluate the semantic rule defining this occurrence (a synthesized
    /// attribute of the LHS, an inherited attribute of a child, or a
    /// production-local attribute).
    Eval(ONode),
    /// Perform visit number `visit` (1-based) to child `child` (1-based),
    /// interpreting the child under `partition` — the extra parameter the
    /// transformation threads through recursive visits (paper §2.1.1,
    /// step 3).
    Visit {
        /// 1-based child position.
        child: u16,
        /// 1-based visit number on the child.
        visit: usize,
        /// Index of the partition to use on the child.
        partition: usize,
    },
}

/// The visit-sequence of one (production, LHS-partition) pair.
#[derive(Clone, Debug)]
pub struct VisitSeq {
    /// The production this sequence interprets.
    pub production: ProductionId,
    /// Index of the LHS partition this sequence serves.
    pub lhs_partition: usize,
    /// `segments[v-1]` = instructions of visit `v`.
    pub segments: Vec<Vec<Instr>>,
}

impl VisitSeq {
    /// Total number of instructions.
    pub fn instr_count(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Number of `Visit` instructions.
    pub fn visit_instr_count(&self) -> usize {
        self.segments
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::Visit { .. }))
            .count()
    }
}

/// The complete set of visit-sequences of a grammar, plus the partitions
/// they follow — the "abstract evaluator" handed to the translators.
#[derive(Clone, Debug)]
pub struct VisitSeqs {
    seqs: HashMap<(ProductionId, usize), VisitSeq>,
    partitions: Vec<Vec<TotalOrder>>,
}

impl VisitSeqs {
    /// The sequence for `(production, lhs_partition)`.
    pub fn seq(&self, production: ProductionId, lhs_partition: usize) -> &VisitSeq {
        &self.seqs[&(production, lhs_partition)]
    }

    /// Iterates all sequences.
    pub fn iter(&self) -> impl Iterator<Item = &VisitSeq> {
        self.seqs.values()
    }

    /// All (production, partition) keys, sorted for determinism.
    pub fn keys(&self) -> Vec<(ProductionId, usize)> {
        let mut ks: Vec<_> = self.seqs.keys().copied().collect();
        ks.sort();
        ks
    }

    /// The partitions of `phylum`.
    pub fn partitions_of(&self, phylum: PhylumId) -> &[TotalOrder] {
        &self.partitions[phylum.index()]
    }

    /// All partition lists, indexed by phylum, for serialization.
    pub fn partitions(&self) -> &[Vec<TotalOrder>] {
        &self.partitions
    }

    /// Reassembles visit sequences from serialized parts. The caller is
    /// responsible for internal consistency (every sequence's key must
    /// reference a registered partition).
    pub fn from_parts(
        seqs: HashMap<(ProductionId, usize), VisitSeq>,
        partitions: Vec<Vec<TotalOrder>>,
    ) -> VisitSeqs {
        VisitSeqs { seqs, partitions }
    }

    /// Number of visits the root partition prescribes.
    pub fn root_visits(&self, grammar: &Grammar) -> usize {
        self.partitions[grammar.root().index()][0].visit_count()
    }

    /// Number of sequences (the evaluator-size figure the transformation's
    /// partition count drives).
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True if there are no sequences.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }
}

/// Builds the visit-sequences from the transformation's plans.
///
/// # Panics
///
/// Panics if `lo` is internally inconsistent (a plan referencing an
/// unregistered partition); [`fnc2_analysis::snc_to_l_ordered`] and
/// [`fnc2_analysis::l_ordered_from_partitions`] never produce such plans.
pub fn build_visit_seqs(grammar: &Grammar, lo: &LOrdered) -> VisitSeqs {
    let mut seqs = HashMap::new();
    for (&(p, pi), plan) in &lo.plans {
        let prod = grammar.production(p);
        let lhs_part = &lo.partitions_of(prod.lhs())[pi];
        let nvisits = lhs_part.visit_count();
        let mut segments: Vec<Vec<Instr>> = vec![Vec::new(); nvisits];
        let mut current = 1usize;
        // Number of visits already emitted per child (1-based positions).
        let mut done = vec![0usize; prod.arity() + 1];
        for &node in &plan.linear {
            match node {
                ONode::Attr(Occ { pos: 0, attr }) => {
                    let v = lhs_part
                        .visit_of(attr)
                        .expect("LHS partition covers all attributes");
                    current = current.max(v);
                    if grammar.attr(attr).kind() == fnc2_ag::AttrKind::Synthesized {
                        segments[v - 1].push(Instr::Eval(node));
                    }
                }
                ONode::Attr(Occ { pos, attr }) => match grammar.attr(attr).kind() {
                    fnc2_ag::AttrKind::Inherited => {
                        segments[current - 1].push(Instr::Eval(node));
                    }
                    fnc2_ag::AttrKind::Synthesized => {
                        let part_idx = plan.rhs_partitions[pos as usize - 1];
                        let ph = prod.phylum_at(pos);
                        let part = &lo.partitions_of(ph)[part_idx];
                        let w = part
                            .visit_of(attr)
                            .expect("child partition covers all attributes");
                        while done[pos as usize] < w {
                            done[pos as usize] += 1;
                            segments[current - 1].push(Instr::Visit {
                                child: pos,
                                visit: done[pos as usize],
                                partition: part_idx,
                            });
                        }
                    }
                },
                ONode::Local(_) => segments[current - 1].push(Instr::Eval(node)),
            }
        }
        // Exhaustive evaluation: drive the remaining visits of every child
        // so the whole tree is decorated even when some synthesized results
        // are unused in this context.
        #[allow(clippy::needless_range_loop)] // pos is also the child index
        for pos in 1..=prod.arity() {
            let part_idx = plan.rhs_partitions[pos - 1];
            let ph = prod.phylum_at(pos as u16);
            let total = lo.partitions_of(ph)[part_idx].visit_count();
            while done[pos] < total {
                done[pos] += 1;
                segments[nvisits - 1].push(Instr::Visit {
                    child: pos as u16,
                    visit: done[pos],
                    partition: part_idx,
                });
            }
        }
        // Schedule refinement: sink every EVAL to just before its first
        // use in the segment. This shortens instance lifetimes (more
        // variables/stacks for the space optimizer) and groups each
        // child's inherited attributes right before the visit that
        // consumes them — without touching the partitions.
        for segment in &mut segments {
            sink_evals(grammar, p, segment);
        }
        seqs.insert(
            (p, pi),
            VisitSeq {
                production: p,
                lhs_partition: pi,
                segments,
            },
        );
    }
    VisitSeqs {
        seqs,
        partitions: lo.partitions.clone(),
    }
}

/// True if `later` consumes the value produced by `target`.
fn instr_uses(grammar: &Grammar, p: ProductionId, target: ONode, later: &Instr) -> bool {
    match later {
        Instr::Eval(t2) => grammar
            .rule_for(p, *t2)
            .expect("validated grammar")
            .read_nodes()
            .any(|n| n == target),
        Instr::Visit { child, .. } => {
            matches!(target, ONode::Attr(Occ { pos, .. }) if pos == *child)
        }
    }
}

/// Sinks each `EVAL` as late as the segment allows: to just before the
/// first later instruction that uses its result (or to the segment end if
/// nothing in the segment does — LHS synthesized attributes are handed to
/// the parent at `LEAVE`).
fn sink_evals(grammar: &Grammar, p: ProductionId, segment: &mut Vec<Instr>) {
    // Each EVAL moves at most once, processed right-to-left (so already
    // sunk instructions stay put and the pass terminates).
    let targets: Vec<ONode> = segment
        .iter()
        .filter_map(|i| match i {
            Instr::Eval(t) => Some(*t),
            _ => None,
        })
        .collect();
    for &target in targets.iter().rev() {
        let i = segment
            .iter()
            .position(|x| matches!(x, Instr::Eval(t) if *t == target))
            .expect("target still present");
        let first_use =
            (i + 1..segment.len()).find(|&k| instr_uses(grammar, p, target, &segment[k]));
        let dest = match first_use {
            Some(k) => k - 1,
            None => segment.len() - 1,
        };
        if dest > i {
            let instr = segment.remove(i);
            segment.insert(dest, instr);
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};

    use super::*;

    fn two_pass() -> Grammar {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        g.finish().unwrap()
    }

    fn seqs_for(g: &Grammar) -> VisitSeqs {
        let snc = snc_test(g);
        let lo = snc_to_l_ordered(g, &snc, Inclusion::Long).unwrap();
        build_visit_seqs(g, &lo)
    }

    #[test]
    fn two_pass_sequences() {
        let g = two_pass();
        let seqs = seqs_for(&g);
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs.root_visits(&g), 1);

        let root = g.production_by_name("root").unwrap();
        let rs = seqs.seq(root, 0);
        assert_eq!(rs.segments.len(), 1);
        // EVAL A.down ; VISIT 1,1 ; EVAL S.out.
        let a = g.phylum_by_name("A").unwrap();
        let down = g.attr_by_name(a, "down").unwrap();
        let s = g.phylum_by_name("S").unwrap();
        let out = g.attr_by_name(s, "out").unwrap();
        assert_eq!(
            rs.segments[0],
            vec![
                Instr::Eval(ONode::Attr(Occ::new(1, down))),
                Instr::Visit {
                    child: 1,
                    visit: 1,
                    partition: 0
                },
                Instr::Eval(ONode::Attr(Occ::lhs(out))),
            ]
        );

        let mid = g.production_by_name("mid").unwrap();
        let ms = seqs.seq(mid, 0);
        assert_eq!(ms.visit_instr_count(), 1);

        let leaf = g.production_by_name("leaf").unwrap();
        let ls = seqs.seq(leaf, 0);
        assert_eq!(ls.visit_instr_count(), 0);
        assert_eq!(ls.instr_count(), 1);
    }

    #[test]
    fn every_output_evaluated_exactly_once() {
        let g = two_pass();
        let seqs = seqs_for(&g);
        for p in g.productions() {
            let seq = seqs.seq(p, 0);
            let mut evals: Vec<ONode> = seq
                .segments
                .iter()
                .flatten()
                .filter_map(|i| match i {
                    Instr::Eval(n) => Some(*n),
                    _ => None,
                })
                .collect();
            evals.sort();
            let mut outputs = g.outputs(p);
            outputs.sort();
            assert_eq!(evals, outputs, "production {}", g.production(p).name());
        }
    }

    #[test]
    fn child_visits_are_sequential() {
        let g = two_pass();
        let seqs = seqs_for(&g);
        for seq in seqs.iter() {
            let arity = g.production(seq.production).arity();
            let mut next = vec![1usize; arity + 1];
            for instr in seq.segments.iter().flatten() {
                if let Instr::Visit { child, visit, .. } = instr {
                    assert_eq!(*visit, next[*child as usize], "visits in order");
                    next[*child as usize] += 1;
                }
            }
        }
    }
}
