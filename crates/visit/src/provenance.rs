//! Dynamic dependency slices reconstructed from evaluation events.
//!
//! The AG-debugging literature (Sasaki & Sassa; Ikezoe et al.) argues
//! that the right substrate for explaining an attribute's value is the
//! *dynamic* dependency slice: which instances fed it, through which
//! semantic rules, in which visit. This module rebuilds that slice from
//! the `RuleFired`/`VisitEnter`/`VisitLeave` event stream any recorded
//! evaluation produces (exhaustive, dynamic, or incremental — for
//! incremental runs, later re-firings of the same instance supersede
//! earlier ones, so the slice reflects the final wave).
//!
//! The rule that fired tells us the static read set
//! ([`read_nodes`](fnc2_ag::SemRule::read_nodes)); resolving each read
//! occurrence at the firing node turns it into a concrete instance, and
//! chasing definitions backwards from the target instance yields the
//! slice. `fnc2c explain` and the fuzz oracle's divergence reports both
//! render these.

use std::collections::{HashMap, VecDeque};

use fnc2_ag::{AttrId, Grammar, LocalId, NodeId, ONode, Occ, ProductionId, Tree};
use fnc2_obs::{Event, Json};

/// A concrete attribute or production-local instance in a decorated tree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Attribute `attr` at `node`.
    Attr(NodeId, AttrId),
    /// Production-local `local` of the production applied at `node`.
    Local(NodeId, LocalId),
}

impl Inst {
    /// Human-readable display, e.g. `value@3` or `local tmp@3`.
    pub fn display(&self, grammar: &Grammar, tree: &Tree) -> String {
        match *self {
            Inst::Attr(n, a) => format!("{}@{}", grammar.attr(a).name(), n.index()),
            Inst::Local(n, l) => {
                let p = tree.node(n).production();
                format!(
                    "local {}@{}",
                    grammar.production(p).locals()[l.index()].name(),
                    n.index()
                )
            }
        }
    }
}

/// One step of a dependency slice: the rule firing that (last) defined
/// `inst`, plus the instances that firing read.
#[derive(Clone, Debug)]
pub struct SliceStep {
    /// The defined instance.
    pub inst: Inst,
    /// Event sequence number of the defining firing.
    pub seq: u64,
    /// The node the rule ran at (for inherited attributes: the parent).
    pub node: NodeId,
    /// The production the rule belongs to.
    pub production: ProductionId,
    /// Rule index within the production.
    pub rule: u32,
    /// 1-based visit number the firing happened in, when the stream had
    /// visit structure (exhaustive runs; `None` for demand-driven and
    /// incremental firings).
    pub visit: Option<u16>,
    /// The instances the firing read, in rule-argument order.
    pub inputs: Vec<Inst>,
}

/// A dynamic dependency slice: the firings that fed one target instance.
#[derive(Clone, Debug)]
pub struct Slice {
    /// The instance being explained.
    pub target: Inst,
    /// Slice steps, target first, then breadth-first through the inputs.
    pub steps: Vec<SliceStep>,
    /// Instances the slice depends on that no recorded firing defined —
    /// root inputs, or instances evaluated before the trace window.
    pub undefined: Vec<Inst>,
}

impl Slice {
    /// Every distinct instance in the slice (defined + undefined).
    pub fn instances(&self) -> Vec<Inst> {
        let mut v: Vec<Inst> = self.steps.iter().map(|s| s.inst).collect();
        v.extend(self.undefined.iter().copied());
        v
    }

    /// Renders the slice for a human, one step per line.
    pub fn render(&self, grammar: &Grammar, tree: &Tree) -> String {
        let mut out = format!("slice for {}:\n", self.target.display(grammar, tree));
        if self.steps.is_empty() {
            out.push_str("  (no recorded firing defines the target)\n");
        }
        for s in &self.steps {
            let visit = s
                .visit
                .map(|v| format!(" in visit {v}"))
                .unwrap_or_default();
            let reads = if s.inputs.is_empty() {
                String::new()
            } else {
                format!(
                    " <- {}",
                    s.inputs
                        .iter()
                        .map(|i| i.display(grammar, tree))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            out.push_str(&format!(
                "  {} := {} at node {}{}{}  [seq {}]\n",
                s.inst.display(grammar, tree),
                grammar.occ_name(
                    s.production,
                    grammar.production(s.production).rules()[s.rule as usize].target()
                ),
                s.node.index(),
                visit,
                reads,
                s.seq
            ));
        }
        for u in &self.undefined {
            out.push_str(&format!(
                "  {} — input (no recorded definition)\n",
                u.display(grammar, tree)
            ));
        }
        out
    }

    /// The slice as a JSON document.
    pub fn to_json(&self, grammar: &Grammar, tree: &Tree) -> Json {
        let inst_json = |i: &Inst| Json::str(i.display(grammar, tree));
        Json::obj([
            ("target", inst_json(&self.target)),
            (
                "steps",
                Json::Arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("inst", inst_json(&s.inst)),
                                ("seq", Json::Int(s.seq as i64)),
                                ("node", Json::Int(s.node.index() as i64)),
                                (
                                    "production",
                                    Json::str(grammar.production(s.production).name()),
                                ),
                                ("rule", Json::Int(s.rule as i64)),
                                (
                                    "visit",
                                    s.visit.map(|v| Json::Int(v as i64)).unwrap_or(Json::Null),
                                ),
                                (
                                    "inputs",
                                    Json::Arr(s.inputs.iter().map(inst_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "undefined",
                Json::Arr(self.undefined.iter().map(inst_json).collect()),
            ),
        ])
    }
}

/// Resolves an occurrence of production `p` applied at `node` to a
/// concrete instance.
fn resolve(tree: &Tree, node: NodeId, occ: ONode) -> Inst {
    match occ {
        ONode::Attr(Occ { pos, attr }) => {
            let at = if pos == 0 {
                node
            } else {
                tree.node(node).children()[pos as usize - 1]
            };
            Inst::Attr(at, attr)
        }
        ONode::Local(l) => Inst::Local(node, l),
    }
}

/// Reconstructs the dynamic dependency slice of `attr@node` from an
/// evaluation event stream (as produced by any recorded run; pass
/// [`TraceBuffer::iter`](fnc2_obs::TraceBuffer::iter)).
///
/// When the same instance was defined several times (incremental waves),
/// the **last** firing wins — the slice explains the final value. Events
/// whose production/rule indices don't match `grammar` (e.g. a foreign
/// stream) are skipped rather than trusted.
pub fn dependency_slice<'a>(
    grammar: &Grammar,
    tree: &Tree,
    events: impl IntoIterator<Item = (u64, &'a Event)>,
    node: NodeId,
    attr: AttrId,
) -> Slice {
    struct Def {
        seq: u64,
        node: NodeId,
        production: ProductionId,
        rule: u32,
        visit: Option<u16>,
    }
    let mut defs: HashMap<Inst, Def> = HashMap::new();
    // (node, visit) stack rebuilt from the visit events.
    let mut visit_stack: Vec<u16> = Vec::new();
    for (seq, event) in events {
        match *event {
            Event::VisitEnter { visit, .. } => visit_stack.push(visit),
            Event::VisitLeave { .. } => {
                visit_stack.pop();
            }
            Event::RuleFired {
                node,
                production,
                rule,
            } => {
                if production as usize >= grammar.production_count()
                    || node as usize >= tree.arena_len()
                {
                    continue;
                }
                let p = ProductionId::from_raw(production);
                let rules = grammar.production(p).rules();
                if rule as usize >= rules.len() {
                    continue;
                }
                let at = NodeId::from_raw(node);
                let inst = resolve(tree, at, rules[rule as usize].target());
                defs.insert(
                    inst,
                    Def {
                        seq,
                        node: at,
                        production: p,
                        rule,
                        visit: visit_stack.last().copied(),
                    },
                );
            }
            Event::AttrRead { .. } | Event::AttrStored { .. } | Event::StatusComputed { .. } => {}
        }
    }

    let target = Inst::Attr(node, attr);
    let mut steps = Vec::new();
    let mut undefined = Vec::new();
    let mut seen: HashMap<Inst, ()> = HashMap::new();
    let mut queue: VecDeque<Inst> = VecDeque::new();
    queue.push_back(target);
    seen.insert(target, ());
    while let Some(inst) = queue.pop_front() {
        let Some(def) = defs.get(&inst) else {
            // Expected for root inherited inputs (supplied, not
            // computed); otherwise the firing fell out of the trace
            // window.
            undefined.push(inst);
            continue;
        };
        let rule = &grammar.production(def.production).rules()[def.rule as usize];
        let inputs: Vec<Inst> = rule
            .read_nodes()
            .map(|r| resolve(tree, def.node, r))
            .collect();
        for i in &inputs {
            if seen.insert(*i, ()).is_none() {
                queue.push_back(*i);
            }
        }
        steps.push(SliceStep {
            inst,
            seq: def.seq,
            node: def.node,
            production: def.production,
            rule: def.rule,
            visit: def.visit,
            inputs,
        });
    }
    Slice {
        target,
        steps,
        undefined,
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, TreeBuilder, Value};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_obs::Obs;

    use crate::exhaustive::{Evaluator, RootInputs};
    use crate::seq::build_visit_seqs;

    use super::*;

    #[test]
    fn slice_of_a_chain_walks_back_to_the_leaf() {
        let mut g = GrammarBuilder::new("count");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        let g = g.finish().unwrap();

        let mut tb = TreeBuilder::new(&g);
        let mut cur = tb.op("leaf", &[]).unwrap();
        for _ in 0..3 {
            cur = tb.op("node", &[cur]).unwrap();
        }
        let tree = tb.finish_root(cur).unwrap();

        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let mut obs = Obs::with_trace(1 << 12);
        ev.evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
            .unwrap();

        let buf = obs.events.as_ref().unwrap();
        let slice = dependency_slice(&g, &tree, buf.iter(), tree.root(), n);
        // n@root <- n@child <- n@grandchild <- n@leaf: 4 steps, no
        // undefined leaves.
        assert_eq!(slice.steps.len(), 4);
        assert!(slice.undefined.is_empty(), "{:?}", slice.undefined);
        assert_eq!(slice.steps[0].inst, Inst::Attr(tree.root(), n));
        // Every exhaustive firing carries its visit number.
        assert!(slice.steps.iter().all(|s| s.visit.is_some()));
        let txt = slice.render(&g, &tree);
        assert!(txt.contains("slice for n@"), "{txt}");
    }
}
