//! # fnc2-visit — visit sequences and the exhaustive evaluators
//!
//! The back half of the evaluator generator plus the generated evaluators'
//! run time (paper §2.1.1, §3.1):
//!
//! * [`build_visit_seqs`] turns the transformation's plans into
//!   `BEGIN/EVAL/VISIT/LEAVE` visit-sequences ([`VisitSeq`]);
//! * [`Evaluator`] interprets them deterministically — the production
//!   evaluator;
//! * [`DynamicEvaluator`] is the demand-driven development-mode evaluator
//!   ("non-deterministic visit-sequences directly after the SNC test").
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, Value};
//! use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
//! use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = GrammarBuilder::new("count");
//! let s = g.phylum("S");
//! let n = g.syn(s, "n");
//! let leaf = g.production("leaf", s, &[]);
//! g.constant(leaf, Occ::lhs(n), Value::Int(0));
//! let node = g.production("node", s, &[s]);
//! g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
//! g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
//! let grammar = g.finish()?;
//!
//! let snc = snc_test(&grammar);
//! let lo = snc_to_l_ordered(&grammar, &snc, Inclusion::Long)?;
//! let seqs = build_visit_seqs(&grammar, &lo);
//! let ev = Evaluator::new(&grammar, &seqs);
//!
//! let mut tb = fnc2_ag::TreeBuilder::new(&grammar);
//! let a = tb.op("leaf", &[])?;
//! let b = tb.op("node", &[a])?;
//! let tree = tb.finish_root(b)?;
//! let (values, _) = ev.evaluate(&tree, &RootInputs::new())?;
//! assert_eq!(values.get(&grammar, tree.root(), n), Some(&Value::Int(1)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dynamic;
mod exhaustive;
mod program;
mod provenance;
mod rules;
mod seq;

pub use dynamic::DynamicEvaluator;
pub use exhaustive::{EvalStats, Evaluator, InternMode, RootInputs};
pub use program::{
    CBody, CompiledProduction, CompiledProgram, CompiledRule, FetchOp, InternCtx, SlotRef,
};
pub use provenance::{dependency_slice, Inst, Slice, SliceStep};
pub use rules::{eval_rule, eval_rule_resolved, EvalError, Store};
pub use seq::{build_visit_seqs, Instr, VisitSeq, VisitSeqs};
