//! Slot-compiled rule programs — the shared "compiled hot path" of the
//! evaluator cascade.
//!
//! The generated evaluators of FNC-2 are ordinary compiled code: an
//! attribute access in the C back-end is a struct-field load, not a lookup
//! keyed by attribute name (paper §3.2). This module brings the
//! reproduction to the same shape. At evaluator-construction time every
//! semantic rule of every production is compiled once into a
//! [`CompiledRule`]: each argument becomes a [`FetchOp`] with its storage
//! location fully resolved — constants interned into a shared pool, node
//! attributes reduced to `(child position, slot offset)` pairs addressing
//! the flat [`AttrValues`] arena, production locals reduced to frame slots
//! in [`LocalFrames`](fnc2_ag::LocalFrames). The exhaustive, space-optimized
//! and incremental evaluators all execute these programs, so none of them
//! pays per-evaluation rule lookups, occurrence resolution, or constant
//! deep-clones.

use std::collections::HashMap;
use std::sync::Arc;

use fnc2_ag::{
    Arg, AttrId, AttrValues, FuncId, Grammar, Interner, LocalFrames, LocalId, MemoCache, MemoKey,
    NodeId, ONode, Occ, ProductionId, RuleBody, SharedInterner, Tree, Value,
};
use fnc2_obs::{Counters, Key};

use crate::rules::EvalError;

/// The hash-cons backend of an [`InternCtx`]: a private per-evaluation
/// table, or a thread-safe sharded table shared by the batch workers.
#[derive(Debug)]
enum InternBackend {
    Local(Interner),
    Shared(Arc<SharedInterner>),
}

/// The per-evaluation interning context: a hash-cons backend plus the
/// `(rule, canonical argument ids) → result` memo cache.
///
/// When an evaluator runs with one of these, every value a rule produces
/// or transports is canonicalized, so structural equality downstream
/// (most importantly the incremental cutoff) is id comparison, and
/// repeated applications of a pure semantic function to bitwise-equal
/// arguments are served from the memo cache without calling the function.
#[derive(Debug)]
pub struct InternCtx {
    backend: InternBackend,
    memo: MemoCache,
}

impl InternCtx {
    /// A context with a private (single-threaded) intern table.
    pub fn local() -> InternCtx {
        InternCtx {
            backend: InternBackend::Local(Interner::new()),
            memo: MemoCache::new(),
        }
    }

    /// A context backed by a shared sharded table; the memo cache stays
    /// worker-private (hits on it are free wins, misses are just calls).
    pub fn shared(table: Arc<SharedInterner>) -> InternCtx {
        InternCtx {
            backend: InternBackend::Shared(table),
            memo: MemoCache::new(),
        }
    }

    /// Canonicalizes `v`; returns the representative and whether its
    /// identity is stable (pinned by the table) and therefore usable in
    /// memo keys and O(1) equality cuts. Local-table statistics stream
    /// into `counters`; shared-table statistics are merged once at batch
    /// join (see [`SharedInterner::stats`]).
    pub fn intern(&mut self, v: Value, counters: &mut Counters) -> (Value, bool) {
        match &mut self.backend {
            InternBackend::Local(it) => {
                let before = it.stats();
                let v = it.intern(v);
                let after = it.stats();
                counters.add(Key::EvalInternHits, after.hits - before.hits);
                counters.add(Key::EvalInternMisses, after.misses - before.misses);
                counters.raise(Key::EvalInternSize, after.len);
                let stable = it.is_stable(&v);
                (v, stable)
            }
            InternBackend::Shared(sh) => {
                let v = sh.intern(v);
                let stable = sh.is_stable(&v);
                (v, stable)
            }
        }
    }

    /// True when `v`'s identity is stable for this context's lifetime.
    pub fn is_stable(&self, v: &Value) -> bool {
        match &self.backend {
            InternBackend::Local(it) => it.is_stable(v),
            InternBackend::Shared(sh) => sh.is_stable(v),
        }
    }

    /// Current occupancy of the backing intern table.
    pub fn occupancy(&self) -> u64 {
        match &self.backend {
            InternBackend::Local(it) => it.len() as u64,
            InternBackend::Shared(sh) => sh.stats().len,
        }
    }

    fn memo_get(&mut self, key: &MemoKey, counters: &mut Counters) -> Option<Value> {
        let hit = self.memo.get(key);
        if hit.is_some() {
            counters.add(Key::EvalMemoHits, 1);
        }
        hit
    }

    fn memo_put(&mut self, key: MemoKey, result: Value) {
        self.memo.put(key, result);
    }
}

/// A pre-resolved argument fetch: where one rule argument comes from, with
/// every lookup done at compile time.
#[derive(Clone, Debug, PartialEq)]
pub enum FetchOp {
    /// An interned constant — an index into [`CompiledProgram::consts`].
    Const(u32),
    /// The lexical token attached to the node the rule applies at.
    Token,
    /// An attribute occurrence: `child == 0` reads the node itself,
    /// `child == i` reads child `i` (1-based); `off` is the attribute's
    /// pre-computed slot offset within its phylum block.
    Attr {
        /// Position in the production: 0 = the node itself, 1-based = child.
        child: u16,
        /// The attribute read (kept for diagnostics).
        attr: AttrId,
        /// Slot offset of `attr` within its phylum's attribute block.
        off: u32,
    },
    /// A production-local attribute of the node's frame.
    Local(LocalId),
}

/// A pre-resolved store target: where a rule's result goes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SlotRef {
    /// An attribute occurrence slot (same addressing as [`FetchOp::Attr`]).
    Attr {
        /// Position in the production: 0 = the node itself, 1-based = child.
        child: u16,
        /// The attribute written (kept for diagnostics).
        attr: AttrId,
        /// Slot offset within the phylum's attribute block.
        off: u32,
    },
    /// A production-local slot in the node's frame.
    Local(LocalId),
}

impl SlotRef {
    /// Stores `value` into this slot for a rule applied at `node`.
    #[inline]
    pub fn store(
        &self,
        tree: &Tree,
        node: NodeId,
        values: &mut AttrValues,
        locals: &mut LocalFrames,
        value: Value,
    ) {
        match *self {
            SlotRef::Attr { child, off, .. } => {
                let at = if child == 0 {
                    node
                } else {
                    tree.node(node).children()[child as usize - 1]
                };
                values.set_slot(at, off as usize, value);
            }
            SlotRef::Local(l) => {
                locals.set(node, l, value);
            }
        }
    }
}

/// The compiled body of a semantic rule.
#[derive(Clone, Debug)]
pub enum CBody {
    /// Transfer one fetched value unchanged.
    Copy(FetchOp),
    /// Apply a semantic function to fetched arguments.
    Call {
        /// The semantic function to apply.
        func: FuncId,
        /// Pre-resolved argument fetches, in call order.
        args: Vec<FetchOp>,
    },
}

/// One semantic rule, compiled: its target slot and pre-resolved body.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// The occurrence or local the rule defines (kept for diagnostics and
    /// dependency queries).
    pub target: ONode,
    /// The pre-resolved store target.
    pub slot: SlotRef,
    /// The pre-resolved body.
    pub body: CBody,
    /// Whether the rule is an occurrence-to-occurrence copy rule (for the
    /// copy statistics, paper §2.2's dominant rule form).
    pub is_copy: bool,
}

/// The compiled rules of one production, indexed like
/// [`Production::rules`](fnc2_ag::Production::rules).
#[derive(Clone, Debug, Default)]
pub struct CompiledProduction {
    /// Compiled rules, parallel to the production's declared rule order.
    pub rules: Vec<CompiledRule>,
    rule_of: HashMap<ONode, u32>,
}

impl CompiledProduction {
    /// The index of the rule defining `target`, replacing the linear
    /// [`Grammar::rule_for`] scan on the hot path.
    #[inline]
    pub fn rule_index(&self, target: ONode) -> Option<u32> {
        self.rule_of.get(&target).copied()
    }
}

/// All productions of a grammar, slot-compiled, plus the shared constant
/// pool. Build once per evaluator with [`CompiledProgram::new`]; execution
/// is read-only, so one program serves any number of concurrent workers.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    prods: Vec<CompiledProduction>,
    consts: Vec<Value>,
}

fn intern(consts: &mut Vec<Value>, v: &Value) -> u32 {
    match consts.iter().position(|c| c == v) {
        Some(i) => i as u32,
        None => {
            consts.push(v.clone());
            (consts.len() - 1) as u32
        }
    }
}

impl CompiledProgram {
    /// Compiles every semantic rule of `grammar`.
    pub fn new(grammar: &Grammar) -> Self {
        let mut consts = Vec::new();
        let compile_fetch = |consts: &mut Vec<Value>, arg: &Arg| match arg {
            Arg::Const(v) => FetchOp::Const(intern(consts, v)),
            Arg::Token => FetchOp::Token,
            Arg::Node(ONode::Attr(Occ { pos, attr })) => FetchOp::Attr {
                child: *pos,
                attr: *attr,
                off: grammar.attr(*attr).offset() as u32,
            },
            Arg::Node(ONode::Local(l)) => FetchOp::Local(*l),
        };
        let mut prods = Vec::with_capacity(grammar.production_count());
        for pid in grammar.productions() {
            let p = grammar.production(pid);
            let mut cp = CompiledProduction::default();
            for (i, rule) in p.rules().iter().enumerate() {
                let target = rule.target();
                let slot = match target {
                    ONode::Attr(Occ { pos, attr }) => SlotRef::Attr {
                        child: pos,
                        attr,
                        off: grammar.attr(attr).offset() as u32,
                    },
                    ONode::Local(l) => SlotRef::Local(l),
                };
                let body = match rule.body() {
                    RuleBody::Copy(arg) => CBody::Copy(compile_fetch(&mut consts, arg)),
                    RuleBody::Call { func, args } => CBody::Call {
                        func: *func,
                        args: args.iter().map(|a| compile_fetch(&mut consts, a)).collect(),
                    },
                };
                cp.rule_of.insert(target, i as u32);
                cp.rules.push(CompiledRule {
                    target,
                    slot,
                    body,
                    is_copy: rule.is_copy(),
                });
            }
            prods.push(cp);
        }
        CompiledProgram { prods, consts }
    }

    /// The compiled rules of `production`.
    #[inline]
    pub fn production(&self, production: ProductionId) -> &CompiledProduction {
        &self.prods[production.index()]
    }

    /// The interned constant pool shared by all rules.
    pub fn consts(&self) -> &[Value] {
        &self.consts
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn fetch(
        &self,
        grammar: &Grammar,
        tree: &Tree,
        p: ProductionId,
        node: NodeId,
        op: &FetchOp,
        values: &AttrValues,
        locals: &LocalFrames,
        counters: &mut Counters,
    ) -> Result<Value, EvalError> {
        match op {
            FetchOp::Const(i) => {
                counters.add(Key::EvalConstHits, 1);
                Ok(self.consts[*i as usize].clone())
            }
            FetchOp::Token => {
                tree.node(node)
                    .token()
                    .cloned()
                    .ok_or_else(|| EvalError::MissingToken {
                        node,
                        production: grammar.production(p).name().to_string(),
                    })
            }
            FetchOp::Attr { child, attr, off } => {
                let at = if *child == 0 {
                    node
                } else {
                    tree.node(node).children()[*child as usize - 1]
                };
                values
                    .get_slot(at, *off as usize)
                    .cloned()
                    .ok_or_else(|| EvalError::MissingValue {
                        node: at,
                        what: grammar.attr(*attr).name().to_string(),
                    })
            }
            FetchOp::Local(l) => {
                locals
                    .get(node, *l)
                    .cloned()
                    .ok_or_else(|| EvalError::MissingValue {
                        node,
                        what: grammar.production(p).locals()[l.index()].name().to_string(),
                    })
            }
        }
    }

    /// Executes rule `rule` of production `p` applied at `node`, reading
    /// attribute slots from `values` and locals from `locals`. Returns the
    /// computed value and whether the rule was a copy rule. `buf` is a
    /// reusable argument buffer; `counters` accumulates
    /// [`Key::EvalConstHits`]. With an [`InternCtx`], every produced value
    /// is canonicalized and function calls consult the memo cache.
    ///
    /// # Errors
    ///
    /// Fails when an argument is unavailable, a token is missing, or a
    /// semantic function aborts — same contract as
    /// [`eval_rule`](crate::rules::eval_rule).
    #[allow(clippy::too_many_arguments)]
    pub fn eval_rule(
        &self,
        grammar: &Grammar,
        tree: &Tree,
        p: ProductionId,
        rule: u32,
        node: NodeId,
        values: &AttrValues,
        locals: &LocalFrames,
        buf: &mut Vec<Value>,
        counters: &mut Counters,
        ictx: Option<&mut InternCtx>,
    ) -> Result<(Value, bool), EvalError> {
        let cr = &self.prods[p.index()].rules[rule as usize];
        self.exec_rule(
            grammar, tree, p, rule, cr, node, values, locals, buf, counters, ictx,
        )
    }

    /// [`eval_rule`](Self::eval_rule) with the [`CompiledRule`] already in
    /// hand — the inner interpreter loops look the rule up once and reuse
    /// it for both execution and the slot store, so this is forced inline.
    ///
    /// # Errors
    ///
    /// As for [`eval_rule`](Self::eval_rule).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub fn exec_rule(
        &self,
        grammar: &Grammar,
        tree: &Tree,
        p: ProductionId,
        rule: u32,
        cr: &CompiledRule,
        node: NodeId,
        values: &AttrValues,
        locals: &LocalFrames,
        buf: &mut Vec<Value>,
        counters: &mut Counters,
        ictx: Option<&mut InternCtx>,
    ) -> Result<(Value, bool), EvalError> {
        match &cr.body {
            CBody::Copy(op) => {
                let v = self.fetch(grammar, tree, p, node, op, values, locals, counters)?;
                let v = match ictx {
                    Some(ictx) => ictx.intern(v, counters).0,
                    None => v,
                };
                Ok((v, cr.is_copy))
            }
            CBody::Call { func, args } => {
                buf.clear();
                for op in args {
                    buf.push(self.fetch(grammar, tree, p, node, op, values, locals, counters)?);
                }
                if let Some(ictx) = ictx {
                    // Canonicalize the argument vector; copy-rule transport
                    // keeps stores canonical, so these are O(1) hits in the
                    // steady state.
                    let mut stable = true;
                    for a in buf.iter_mut() {
                        let (v, s) = ictx.intern(std::mem::take(a), counters);
                        *a = v;
                        stable &= s;
                    }
                    let key: Option<MemoKey> = stable.then(|| {
                        (
                            p.index() as u32,
                            rule,
                            buf.iter().map(Value::ident).collect(),
                        )
                    });
                    if let Some(key) = &key {
                        if let Some(hit) = ictx.memo_get(key, counters) {
                            return Ok((hit, false));
                        }
                    }
                    let v = grammar.function(*func).apply(buf).map_err(|e| {
                        EvalError::SemanticFailure {
                            node,
                            message: e.message,
                        }
                    })?;
                    let (v, result_stable) = ictx.intern(v, counters);
                    if let Some(key) = key {
                        if result_stable {
                            ictx.memo_put(key, v.clone());
                        }
                    }
                    return Ok((v, false));
                }
                let v =
                    grammar
                        .function(*func)
                        .apply(buf)
                        .map_err(|e| EvalError::SemanticFailure {
                            node,
                            message: e.message,
                        })?;
                Ok((v, false))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::GrammarBuilder;

    use super::*;

    #[test]
    fn constants_are_interned_once() {
        // Two productions both using the constant 0 share one pool slot.
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let w = g.syn(a, "w");
        let root = g.production("root", s, &[a]);
        g.constant(root, Occ::lhs(out), Value::Int(0));
        let leaf = g.production("leaf", a, &[]);
        g.constant(leaf, Occ::lhs(w), Value::Int(0));
        let g = g.finish().unwrap();

        let prog = CompiledProgram::new(&g);
        assert_eq!(prog.consts(), &[Value::Int(0)]);
        let root_p = g.production_by_name("root").unwrap();
        assert_eq!(
            prog.production(root_p).rule_index(Occ::lhs(out).into()),
            Some(0)
        );
    }
}
