//! The demand-driven (dynamically scheduled) evaluator.
//!
//! FNC-2 "ruled out methods based on dynamic scheduling" for production
//! evaluators (paper §2.1.1) but still ships one: during development, the
//! system can emit "non-deterministic visit-sequences directly after the
//! SNC test" with no space optimization. This module plays that role — it
//! needs no plans at all, works for every non-circular tree (even when the
//! grammar is outside SNC), detects circular instances at run time, and is
//! the baseline the deterministic evaluator is benchmarked against.

use std::collections::HashMap;

use fnc2_ag::{
    AttrId, AttrKind, AttrValues, Grammar, LocalId, NodeId, ONode, Occ, ProductionId, Tree, Value,
};
use fnc2_guard::{BudgetMeter, EvalBudget, InjectedFault};
use fnc2_obs::{Counters, Event, NoopRecorder, Recorder};

use crate::exhaustive::{EvalStats, InternMode, RootInputs};
use crate::program::InternCtx;
use crate::rules::{eval_rule, EvalError, Store};

/// The demand-driven evaluator.
#[derive(Debug)]
pub struct DynamicEvaluator<'g> {
    grammar: &'g Grammar,
    intern: InternMode,
}

/// An attribute instance: an occurrence to evaluate at a node. For
/// inherited attributes the *defining* production is the parent's.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Goal {
    Attr(NodeId, AttrId),
    Local(NodeId, LocalId),
}

struct DynStore<'a> {
    grammar: &'a Grammar,
    values: &'a AttrValues,
    locals: &'a HashMap<(NodeId, LocalId), Value>,
}

impl Store for DynStore<'_> {
    fn value(&self, node: NodeId, attr: AttrId) -> Option<Value> {
        self.values.get(self.grammar, node, attr).cloned()
    }
    fn local(&self, node: NodeId, local: LocalId) -> Option<Value> {
        self.locals.get(&(node, local)).cloned()
    }
}

impl<'g> DynamicEvaluator<'g> {
    /// Creates a demand-driven evaluator for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        DynamicEvaluator {
            grammar,
            intern: InternMode::Off,
        }
    }

    /// Enables or disables hash-cons interning of every stored value
    /// (private per-evaluation table).
    pub fn with_interning(mut self, on: bool) -> Self {
        self.intern = if on {
            InternMode::Local
        } else {
            InternMode::Off
        };
        self
    }

    /// Evaluates every attribute instance of `tree`, demand-driven with
    /// memoization.
    ///
    /// # Errors
    ///
    /// Fails with [`EvalError::CircularInstance`] when the tree's instances
    /// are circular, or [`EvalError::MissingRootInput`] when a root
    /// inherited attribute is not supplied.
    pub fn evaluate(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_guarded(tree, inputs, &EvalBudget::default(), None)
    }

    /// [`DynamicEvaluator::evaluate`] under an explicit [`EvalBudget`],
    /// with an optional deterministic [`InjectedFault`] armed.
    ///
    /// # Errors
    ///
    /// As for [`DynamicEvaluator::evaluate`], plus
    /// [`EvalError::BudgetExceeded`] when a limit is exhausted or the
    /// injected fault fires.
    pub fn evaluate_guarded(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_recorded_guarded(tree, inputs, budget, fault, &mut NoopRecorder)
    }

    /// [`DynamicEvaluator::evaluate`], instrumented: run counters are
    /// replayed into `rec`, every fired rule emits a `RuleFired` event
    /// when tracing is on, and the per-rule profiler hooks are honored.
    /// With [`NoopRecorder`] this monomorphizes to the bare loop.
    ///
    /// # Errors
    ///
    /// As for [`DynamicEvaluator::evaluate`].
    pub fn evaluate_recorded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        rec: &mut R,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_recorded_guarded(tree, inputs, &EvalBudget::default(), None, rec)
    }

    /// [`DynamicEvaluator::evaluate_recorded`] under an explicit
    /// [`EvalBudget`] and optional injected fault — the fully general
    /// entry point the others specialize.
    ///
    /// # Errors
    ///
    /// As for [`DynamicEvaluator::evaluate_guarded`].
    pub fn evaluate_recorded_guarded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
        rec: &mut R,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_inner(tree, inputs, budget, fault, rec, false)
    }

    /// Demand-driven evaluation of the **root outputs only**: demands just
    /// the root phylum's synthesized attributes and whatever they
    /// transitively require, leaving every other instance unevaluated.
    ///
    /// This is the oracle for the dead-rule lint (`L002`): a rule whose
    /// target cannot reach a root output through the static liveness
    /// fixpoint must never fire here, on any tree.
    ///
    /// # Errors
    ///
    /// As for [`DynamicEvaluator::evaluate_guarded`].
    pub fn evaluate_outputs_recorded_guarded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
        rec: &mut R,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_inner(tree, inputs, budget, fault, rec, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_inner<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
        rec: &mut R,
        outputs_only: bool,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        let g = self.grammar;
        let mut meter = BudgetMeter::with_fault(budget, fault);
        let mut values = AttrValues::new(g, tree);
        let mut locals: HashMap<(NodeId, LocalId), Value> = HashMap::new();
        let mut stats = EvalStats::default();
        let root = tree.root();
        let root_ph = g.production(tree.node(root).production()).lhs();
        for attr in g.inherited(root_ph) {
            let v = inputs
                .get(&attr)
                .ok_or_else(|| EvalError::MissingRootInput {
                    what: g.attr(attr).name().to_string(),
                })?;
            values.set(g, root, attr, v.clone());
        }

        // Demand every instance of every node — or, outputs-only, just the
        // root synthesized attributes.
        let all: Vec<(NodeId, AttrId)> = if outputs_only {
            g.synthesized(root_ph)
                .into_iter()
                .map(|a| (root, a))
                .collect()
        } else {
            tree.preorder()
                .flat_map(|(n, _)| {
                    let ph = tree.phylum(g, n);
                    g.phylum(ph)
                        .attrs()
                        .iter()
                        .map(move |&a| (n, a))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let mut in_progress: HashMap<Goal, bool> = HashMap::new();
        let mut ictx = self.intern.ctx();
        let mut icounters = Counters::new();
        for (n, a) in all {
            self.demand(
                tree,
                Goal::Attr(n, a),
                &mut values,
                &mut locals,
                &mut in_progress,
                &mut stats,
                &mut meter,
                &mut ictx,
                &mut icounters,
                rec,
            )?;
        }
        stats.to_counters().replay(rec);
        icounters.replay(rec);
        Ok((values, stats))
    }

    /// Evaluates `goal` with memoization and cycle detection, iteratively:
    /// the demand chain lives on an explicit heap stack (a list-like tree
    /// produces demand chains as deep as the tree), and its length is a
    /// checked [`fnc2_guard::BudgetKind::Depth`] budget instead of a
    /// thread-stack overflow.
    #[allow(clippy::too_many_arguments)]
    fn demand<R: Recorder>(
        &self,
        tree: &Tree,
        goal: Goal,
        values: &mut AttrValues,
        locals: &mut HashMap<(NodeId, LocalId), Value>,
        in_progress: &mut HashMap<Goal, bool>,
        stats: &mut EvalStats,
        meter: &mut BudgetMeter,
        ictx: &mut Option<InternCtx>,
        icounters: &mut Counters,
        rec: &mut R,
    ) -> Result<(), EvalError> {
        let g = self.grammar;
        /// `Enter` demands a goal (memo check, cycle mark, push args);
        /// `Finish` fires its rule once every argument below it completed.
        enum Task {
            Enter(Goal),
            Finish(Goal, NodeId, ProductionId, ONode),
        }
        let mut stack: Vec<Task> = vec![Task::Enter(goal)];
        while let Some(task) = stack.pop() {
            match task {
                Task::Enter(goal) => {
                    match goal {
                        Goal::Attr(n, a) if values.get(g, n, a).is_some() => continue,
                        Goal::Local(n, l) if locals.contains_key(&(n, l)) => continue,
                        _ => {}
                    }
                    if in_progress.insert(goal, true).is_some() {
                        let what = match goal {
                            Goal::Attr(_, a) => g.attr(a).name().to_string(),
                            Goal::Local(n, l) => {
                                let p = tree.node(n).production();
                                g.production(p).locals()[l.index()].name().to_string()
                            }
                        };
                        let node = match goal {
                            Goal::Attr(n, _) | Goal::Local(n, _) => n,
                        };
                        return Err(EvalError::CircularInstance { node, what });
                    }

                    // Locate the defining production and the occurrence.
                    let (def_node, def_prod, target) = match goal {
                        Goal::Attr(n, a) => match g.attr(a).kind() {
                            AttrKind::Synthesized => {
                                let p = tree.node(n).production();
                                (n, p, ONode::Attr(Occ::lhs(a)))
                            }
                            AttrKind::Inherited => {
                                let parent = tree
                                    .node(n)
                                    .parent()
                                    .expect("root inherited supplied as inputs");
                                let pos = tree.child_index(n).expect("child has an index") as u16;
                                let p = tree.node(parent).production();
                                (parent, p, ONode::Attr(Occ::new(pos, a)))
                            }
                        },
                        Goal::Local(n, l) => (n, tree.node(n).production(), ONode::Local(l)),
                    };

                    // Finish after the arguments; push them reversed so they
                    // are demanded in rule order.
                    let rule = g
                        .rule_for(def_prod, target)
                        .expect("validated grammar defines every output");
                    stack.push(Task::Finish(goal, def_node, def_prod, target));
                    let base = stack.len();
                    for arg in rule.read_nodes() {
                        let sub = match arg {
                            ONode::Attr(Occ { pos, attr }) => {
                                let at = if pos == 0 {
                                    def_node
                                } else {
                                    tree.node(def_node).children()[pos as usize - 1]
                                };
                                Goal::Attr(at, attr)
                            }
                            ONode::Local(l) => Goal::Local(def_node, l),
                        };
                        stack.push(Task::Enter(sub));
                    }
                    stack[base..].reverse();
                    meter.check_depth(stack.len()).map_err(|k| {
                        EvalError::budget(k, format!("dynamic evaluator, {def_node}"))
                    })?;
                }
                Task::Finish(goal, def_node, def_prod, target) => {
                    meter.step().map_err(|k| {
                        EvalError::budget(k, format!("dynamic evaluator, {def_node}"))
                    })?;
                    let t0 = if rec.profiling() && rec.sample_rule() {
                        Some(std::time::Instant::now())
                    } else {
                        None
                    };
                    let (value, is_copy) = {
                        let store = DynStore {
                            grammar: g,
                            values,
                            locals,
                        };
                        eval_rule(g, tree, def_prod, def_node, target, &store)?
                    };
                    let value = match ictx {
                        Some(ictx) => ictx.intern(value, icounters).0,
                        None => value,
                    };
                    if rec.profiling() || rec.trace() {
                        // The rule index only matters to the instrumented
                        // paths, so the scan stays off the bare loop.
                        let rule_ix = g
                            .production(def_prod)
                            .rules()
                            .iter()
                            .position(|r| r.target() == target)
                            .expect("validated grammar defines every output")
                            as u32;
                        if rec.profiling() {
                            rec.rule_cost(
                                def_prod.index() as u32,
                                rule_ix,
                                is_copy,
                                t0.map(|t| t.elapsed().as_nanos() as u64),
                            );
                        }
                        if rec.trace() {
                            rec.emit(Event::RuleFired {
                                node: def_node.index() as u32,
                                production: def_prod.index() as u32,
                                rule: rule_ix,
                            });
                        }
                    }
                    meter.grow_cells(value.cell_count() as u64).map_err(|k| {
                        EvalError::budget(k, format!("dynamic evaluator, {def_node}"))
                    })?;
                    stats.evals += 1;
                    if is_copy {
                        stats.copies += 1;
                    }
                    match goal {
                        Goal::Attr(n, a) => {
                            values.set(g, n, a, value);
                        }
                        Goal::Local(n, l) => {
                            locals.insert((n, l), value);
                        }
                    }
                    in_progress.remove(&goal);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, TreeBuilder};

    use super::*;

    #[test]
    fn dynamic_matches_semantics() {
        // Count the chain length two ways.
        let mut g = GrammarBuilder::new("count");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        let g = g.finish().unwrap();

        let mut tb = TreeBuilder::new(&g);
        let mut cur = tb.op("leaf", &[]).unwrap();
        for _ in 0..10 {
            cur = tb.op("node", &[cur]).unwrap();
        }
        let tree = tb.finish_root(cur).unwrap();
        let ev = DynamicEvaluator::new(&g);
        let (values, stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        assert_eq!(
            values.get(&g, tree.root(), g.attr_by_name(s, "n").unwrap()),
            Some(&Value::Int(10))
        );
        assert_eq!(stats.evals, 11, "memoized: one eval per instance");
    }

    /// Outputs-only demand must leave instances a dead rule would define
    /// untouched, and never fire the dead rule.
    #[test]
    fn outputs_only_skips_dead_rules() {
        struct Fired(Vec<(u32, u32)>);
        impl Recorder for Fired {
            fn trace(&self) -> bool {
                true
            }
            fn emit(&mut self, event: Event) {
                if let Event::RuleFired {
                    production, rule, ..
                } = event
                {
                    self.0.push((production, rule));
                }
            }
        }

        // R.out <- S.v; S.w is defined but feeds nothing.
        let mut g = GrammarBuilder::new("junk");
        let r = g.phylum("R");
        let out = g.syn(r, "out");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let w = g.syn(s, "w");
        let top = g.production("top", r, &[s]);
        g.copy(top, Occ::lhs(out), Occ::new(1, v));
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        g.constant(leaf, Occ::lhs(w), Value::Int(2));
        let g = g.finish().unwrap();

        let mut tb = TreeBuilder::new(&g);
        let l = tb.op("leaf", &[]).unwrap();
        let root = tb.op("top", &[l]).unwrap();
        let tree = tb.finish_root(root).unwrap();

        let ev = DynamicEvaluator::new(&g);
        let mut rec = Fired(Vec::new());
        let (values, _) = ev
            .evaluate_outputs_recorded_guarded(
                &tree,
                &RootInputs::new(),
                &EvalBudget::default(),
                None,
                &mut rec,
            )
            .unwrap();
        assert_eq!(
            values.get(&g, tree.root(), out),
            Some(&Value::Int(1)),
            "root output still computed"
        );
        assert_eq!(values.get(&g, l, w), None, "dead instance never evaluated");
        let leaf_p = g.production_by_name("leaf").unwrap();
        let w_rule = g
            .production(leaf_p)
            .rules()
            .iter()
            .position(|rl| rl.target() == ONode::Attr(Occ::lhs(w)))
            .unwrap() as u32;
        assert!(
            !rec.0.contains(&(leaf_p.index() as u32, w_rule)),
            "dead rule fired: {:?}",
            rec.0
        );
    }

    #[test]
    fn circular_tree_detected_at_runtime() {
        // i := s at the parent, s := i at the leaf.
        let mut g = GrammarBuilder::new("circ");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();

        let mut tb = TreeBuilder::new(&g);
        let l = tb.op("leaf", &[]).unwrap();
        let r = tb.op("root", &[l]).unwrap();
        let tree = tb.finish_root(r).unwrap();
        let ev = DynamicEvaluator::new(&g);
        assert!(matches!(
            ev.evaluate(&tree, &RootInputs::new()),
            Err(EvalError::CircularInstance { .. })
        ));
    }

    #[test]
    fn locals_evaluated_on_demand() {
        let mut g = GrammarBuilder::new("loc");
        let s = g.phylum("S");
        let out = g.syn(s, "out");
        let leaf = g.production("leaf", s, &[]);
        let tmp = g.local(leaf, "tmp");
        g.constant(leaf, ONode::Local(tmp), Value::Int(20));
        g.func("double", 1, |a| Value::Int(a[0].as_int() * 2));
        g.call(
            leaf,
            Occ::lhs(out),
            "double",
            [fnc2_ag::Arg::Node(ONode::Local(tmp))],
        );
        let g = g.finish().unwrap();
        let mut tb = TreeBuilder::new(&g);
        let n = tb.op("leaf", &[]).unwrap();
        let tree = tb.finish_root(n).unwrap();
        let ev = DynamicEvaluator::new(&g);
        let (values, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        assert_eq!(values.get(&g, tree.root(), out), Some(&Value::Int(40)));
    }
}
