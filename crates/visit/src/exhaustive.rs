//! The exhaustive visit-sequence evaluator (paper §2.1.1).
//!
//! A deterministic interpreter of the visit-sequences: no run-time
//! scheduling at all — "as much information as possible about the
//! evaluation order [is] embodied in the code of the evaluator itself".
//! Attribute instances live at tree nodes here; the space-optimized
//! interpreter in `fnc2-space` replaces this storage with global variables
//! and stacks.
//!
//! The hot path executes the slot-compiled programs of
//! [`CompiledProgram`]: rule lookups, occurrence resolution and constant
//! clones all happen once, at construction. The pre-compilation
//! interpretation strategy survives as [`Evaluator::evaluate_reference`],
//! both as a differential check and as the "before" leg of the hot-path
//! benchmark.

use std::collections::HashMap;
use std::sync::Arc;

use fnc2_ag::{
    AttrId, AttrValues, Grammar, LocalFrames, LocalId, NodeId, ONode, Occ, SharedInterner, Tree,
    Value,
};
use fnc2_guard::{BudgetMeter, EvalBudget, InjectedFault};
use fnc2_obs::{Counters, Event, Key, NoopRecorder, Recorder};

use crate::program::{CompiledProgram, InternCtx};
use crate::rules::EvalError;
use crate::seq::{Instr, VisitSeqs};

/// How an evaluator canonicalizes the values it produces.
#[derive(Clone, Debug, Default)]
pub enum InternMode {
    /// No interning: values are transported as built (the historical
    /// behavior, and the `--no-intern` escape hatch).
    #[default]
    Off,
    /// A private hash-cons table per evaluation.
    Local,
    /// A thread-safe sharded table shared across evaluations (the batch
    /// driver's workers unify canonical representatives through it; its
    /// statistics are merged once at join).
    Shared(Arc<SharedInterner>),
}

impl InternMode {
    /// The per-evaluation context for this mode, if interning is on.
    /// Downstream evaluators (the space runtime, the incremental
    /// evaluator) call this to share the same backend selection logic.
    pub fn ctx(&self) -> Option<InternCtx> {
        match self {
            InternMode::Off => None,
            InternMode::Local => Some(InternCtx::local()),
            InternMode::Shared(table) => Some(InternCtx::shared(Arc::clone(table))),
        }
    }
}

/// Counters describing one evaluation run (feed the §4 claims: visit
/// overhead of partition replacement, copy-rule volume, cell counts).
///
/// A thin view over the shared `fnc2-obs` counter vocabulary: the
/// evaluator counts into an [`fnc2_obs::Counters`] block and this struct
/// is materialized from it when the run finishes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of `VISIT` instructions executed (tree-walk volume).
    pub visits: usize,
    /// Number of `EVAL` instructions executed.
    pub evals: usize,
    /// How many executed evaluations were copy rules.
    pub copies: usize,
}

impl EvalStats {
    /// Extracts the exhaustive-evaluator view from a counter block.
    pub fn from_counters(c: &Counters) -> EvalStats {
        EvalStats {
            visits: c.get(Key::EvalVisits) as usize,
            evals: c.get(Key::EvalEvals) as usize,
            copies: c.get(Key::EvalCopies) as usize,
        }
    }

    /// Re-expresses this view as a counter block.
    pub fn to_counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set(Key::EvalVisits, self.visits as u64);
        c.set(Key::EvalEvals, self.evals as u64);
        c.set(Key::EvalCopies, self.copies as u64);
        c
    }
}

/// Values of the root's inherited attributes, supplied by the caller.
pub type RootInputs = HashMap<AttrId, Value>;

/// A pre-resolved visit-sequence instruction: the rule to run is looked
/// up once at evaluator-construction time ("as much information as
/// possible … embodied in the code of the evaluator itself").
#[derive(Clone, Debug)]
enum CInstr {
    Eval {
        rule: u32,
        target: ONode,
    },
    Visit {
        child: u16,
        visit: u16,
        partition: u16,
    },
}

/// The exhaustive visit-sequence evaluator.
///
/// Construction compiles the grammar's rules into a [`CompiledProgram`]
/// and the visit-sequences into flat instruction streams; evaluation is
/// read-only on the evaluator, so a single instance can decorate many
/// trees concurrently (the `fnc2-par` batch driver shares one `&Evaluator`
/// across its worker threads).
#[derive(Debug)]
pub struct Evaluator<'g> {
    grammar: &'g Grammar,
    seqs: &'g VisitSeqs,
    program: CompiledProgram,
    /// `compiled[prod][partition][visit-1]` — instruction streams with
    /// rule indices resolved.
    compiled: Vec<Vec<Vec<Vec<CInstr>>>>,
    intern: InternMode,
}

impl<'g> Evaluator<'g> {
    /// Creates an evaluator for `grammar` driven by `seqs`, resolving every
    /// `EVAL` to its rule index up front and slot-compiling every rule.
    pub fn new(grammar: &'g Grammar, seqs: &'g VisitSeqs) -> Self {
        let program = CompiledProgram::new(grammar);
        let mut compiled: Vec<Vec<Vec<Vec<CInstr>>>> = vec![Vec::new(); grammar.production_count()];
        for (p, pi) in seqs.keys() {
            let seq = seqs.seq(p, pi);
            let cp = program.production(p);
            let slot = &mut compiled[p.index()];
            if slot.len() <= pi {
                slot.resize(pi + 1, Vec::new());
            }
            slot[pi] = seq
                .segments
                .iter()
                .map(|segment| {
                    segment
                        .iter()
                        .map(|instr| match instr {
                            Instr::Eval(target) => CInstr::Eval {
                                rule: cp
                                    .rule_index(*target)
                                    .expect("validated grammar defines every output"),
                                target: *target,
                            },
                            Instr::Visit {
                                child,
                                visit,
                                partition,
                            } => CInstr::Visit {
                                child: *child,
                                visit: *visit as u16,
                                partition: *partition as u16,
                            },
                        })
                        .collect()
                })
                .collect();
        }
        Evaluator {
            grammar,
            seqs,
            program,
            compiled,
            intern: InternMode::Off,
        }
    }

    /// Enables or disables hash-cons interning for this evaluator
    /// (private per-evaluation table; see [`InternMode`]).
    pub fn with_interning(mut self, on: bool) -> Self {
        self.intern = if on {
            InternMode::Local
        } else {
            InternMode::Off
        };
        self
    }

    /// Routes this evaluator's interning through a shared sharded table —
    /// the batch driver's workers unify canonical values through it.
    pub fn with_shared_interner(mut self, table: Arc<SharedInterner>) -> Self {
        self.intern = InternMode::Shared(table);
        self
    }

    /// This evaluator's interning mode.
    pub fn intern_mode(&self) -> &InternMode {
        &self.intern
    }

    /// The slot-compiled rule programs driving this evaluator, shared with
    /// the other members of the cascade.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The grammar this evaluator decorates trees of.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    /// Evaluates every attribute instance of `tree`, whose root must derive
    /// the grammar's axiom. `inputs` supplies the root's inherited
    /// attributes (if any).
    ///
    /// # Errors
    ///
    /// Fails if a root inherited attribute is missing from `inputs`, or on
    /// the internal scheduling errors documented in [`EvalError`] (which a
    /// generated plan never triggers).
    pub fn evaluate(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_recorded(tree, inputs, &mut NoopRecorder)
    }

    /// [`Evaluator::evaluate`] under an explicit [`EvalBudget`], with an
    /// optional deterministic [`InjectedFault`] armed (tests/fuzzing).
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate`], plus
    /// [`EvalError::BudgetExceeded`] when a limit is exhausted or the
    /// injected fault fires.
    pub fn evaluate_guarded(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_recorded_guarded(tree, inputs, budget, fault, &mut NoopRecorder)
    }

    /// [`Evaluator::evaluate`], instrumented: counters are replayed into
    /// `rec` when the run finishes, and (when `rec.trace()` is on)
    /// `VisitEnter`/`VisitLeave`/`RuleFired` events are emitted along the
    /// way. With [`NoopRecorder`] this monomorphizes to the bare loop —
    /// `evaluate` is exactly that instantiation.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate`].
    pub fn evaluate_recorded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        rec: &mut R,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        self.evaluate_recorded_guarded(tree, inputs, &EvalBudget::default(), None, rec)
    }

    /// [`Evaluator::evaluate_recorded`] under an explicit [`EvalBudget`]
    /// and optional injected fault — the fully general entry point all the
    /// others specialize.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate_guarded`].
    pub fn evaluate_recorded_guarded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        budget: &EvalBudget,
        fault: Option<InjectedFault>,
        rec: &mut R,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        let mut meter = BudgetMeter::with_fault(budget, fault);
        let mut values = AttrValues::new(self.grammar, tree);
        let mut locals = LocalFrames::new(self.grammar, tree);
        let mut counters = Counters::new();
        let root = tree.root();
        let root_ph = self.grammar.production(tree.node(root).production()).lhs();
        // Supply the root's inherited attributes up front (its single-visit
        // partition makes them all available at visit 1).
        for attr in self.grammar.inherited(root_ph) {
            let v = inputs
                .get(&attr)
                .ok_or_else(|| EvalError::MissingRootInput {
                    what: self.grammar.attr(attr).name().to_string(),
                })?;
            values.set(self.grammar, root, attr, v.clone());
        }
        let visits = self.seqs.partitions_of(root_ph)[0].visit_count();
        let mut buf = Vec::with_capacity(8);
        let mut ictx = self.intern.ctx();
        for v in 1..=visits {
            if rec.spans() {
                rec.span_begin("visit", format!("exhaustive visit {v}/{visits} (root)"));
            }
            let r = self.run_visit(
                tree,
                root,
                0,
                v,
                &mut values,
                &mut locals,
                &mut counters,
                &mut buf,
                &mut meter,
                &mut ictx,
                rec,
            );
            if rec.spans() {
                rec.span_end();
                if let Err(e) = &r {
                    if e.is_budget() {
                        rec.span_instant("guard", format!("budget trip: {e}"));
                    }
                }
            }
            r?;
        }
        counters.replay(rec);
        Ok((values, EvalStats::from_counters(&counters)))
    }

    /// Performs visit `visit` of `node` under `partition`, iteratively
    /// (an explicit frame stack: generated evaluators must digest trees of
    /// arbitrary depth — list-like programs produce very deep spines).
    #[allow(clippy::too_many_arguments)]
    fn run_visit<R: Recorder>(
        &self,
        tree: &Tree,
        node: NodeId,
        partition: usize,
        visit: usize,
        values: &mut AttrValues,
        locals: &mut LocalFrames,
        counters: &mut Counters,
        buf: &mut Vec<Value>,
        meter: &mut BudgetMeter,
        ictx: &mut Option<InternCtx>,
        rec: &mut R,
    ) -> Result<(), EvalError> {
        struct Frame {
            node: NodeId,
            partition: usize,
            visit: usize,
            at: usize,
        }
        let mut stack = vec![Frame {
            node,
            partition,
            visit,
            at: 0,
        }];
        counters.add(Key::EvalVisits, 1);
        if rec.trace() {
            rec.emit(Event::VisitEnter {
                node: node.index() as u32,
                production: tree.node(node).production().index() as u32,
                visit: visit as u16,
            });
        }
        while let Some(frame) = stack.last_mut() {
            let node = frame.node;
            let p = tree.node(node).production();
            let segment: &[CInstr] = &self.compiled[p.index()][frame.partition][frame.visit - 1];
            if frame.at == segment.len() {
                if rec.trace() {
                    rec.emit(Event::VisitLeave {
                        node: node.index() as u32,
                        production: p.index() as u32,
                        visit: frame.visit as u16,
                    });
                }
                stack.pop();
                continue;
            }
            let instr = &segment[frame.at];
            frame.at += 1;
            match instr {
                CInstr::Eval { rule, target: _ } => {
                    meter.step().map_err(|k| {
                        EvalError::budget(k, format!("exhaustive evaluator, {node}"))
                    })?;
                    let rule_ix = *rule;
                    let cr = &self.program.production(p).rules[rule_ix as usize];
                    let t0 = if rec.profiling() && rec.sample_rule() {
                        Some(std::time::Instant::now())
                    } else {
                        None
                    };
                    let (value, is_copy) = self.program.exec_rule(
                        self.grammar,
                        tree,
                        p,
                        rule_ix,
                        cr,
                        node,
                        values,
                        locals,
                        buf,
                        counters,
                        ictx.as_mut(),
                    )?;
                    if rec.profiling() {
                        rec.rule_cost(
                            p.index() as u32,
                            rule_ix,
                            is_copy,
                            t0.map(|t| t.elapsed().as_nanos() as u64),
                        );
                    }
                    meter.grow_cells(value.cell_count() as u64).map_err(|k| {
                        EvalError::budget(k, format!("exhaustive evaluator, {node}"))
                    })?;
                    counters.add(Key::EvalEvals, 1);
                    if is_copy {
                        counters.add(Key::EvalCopies, 1);
                    }
                    if rec.trace() {
                        rec.emit(Event::RuleFired {
                            node: node.index() as u32,
                            production: p.index() as u32,
                            rule: rule_ix,
                        });
                        // One AttrRead per attribute-occurrence argument,
                        // resolved to the instance actually fetched — the
                        // lint soundness oracle checks no `L001` attribute
                        // ever appears here.
                        let sem = &self.grammar.production(p).rules()[rule_ix as usize];
                        for n in sem.read_nodes() {
                            if let fnc2_ag::ONode::Attr(o) = n {
                                let at = if o.pos == 0 {
                                    node
                                } else {
                                    tree.node(node).children()[o.pos as usize - 1]
                                };
                                rec.emit(Event::AttrRead {
                                    node: at.index() as u32,
                                    attr: o.attr.index() as u32,
                                });
                            }
                        }
                    }
                    cr.slot.store(tree, node, values, locals, value);
                }
                CInstr::Visit {
                    child,
                    visit: w,
                    partition: cpart,
                } => {
                    let c = tree.node(node).children()[*child as usize - 1];
                    meter
                        .check_depth(stack.len() + 1)
                        .map_err(|k| EvalError::budget(k, format!("exhaustive evaluator, {c}")))?;
                    counters.add(Key::EvalVisits, 1);
                    if rec.trace() {
                        rec.emit(Event::VisitEnter {
                            node: c.index() as u32,
                            production: tree.node(c).production().index() as u32,
                            visit: *w,
                        });
                    }
                    stack.push(Frame {
                        node: c,
                        partition: *cpart as usize,
                        visit: *w as usize,
                        at: 0,
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates `tree` with the *pre-slot-compilation* interpretation
    /// strategy: per-fetch occurrence resolution over [`fnc2_ag::Arg`],
    /// per-execution constant clones, and a `(NodeId, LocalId)` hash map
    /// for production locals. Kept as the "before" leg of the hot-path
    /// benchmark (`table_throughput`) and as an in-binary differential
    /// check against the compiled path.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate`].
    pub fn evaluate_reference(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        let mut values = AttrValues::new(self.grammar, tree);
        let mut locals: HashMap<(NodeId, LocalId), Value> = HashMap::new();
        let mut counters = Counters::new();
        let root = tree.root();
        let root_ph = self.grammar.production(tree.node(root).production()).lhs();
        for attr in self.grammar.inherited(root_ph) {
            let v = inputs
                .get(&attr)
                .ok_or_else(|| EvalError::MissingRootInput {
                    what: self.grammar.attr(attr).name().to_string(),
                })?;
            values.set(self.grammar, root, attr, v.clone());
        }
        let visits = self.seqs.partitions_of(root_ph)[0].visit_count();
        let mut buf = Vec::with_capacity(8);
        let mut meter = BudgetMeter::new(&EvalBudget::default());
        for v in 1..=visits {
            self.run_visit_reference(
                tree,
                root,
                0,
                v,
                &mut values,
                &mut locals,
                &mut counters,
                &mut buf,
                &mut meter,
            )?;
        }
        Ok((values, EvalStats::from_counters(&counters)))
    }

    /// Evaluates one rule the pre-compilation way: resolve each `Arg` on
    /// the fly, clone constants, hash production locals.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn eval_with_buf(
        &self,
        tree: &Tree,
        rule: &fnc2_ag::SemRule,
        node: NodeId,
        values: &AttrValues,
        locals: &HashMap<(NodeId, LocalId), Value>,
        buf: &mut Vec<Value>,
    ) -> Result<(Value, bool), EvalError> {
        use fnc2_ag::{Arg, RuleBody};
        let g = self.grammar;
        let fetch = |arg: &Arg| -> Result<Value, EvalError> {
            match arg {
                Arg::Const(v) => Ok(v.clone()),
                Arg::Token => {
                    tree.node(node)
                        .token()
                        .cloned()
                        .ok_or_else(|| EvalError::MissingToken {
                            node,
                            production: g
                                .production(tree.node(node).production())
                                .name()
                                .to_string(),
                        })
                }
                Arg::Node(ONode::Attr(Occ { pos, attr })) => {
                    let at = if *pos == 0 {
                        node
                    } else {
                        tree.node(node).children()[*pos as usize - 1]
                    };
                    values
                        .get(g, at, *attr)
                        .cloned()
                        .ok_or_else(|| EvalError::MissingValue {
                            node: at,
                            what: g.attr(*attr).name().to_string(),
                        })
                }
                Arg::Node(ONode::Local(l)) => {
                    locals
                        .get(&(node, *l))
                        .cloned()
                        .ok_or_else(|| EvalError::MissingValue {
                            node,
                            what: g.production(tree.node(node).production()).locals()[l.index()]
                                .name()
                                .to_string(),
                        })
                }
            }
        };
        match rule.body() {
            RuleBody::Copy(arg) => Ok((fetch(arg)?, rule.is_copy())),
            RuleBody::Call { func, args } => {
                buf.clear();
                for a in args {
                    buf.push(fetch(a)?);
                }
                let v = g
                    .function(*func)
                    .apply(buf)
                    .map_err(|e| EvalError::SemanticFailure {
                        node,
                        message: e.message,
                    })?;
                Ok((v, false))
            }
        }
    }

    /// [`run_visit`](Self::run_visit) with the pre-compilation fetch
    /// strategy (see [`evaluate_reference`](Self::evaluate_reference)).
    #[allow(clippy::too_many_arguments)]
    fn run_visit_reference(
        &self,
        tree: &Tree,
        node: NodeId,
        partition: usize,
        visit: usize,
        values: &mut AttrValues,
        locals: &mut HashMap<(NodeId, LocalId), Value>,
        counters: &mut Counters,
        buf: &mut Vec<Value>,
        meter: &mut BudgetMeter,
    ) -> Result<(), EvalError> {
        struct Frame {
            node: NodeId,
            partition: usize,
            visit: usize,
            at: usize,
        }
        let mut stack = vec![Frame {
            node,
            partition,
            visit,
            at: 0,
        }];
        counters.add(Key::EvalVisits, 1);
        while let Some(frame) = stack.last_mut() {
            let node = frame.node;
            let p = tree.node(node).production();
            let segment: &[CInstr] = &self.compiled[p.index()][frame.partition][frame.visit - 1];
            if frame.at == segment.len() {
                stack.pop();
                continue;
            }
            let instr = &segment[frame.at];
            frame.at += 1;
            match instr {
                CInstr::Eval { rule, target } => {
                    meter.step().map_err(|k| {
                        EvalError::budget(k, format!("reference evaluator, {node}"))
                    })?;
                    let rule = &self.grammar.production(p).rules()[*rule as usize];
                    let (value, is_copy) =
                        self.eval_with_buf(tree, rule, node, values, locals, buf)?;
                    counters.add(Key::EvalEvals, 1);
                    if is_copy {
                        counters.add(Key::EvalCopies, 1);
                    }
                    match target {
                        ONode::Attr(Occ { pos, attr }) => {
                            let at = if *pos == 0 {
                                node
                            } else {
                                tree.node(node).children()[*pos as usize - 1]
                            };
                            values.set(self.grammar, at, *attr, value);
                        }
                        ONode::Local(l) => {
                            locals.insert((node, *l), value);
                        }
                    }
                }
                CInstr::Visit {
                    child,
                    visit: w,
                    partition: cpart,
                } => {
                    let c = tree.node(node).children()[*child as usize - 1];
                    meter
                        .check_depth(stack.len() + 1)
                        .map_err(|k| EvalError::budget(k, format!("reference evaluator, {c}")))?;
                    counters.add(Key::EvalVisits, 1);
                    stack.push(Frame {
                        node: c,
                        partition: *cpart as usize,
                        visit: *w as usize,
                        at: 0,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, TreeBuilder};
    use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
    use fnc2_obs::Obs;

    use crate::seq::build_visit_seqs;

    use super::*;

    /// Knuth's binary numbers: `value` of "1101" is 13, of "110.01" shapes
    /// omitted (no fraction here), scales propagate right-to-left.
    fn binary() -> Grammar {
        let mut g = GrammarBuilder::new("binary");
        let number = g.phylum("Number");
        let seq = g.phylum("Seq");
        let bit = g.phylum("Bit");
        let n_value = g.syn(number, "value");
        let s_value = g.syn(seq, "value");
        let s_len = g.syn(seq, "length");
        let s_scale = g.inh(seq, "scale");
        let b_value = g.syn(bit, "value");
        let b_scale = g.inh(bit, "scale");
        g.func("add", 2, |a| Value::Real(a[0].as_real() + a[1].as_real()));
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.func("pow2", 1, |a| Value::Real(2f64.powi(a[0].as_int() as i32)));
        let number_p = g.production("number", number, &[seq]);
        g.copy(
            number_p,
            fnc2_ag::Occ::lhs(n_value),
            fnc2_ag::Occ::new(1, s_value),
        );
        g.constant(number_p, fnc2_ag::Occ::new(1, s_scale), Value::Int(0));
        let pair = g.production("pair", seq, &[seq, bit]);
        g.call(
            pair,
            fnc2_ag::Occ::lhs(s_value),
            "add",
            [
                fnc2_ag::Occ::new(1, s_value).into(),
                fnc2_ag::Occ::new(2, b_value).into(),
            ],
        );
        g.call(
            pair,
            fnc2_ag::Occ::lhs(s_len),
            "succ",
            [fnc2_ag::Occ::new(1, s_len).into()],
        );
        g.call(
            pair,
            fnc2_ag::Occ::new(1, s_scale),
            "succ",
            [fnc2_ag::Occ::lhs(s_scale).into()],
        );
        g.copy(
            pair,
            fnc2_ag::Occ::new(2, b_scale),
            fnc2_ag::Occ::lhs(s_scale),
        );
        let single = g.production("single", seq, &[bit]);
        g.copy(
            single,
            fnc2_ag::Occ::lhs(s_value),
            fnc2_ag::Occ::new(1, b_value),
        );
        g.constant(single, fnc2_ag::Occ::lhs(s_len), Value::Int(1));
        g.copy(
            single,
            fnc2_ag::Occ::new(1, b_scale),
            fnc2_ag::Occ::lhs(s_scale),
        );
        let zero = g.production("zero", bit, &[]);
        g.constant(zero, fnc2_ag::Occ::lhs(b_value), Value::Real(0.0));
        let one = g.production("one", bit, &[]);
        g.call(
            one,
            fnc2_ag::Occ::lhs(b_value),
            "pow2",
            [fnc2_ag::Occ::lhs(b_scale).into()],
        );
        g.finish().unwrap()
    }

    /// Builds the tree of a bit string like "1101".
    fn bits_tree(g: &Grammar, bits: &str) -> fnc2_ag::Tree {
        let mut tb = TreeBuilder::new(g);
        let mut it = bits.chars();
        let first = it.next().expect("nonempty");
        let bit_node = |tb: &mut TreeBuilder, c: char| {
            tb.op(if c == '1' { "one" } else { "zero" }, &[]).unwrap()
        };
        let b = bit_node(&mut tb, first);
        let mut seq = tb.op("single", &[b]).unwrap();
        for c in it {
            let b = bit_node(&mut tb, c);
            seq = tb.op("pair", &[seq, b]).unwrap();
        }
        let root = tb.op("number", &[seq]).unwrap();
        tb.finish_root(root).unwrap()
    }

    #[test]
    fn binary_number_value() {
        let g = binary();
        let snc = snc_test(&g);
        assert!(snc.is_snc());
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);

        let tree = bits_tree(&g, "1101");
        let (values, stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let number = g.phylum_by_name("Number").unwrap();
        let value = g.attr_by_name(number, "value").unwrap();
        assert_eq!(values.get(&g, tree.root(), value), Some(&Value::Real(13.0)));
        assert!(stats.evals > 0);
        assert!(stats.visits >= tree.size());
        // Every instance is decorated (exhaustive evaluation).
        let mut instances = 0;
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(&g, n);
            instances += g.phylum(ph).attrs().len();
        }
        assert_eq!(values.live_count(), instances);
    }

    #[test]
    fn missing_root_input_reported() {
        // Root with an inherited attribute and no input.
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let base = g.inh(s, "base");
        let out = g.syn(s, "out");
        let leaf = g.production("leaf", s, &[]);
        g.copy(leaf, fnc2_ag::Occ::lhs(out), fnc2_ag::Occ::lhs(base));
        let g = g.finish().unwrap();
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let mut tb = TreeBuilder::new(&g);
        let leaf_p = g.production_by_name("leaf").unwrap();
        let n = tb.node(leaf_p, &[]).unwrap();
        let tree = tb.finish_root(n).unwrap();
        assert!(matches!(
            ev.evaluate(&tree, &RootInputs::new()),
            Err(EvalError::MissingRootInput { .. })
        ));
        // And with the input supplied it works.
        let mut inputs = RootInputs::new();
        inputs.insert(base, Value::Int(9));
        let (values, _) = ev.evaluate(&tree, &inputs).unwrap();
        assert_eq!(values.get(&g, tree.root(), out), Some(&Value::Int(9)));
    }

    #[test]
    fn reference_and_compiled_paths_agree() {
        let g = binary();
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let tree = bits_tree(&g, "1011011101");
        let (fast, fast_stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let (slow, slow_stats) = ev.evaluate_reference(&tree, &RootInputs::new()).unwrap();
        assert_eq!(fast_stats, slow_stats);
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(&g, n);
            for &a in g.phylum(ph).attrs() {
                assert_eq!(fast.get(&g, n, a), slow.get(&g, n, a), "{n} {a}");
            }
        }
    }

    #[test]
    fn budgets_trip_as_classified_errors() {
        use fnc2_guard::BudgetKind;
        let g = binary();
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let tree = bits_tree(&g, "1011011101");

        let err = ev
            .evaluate_guarded(
                &tree,
                &RootInputs::new(),
                &EvalBudget::unlimited().with_max_steps(3),
                None,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::BudgetExceeded {
                    kind: BudgetKind::Steps,
                    ..
                }
            ),
            "{err}"
        );

        let err = ev
            .evaluate_guarded(
                &tree,
                &RootInputs::new(),
                &EvalBudget::unlimited().with_max_depth(2),
                None,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::BudgetExceeded {
                    kind: BudgetKind::Depth,
                    ..
                }
            ),
            "{err}"
        );

        let err = ev
            .evaluate_guarded(
                &tree,
                &RootInputs::new(),
                &EvalBudget::unlimited().with_max_value_cells(2),
                None,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::BudgetExceeded {
                    kind: BudgetKind::ValueCells,
                    ..
                }
            ),
            "{err}"
        );

        // An injected fault surfaces as a classified error, and the same
        // call without the fault still succeeds (transient-retry shape).
        let err = ev
            .evaluate_guarded(
                &tree,
                &RootInputs::new(),
                &EvalBudget::default(),
                Some(InjectedFault::FailRule { step: 2 }),
            )
            .unwrap_err();
        assert!(err.is_budget(), "{err}");
        let (ok, _) = ev
            .evaluate_guarded(&tree, &RootInputs::new(), &EvalBudget::default(), None)
            .unwrap();
        let (plain, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(&g, n);
            for &a in g.phylum(ph).attrs() {
                assert_eq!(ok.get(&g, n, a), plain.get(&g, n, a), "bit-identical");
            }
        }
    }

    #[test]
    fn const_fetches_hit_the_interned_pool() {
        let g = binary();
        let snc = snc_test(&g);
        let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        let seqs = build_visit_seqs(&g, &lo);
        let ev = Evaluator::new(&g, &seqs);
        let tree = bits_tree(&g, "1001");
        let mut obs = Obs::new();
        ev.evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
            .unwrap();
        // "1001": one `number` const-scale, one `single` const-length, and
        // two `zero` const bit values — four interned-constant fetches.
        assert_eq!(obs.metrics.counter("eval.const_hits"), 4);
    }
}
