//! Regression test for evaluator construction cost: `Evaluator::new`
//! used to resolve every EVAL instruction with a linear `position()` scan
//! over the production's rules, making construction quadratic in
//! rules-per-production. It now uses a precomputed target→rule-index map
//! per production; this test pins construction on the biggest Table 1
//! synthetic grammar under a loose wall-clock bound so the scan cannot
//! quietly come back.

use std::time::Instant;

use fnc2_analysis::{classify, Inclusion};
use fnc2_corpus::{synthetic, TABLE1_PROFILES};
use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

#[test]
fn construction_on_large_grammar_is_fast() {
    // AG5: the largest profile (74 phyla, 3 attr pairs, SNC-only, so some
    // phyla carry two partitions — the most visit-sequence material).
    let profile = &TABLE1_PROFILES[4];
    let grammar = synthetic(profile);
    let c = classify(&grammar, 1, Inclusion::Long).expect("classifies");
    let seqs = build_visit_seqs(&grammar, &c.l_ordered.expect("evaluable"));

    // Warm: also proves a constructed evaluator still works.
    let ev = Evaluator::new(&grammar, &seqs);
    let tree = fnc2_corpus::synthetic_tree(&grammar, profile, 120, 1);
    let (_, stats) = ev.evaluate(&tree, &RootInputs::new()).expect("runs");
    assert!(stats.evals > 0);

    let t0 = Instant::now();
    const REPS: usize = 50;
    for _ in 0..REPS {
        let ev = Evaluator::new(&grammar, &seqs);
        // Keep the construction observable.
        std::hint::black_box(&ev);
    }
    let elapsed = t0.elapsed();
    // Loose bound: with the precomputed map, 50 constructions take a few
    // milliseconds even on a loaded CI machine; the quadratic scan pushed
    // well past this on AG5-sized grammars.
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "{REPS} constructions took {elapsed:?}"
    );
}
