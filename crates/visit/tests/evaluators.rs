//! Evaluator integration tests: multi-partition dispatch, cross-visit
//! locals, deep trees, and visit accounting.

use fnc2_ag::{Grammar, GrammarBuilder, ONode, Occ, TreeBuilder, Value};
use fnc2_analysis::{classify, snc_test, snc_to_l_ordered, Inclusion};
use fnc2_visit::{build_visit_seqs, DynamicEvaluator, Evaluator, RootInputs};

/// The AG5 shape: X is used under two contexts that need *different*
/// partitions; the compiled evaluator must dispatch the right partition
/// per VISIT ("recursive VISIT instructions carry an additional parameter
/// that identifies the partition to use on the visited node").
#[test]
fn multi_partition_dispatch_is_correct() {
    let g = fnc2_corpus::snc_only();
    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let lo = c.l_ordered.unwrap();
    let x = g.phylum_by_name("X").unwrap();
    assert_eq!(lo.partitions_of(x).len(), 2, "two partitions on X");
    let seqs = build_visit_seqs(&g, &lo);
    let ev = Evaluator::new(&g, &seqs);
    let dynev = DynamicEvaluator::new(&g);
    for ctx in ["ctx_a", "ctx_b"] {
        let mut tb = TreeBuilder::new(&g);
        let leaf = tb.op("leafx", &[]).unwrap();
        let root = tb.op(ctx, &[leaf]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        let (a, _) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
        let (b, _) = dynev.evaluate(&tree, &RootInputs::new()).unwrap();
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(&g, n);
            for &attr in g.phylum(ph).attrs() {
                assert_eq!(a.get(&g, n, attr), b.get(&g, n, attr), "{ctx}");
            }
        }
    }
}

/// A production-local attribute computed in visit 1 and used in visit 2:
/// locals must survive across segments of the same node activation.
#[test]
fn locals_survive_across_visits() {
    let mut g = GrammarBuilder::new("crossvisit_local");
    let s = g.phylum("S");
    let a = g.phylum("A");
    let out = g.syn(s, "out");
    let i1 = g.inh(a, "i1");
    let s1 = g.syn(a, "s1");
    let i2 = g.inh(a, "i2");
    let s2 = g.syn(a, "s2");
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    g.func("mul10", 1, |v| Value::Int(v[0].as_int() * 10));
    let root = g.production("root", s, &[a]);
    g.constant(root, Occ::new(1, i1), Value::Int(3));
    // i2 depends on s1 → forces 2 visits on A.
    g.copy(root, Occ::new(1, i2), Occ::new(1, s1));
    g.copy(root, Occ::lhs(out), Occ::new(1, s2));
    let leaf = g.production("leafa", a, &[]);
    let tmp = g.local(leaf, "tmp");
    // tmp computed from i1 (available in visit 1).
    g.call(leaf, ONode::Local(tmp), "mul10", [Occ::lhs(i1).into()]);
    g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
    // s2 (visit 2) reads BOTH i2 and the visit-1 local.
    g.call(
        leaf,
        Occ::lhs(s2),
        "add",
        [Occ::lhs(i2).into(), fnc2_ag::Arg::Node(ONode::Local(tmp))],
    );
    let g = g.finish().unwrap();

    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let lo = c.l_ordered.unwrap();
    let a_ph = g.phylum_by_name("A").unwrap();
    assert_eq!(lo.partitions_of(a_ph)[0].visit_count(), 2);
    let seqs = build_visit_seqs(&g, &lo);
    let ev = Evaluator::new(&g, &seqs);
    let mut tb = TreeBuilder::new(&g);
    let leaf = tb.op("leafa", &[]).unwrap();
    let root = tb.op("root", &[leaf]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let (vals, stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
    let s_ph = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s_ph, "out").unwrap();
    // out = i2 + tmp = s1 + 10*i1 = 3 + 30 = 33.
    assert_eq!(vals.get(&g, tree.root(), out), Some(&Value::Int(33)));
    assert!(stats.visits >= 3, "root once + A twice");
}

/// Deep chains exercise the recursion depth of the interpreter.
#[test]
fn deep_chain_evaluates() {
    let mut g = GrammarBuilder::new("deep");
    let s = g.phylum("S");
    let n = g.syn(s, "n");
    g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
    let leaf = g.production("leaf", s, &[]);
    g.constant(leaf, Occ::lhs(n), Value::Int(0));
    let node = g.production("node", s, &[s]);
    g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
    let g = g.finish().unwrap();

    let snc = snc_test(&g);
    let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&g, &lo);
    let ev = Evaluator::new(&g, &seqs);
    let mut tb = TreeBuilder::new(&g);
    let mut cur = tb.op("leaf", &[]).unwrap();
    const DEPTH: usize = 20_000;
    for _ in 0..DEPTH {
        cur = tb.op("node", &[cur]).unwrap();
    }
    let tree = tb.finish_root(cur).unwrap();
    let (vals, stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
    assert_eq!(
        vals.get(&g, tree.root(), n),
        Some(&Value::Int(DEPTH as i64))
    );
    assert_eq!(stats.visits, DEPTH + 1);
    assert_eq!(stats.evals, DEPTH + 1);
}

/// Visit accounting: every node is visited exactly
/// `visit_count(partition)` times in an exhaustive run.
#[test]
fn visit_counts_match_partitions() {
    let g = fnc2_corpus::blocks();
    let c = classify(&g, 1, Inclusion::Long).unwrap();
    let lo = c.l_ordered.unwrap();
    let seqs = build_visit_seqs(&g, &lo);
    let ev = Evaluator::new(&g, &seqs);
    let tree = fnc2_corpus::blocks_tree(&g, "d:a u:a [ d:b u:b ] u:c");
    let (_, stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
    // Sum over nodes of their partition's visit count.
    let expected: usize = tree
        .preorder()
        .map(|(n, _)| {
            let ph = tree.phylum(&g, n);
            lo.partitions_of(ph)[0].visit_count()
        })
        .sum();
    assert_eq!(stats.visits, expected);
}

/// Copies are counted by the evaluator (the §4.1 statistics feed).
#[test]
fn copy_stats_counted() {
    let g = fnc2_corpus::desk();
    let snc = snc_test(&g);
    let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&g, &lo);
    let ev = Evaluator::new(&g, &seqs);
    let mut tb = TreeBuilder::new(&g);
    let l1 = tb
        .node_with_token(
            g.production_by_name("lit").unwrap(),
            &[],
            Some(Value::Int(1)),
        )
        .unwrap();
    let l2 = tb
        .node_with_token(
            g.production_by_name("lit").unwrap(),
            &[],
            Some(Value::Int(2)),
        )
        .unwrap();
    let sum = tb.op("add", &[l1, l2]).unwrap();
    let root = tb.op("prog", &[sum]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let (_, stats) = ev.evaluate(&tree, &RootInputs::new()).unwrap();
    // env copies into both children of `add` are occurrence copies.
    assert!(stats.copies >= 2, "{stats:?}");
    assert!(stats.evals > stats.copies);
}

/// Grammars where a phylum has several productions with different local
/// dependency shapes still produce one coherent partition.
#[test]
fn mixed_productions_share_one_partition() {
    let g: Grammar = fnc2_corpus::binary();
    let snc = snc_test(&g);
    let lo = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
    let seq_ph = g.phylum_by_name("Seq").unwrap();
    // `pair` and `single` agree on Seq's partition, `number` and
    // `fraction` both plan against it.
    for p in g.phylum(seq_ph).productions() {
        assert!(lo.plan(*p, 0).is_some());
    }
}
