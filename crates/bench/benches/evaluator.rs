//! Bench: generated vs. hand-written vs. demand-driven evaluation (the
//! §4.2 comparison, Table 2's execution side) — plus the zero-cost check
//! for the instrumentation layer: `evaluate` (which routes through the
//! no-op `Recorder`) must stay within ~2% of the explicit
//! `NoopRecorder` instantiation, and the `Obs`-instrumented run is
//! reported alongside so the metrics overhead stays visible.

use fnc2::visit::{DynamicEvaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_bench::harness::bench;
use fnc2_bench::{bit_string, handwritten_binary_boxed, handwritten_minipascal};
use fnc2_corpus as corpus;
use fnc2_obs::{NoopRecorder, Obs};

fn bench_binary() {
    let compiled = Pipeline::new().compile(corpus::binary()).expect("compiles");
    let tree = corpus::binary_tree(&compiled.grammar, &bit_string(1024, 9));
    let generated = bench("evaluator/binary-1024/generated", 20, || {
        compiled.evaluate(&tree, &RootInputs::new()).expect("runs")
    });
    let noop = bench("evaluator/binary-1024/generated-noop-recorder", 20, || {
        compiled
            .evaluate_recorded(&tree, &RootInputs::new(), &mut NoopRecorder)
            .expect("runs")
    });
    bench("evaluator/binary-1024/generated-obs", 20, || {
        let mut obs = Obs::new();
        compiled
            .evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
            .expect("runs")
    });
    bench("evaluator/binary-1024/optimized", 20, || {
        compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .expect("runs")
    });
    bench("evaluator/binary-1024/hand-written(boxed)", 20, || {
        handwritten_binary_boxed(&compiled.grammar, &tree)
    });
    let dynev = DynamicEvaluator::new(&compiled.grammar);
    bench("evaluator/binary-1024/demand-driven", 20, || {
        dynev.evaluate(&tree, &RootInputs::new()).expect("runs")
    });

    // The instrumentation acceptance check: the public path and the
    // explicit no-op instantiation are the same monomorphization, so the
    // ratio should sit at 1.0 give or take scheduler noise.
    let ratio = generated.median_ns / noop.median_ns;
    println!("evaluator/binary-1024: evaluate vs noop-recorder ratio {ratio:.3} (target <= 1.02)");
}

fn bench_minipascal() {
    let compiled = Pipeline::new()
        .compile(corpus::minipascal().0)
        .expect("compiles");
    let src = corpus::sample_program(32);
    let tree = corpus::parse_minipascal(&compiled.grammar, &src).expect("parses");
    bench("evaluator/minipascal-32blocks/generated", 20, || {
        compiled.evaluate(&tree, &RootInputs::new()).expect("runs")
    });
    bench("evaluator/minipascal-32blocks/hand-written", 20, || {
        handwritten_minipascal(&compiled.grammar, &tree)
    });
}

fn main() {
    bench_binary();
    bench_minipascal();
}
