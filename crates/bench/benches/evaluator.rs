//! Criterion bench: generated vs. hand-written vs. demand-driven
//! evaluation (the §4.2 comparison, Table 2's execution side).

use criterion::{criterion_group, criterion_main, Criterion};
use fnc2::visit::{DynamicEvaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_bench::{bit_string, handwritten_binary_boxed, handwritten_minipascal};
use fnc2_corpus as corpus;

fn bench_binary(c: &mut Criterion) {
    let compiled = Pipeline::new().compile(corpus::binary()).expect("compiles");
    let tree = corpus::binary_tree(&compiled.grammar, &bit_string(1024, 9));
    let mut group = c.benchmark_group("evaluator/binary-1024");
    group.sample_size(20);
    group.bench_function("generated", |b| {
        b.iter(|| compiled.evaluate(&tree, &RootInputs::new()).expect("runs"));
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            compiled
                .evaluate_optimized(&tree, &RootInputs::new())
                .expect("runs")
        });
    });
    group.bench_function("hand-written(boxed)", |b| {
        b.iter(|| handwritten_binary_boxed(&compiled.grammar, &tree));
    });
    group.bench_function("demand-driven", |b| {
        let dynev = DynamicEvaluator::new(&compiled.grammar);
        b.iter(|| dynev.evaluate(&tree, &RootInputs::new()).expect("runs"));
    });
    group.finish();
}

fn bench_minipascal(c: &mut Criterion) {
    let compiled = Pipeline::new()
        .compile(corpus::minipascal().0)
        .expect("compiles");
    let src = corpus::sample_program(32);
    let tree = corpus::parse_minipascal(&compiled.grammar, &src).expect("parses");
    let mut group = c.benchmark_group("evaluator/minipascal-32blocks");
    group.sample_size(20);
    group.bench_function("generated", |b| {
        b.iter(|| compiled.evaluate(&tree, &RootInputs::new()).expect("runs"));
    });
    group.bench_function("hand-written", |b| {
        b.iter(|| handwritten_minipascal(&compiled.grammar, &tree));
    });
    group.finish();
}

criterion_group!(benches, bench_binary, bench_minipascal);
criterion_main!(benches);
