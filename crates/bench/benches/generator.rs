//! Bench: the evaluator generator (Table 1's time column).
//!
//! Times the generator's phases — classification (SNC/DNC/OAG cascade +
//! transformation), visit-sequence generation, and space optimization — on
//! the seven Table 1 profiles.

use fnc2::analysis::{classify, Inclusion};
use fnc2::Pipeline;
use fnc2_bench::harness::bench;
use fnc2_corpus::{synthetic, TABLE1_PROFILES};

fn main() {
    for profile in &TABLE1_PROFILES {
        let grammar = synthetic(profile);
        bench(&format!("generator/full/{}", profile.name), 10, || {
            Pipeline::new().compile(grammar.clone()).expect("compiles")
        });
        bench(&format!("generator/classify/{}", profile.name), 10, || {
            classify(&grammar, 1, Inclusion::Long).expect("classifies")
        });
    }
}
