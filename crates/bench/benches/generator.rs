//! Criterion bench: the evaluator generator (Table 1's time column).
//!
//! Times the generator's phases — classification (SNC/DNC/OAG cascade +
//! transformation), visit-sequence generation, and space optimization — on
//! the seven Table 1 profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fnc2::analysis::{classify, Inclusion};
use fnc2::Pipeline;
use fnc2_corpus::{synthetic, TABLE1_PROFILES};

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for profile in &TABLE1_PROFILES {
        let grammar = synthetic(profile);
        group.bench_with_input(BenchmarkId::new("full", profile.name), &grammar, |b, g| {
            b.iter(|| Pipeline::new().compile(g.clone()).expect("compiles"));
        });
        group.bench_with_input(
            BenchmarkId::new("classify", profile.name),
            &grammar,
            |b, g| {
                b.iter(|| classify(g, 1, Inclusion::Long).expect("classifies"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
