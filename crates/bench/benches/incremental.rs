//! Bench: incremental reevaluation after a one-leaf edit vs. exhaustive
//! reevaluation (the §2.1.2 economy).

use fnc2::ag::{Grammar, GrammarBuilder, NodeId, Occ, TreeBuilder, Value};
use fnc2::incremental::{Equality, IncrementalEvaluator};
use fnc2::visit::{DynamicEvaluator, RootInputs};
use fnc2_bench::harness::bench;

fn sum_grammar() -> Grammar {
    let mut g = GrammarBuilder::new("sum");
    let s = g.phylum("S");
    let e = g.phylum("E");
    let total = g.syn(s, "total");
    let depth = g.inh(e, "depth");
    let sum = g.syn(e, "sum");
    g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    let root = g.production("root", s, &[e]);
    g.copy(root, Occ::lhs(total), Occ::new(1, sum));
    g.constant(root, Occ::new(1, depth), Value::Int(0));
    let fork = g.production("fork", e, &[e, e]);
    g.call(fork, Occ::new(1, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(fork, Occ::new(2, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(
        fork,
        Occ::lhs(sum),
        "add",
        [Occ::new(1, sum).into(), Occ::new(2, sum).into()],
    );
    let leaf = g.production("leafe", e, &[]);
    g.copy(leaf, Occ::lhs(sum), fnc2::ag::Arg::Token);
    g.finish().expect("well-defined")
}

fn balanced(g: &Grammar, tb: &mut TreeBuilder, depth: usize, next: &mut i64) -> NodeId {
    if depth == 0 {
        *next += 1;
        tb.node_with_token(
            g.production_by_name("leafe").unwrap(),
            &[],
            Some(Value::Int(*next % 13)),
        )
        .unwrap()
    } else {
        let a = balanced(g, tb, depth - 1, next);
        let b = balanced(g, tb, depth - 1, next);
        tb.op("fork", &[a, b]).unwrap()
    }
}

fn main() {
    let g = sum_grammar();
    let mut tb = TreeBuilder::new(&g);
    let mut next = 0;
    let body = balanced(&g, &mut tb, 12, &mut next);
    let root = tb.op("root", &[body]).unwrap();
    let tree = tb.finish_root(root).unwrap();

    let mut inc =
        IncrementalEvaluator::new(&g, tree.clone(), Equality::default()).expect("evaluates");
    let mut flip = 0i64;
    bench("incremental/depth-12/one-leaf-edit", 10, || {
        let victim = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).children().is_empty())
            .map(|(n, _)| n)
            .unwrap();
        let mut tb = TreeBuilder::new(&g);
        flip += 1;
        let nl = tb
            .node_with_token(
                g.production_by_name("leafe").unwrap(),
                &[],
                Some(Value::Int(flip)),
            )
            .unwrap();
        let sub = tb.finish(nl);
        inc.replace_subtree(victim, &sub).expect("edits");
    });
    let dynev = DynamicEvaluator::new(&g);
    bench("incremental/depth-12/from-scratch", 10, || {
        dynev.evaluate(&tree, &RootInputs::new()).expect("runs")
    });
}
