//! Bench: the SNC → l-ordered transformation, classical equality vs. long
//! inclusion (the §2.1.1 "runs much faster … in almost-linear time"
//! claim).

use fnc2::analysis::{snc_test, snc_to_l_ordered, Inclusion};
use fnc2_bench::harness::bench;
use fnc2_corpus::{synthetic, TABLE1_PROFILES};

fn main() {
    for profile in [
        &TABLE1_PROFILES[0],
        &TABLE1_PROFILES[4],
        &TABLE1_PROFILES[6],
    ] {
        let grammar = synthetic(profile);
        let snc = snc_test(&grammar);
        assert!(snc.is_snc());
        for (label, inc) in [("long", Inclusion::Long), ("equality", Inclusion::Equality)] {
            bench(&format!("transform/{label}/{}", profile.name), 10, || {
                snc_to_l_ordered(&grammar, &snc, inc).expect("transforms")
            });
        }
    }
}
