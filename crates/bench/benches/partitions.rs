//! Criterion bench: the SNC → l-ordered transformation, classical equality
//! vs. long inclusion (the §2.1.1 "runs much faster … in almost-linear
//! time" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fnc2::analysis::{snc_test, snc_to_l_ordered, Inclusion};
use fnc2_corpus::{synthetic, TABLE1_PROFILES};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(10);
    for profile in [&TABLE1_PROFILES[0], &TABLE1_PROFILES[4], &TABLE1_PROFILES[6]] {
        let grammar = synthetic(profile);
        let snc = snc_test(&grammar);
        assert!(snc.is_snc());
        for (label, inc) in [("long", Inclusion::Long), ("equality", Inclusion::Equality)] {
            group.bench_with_input(
                BenchmarkId::new(label, profile.name),
                &(&grammar, &snc),
                |b, (g, snc)| {
                    b.iter(|| snc_to_l_ordered(g, snc, inc).expect("transforms"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
