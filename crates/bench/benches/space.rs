//! Bench: space analysis cost and optimized-evaluator throughput (the
//! §2.2 / §4.1 machinery).

use fnc2::space::analyze_space;
use fnc2::visit::RootInputs;
use fnc2::Pipeline;
use fnc2_bench::harness::bench;
use fnc2_corpus as corpus;

fn main() {
    for profile in [&corpus::TABLE1_PROFILES[0], &corpus::TABLE1_PROFILES[4]] {
        let grammar = corpus::synthetic(profile);
        let compiled = Pipeline::new().compile(grammar.clone()).expect("compiles");
        bench(&format!("space/analysis/{}", profile.name), 10, || {
            analyze_space(&compiled.grammar, &compiled.seqs)
        });
        let tree = corpus::synthetic_tree(&compiled.grammar, profile, 800, 3);
        bench(&format!("space/run-plain/{}", profile.name), 10, || {
            compiled.evaluate(&tree, &RootInputs::new()).expect("runs")
        });
        bench(&format!("space/run-optimized/{}", profile.name), 10, || {
            compiled
                .evaluate_optimized(&tree, &RootInputs::new())
                .expect("runs")
        });
    }
}
