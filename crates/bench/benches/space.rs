//! Criterion bench: space analysis cost and optimized-evaluator throughput
//! (the §2.2 / §4.1 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fnc2::space::analyze_space;
use fnc2::visit::RootInputs;
use fnc2::Pipeline;
use fnc2_corpus as corpus;

fn bench_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("space");
    group.sample_size(10);
    for profile in [&corpus::TABLE1_PROFILES[0], &corpus::TABLE1_PROFILES[4]] {
        let grammar = corpus::synthetic(profile);
        let compiled = Pipeline::new().compile(grammar.clone()).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("analysis", profile.name),
            &compiled,
            |b, cpl| {
                b.iter(|| analyze_space(&cpl.grammar, &cpl.seqs));
            },
        );
        let tree = corpus::synthetic_tree(&compiled.grammar, profile, 800, 3);
        group.bench_with_input(
            BenchmarkId::new("run-plain", profile.name),
            &(&compiled, &tree),
            |b, (cpl, tree)| {
                b.iter(|| cpl.evaluate(tree, &RootInputs::new()).expect("runs"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("run-optimized", profile.name),
            &(&compiled, &tree),
            |b, (cpl, tree)| {
                b.iter(|| {
                    cpl.evaluate_optimized(tree, &RootInputs::new())
                        .expect("runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_space);
criterion_main!(benches);
