//! # fnc2-bench — the reproduction's measurement harness
//!
//! Shared machinery for the table binaries (`table1` … `table4`,
//! `table_partitions`, `table_space`, `table_evaluator`,
//! `table_incremental`) and the `benches/` targets: hand-written reference
//! evaluators (the §4.2 comparison point), a byte-counting global-allocator
//! hook (the Table 2/3 "memory" column), a dependency-free timing harness
//! ([`harness`]), table rendering, and optional JSON table dumps
//! ([`maybe_emit_json`]).

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use fnc2::ag::{Grammar, NodeId, Tree, Value};

// ---------------------------------------------------------------------------
// Counting allocator (Table 2/3 "memory" column)
// ---------------------------------------------------------------------------

/// A global allocator wrapper tracking current and peak live bytes.
#[derive(Debug)]
pub struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates to `System` and only adds relaxed counters.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

impl CountingAlloc {
    /// Resets the peak to the current live volume.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live bytes since the last reset.
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Currently live bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Hand-written evaluators (the §4.2 "hand-written version" baseline)
// ---------------------------------------------------------------------------

/// Hand-written evaluator for the binary grammar: a direct recursive walk
/// with native arithmetic — "as efficient in time and space as hand-written
/// programs using the same basic data structures" is the design goal the
/// generated evaluator is measured against.
pub fn handwritten_binary(g: &Grammar, tree: &Tree) -> f64 {
    fn seq(g: &Grammar, tree: &Tree, n: NodeId, scale: i64) -> (f64, i64) {
        let prod = g.production(tree.node(n).production());
        match prod.name() {
            "pair" => {
                let kids = tree.node(n).children();
                let b = bit(g, tree, kids[1], scale);
                let (v, len) = seq(g, tree, kids[0], scale + 1);
                (v + b, len + 1)
            }
            "single" => (bit(g, tree, tree.node(n).children()[0], scale), 1),
            other => unreachable!("not a Seq production: {other}"),
        }
    }
    fn bit(g: &Grammar, tree: &Tree, n: NodeId, scale: i64) -> f64 {
        let prod = g.production(tree.node(n).production());
        match prod.name() {
            "zero" => 0.0,
            "one" => 2f64.powi(scale as i32),
            other => unreachable!("not a Bit production: {other}"),
        }
    }
    let root = tree.root();
    let prod = g.production(tree.node(root).production());
    let kids = tree.node(root).children();
    match prod.name() {
        "number" => seq(g, tree, kids[0], 0).0,
        "fraction" => {
            let (int, _) = seq(g, tree, kids[0], 0);
            // Fractional part: scale = -length.
            fn length(tree: &Tree, g: &Grammar, n: NodeId) -> i64 {
                match g.production(tree.node(n).production()).name() {
                    "pair" => 1 + length(tree, g, tree.node(n).children()[0]),
                    _ => 1,
                }
            }
            let len = length(tree, g, kids[1]);
            let (frac, _) = seq(g, tree, kids[1], -len);
            int + frac
        }
        other => unreachable!("not a Number production: {other}"),
    }
}

/// Hand-written evaluator for the binary grammar *using the same basic
/// data structures* as the generated evaluator (dynamic [`Value`]s) — the
/// paper's exact comparison point: "as efficient in time and space as
/// hand-written programs using the same basic data structures".
pub fn handwritten_binary_boxed(g: &Grammar, tree: &Tree) -> Value {
    fn seq(g: &Grammar, tree: &Tree, n: NodeId, scale: Value) -> (Value, Value) {
        let prod = g.production(tree.node(n).production());
        match prod.name() {
            "pair" => {
                let kids = tree.node(n).children();
                let b = bit(g, tree, kids[1], scale.clone());
                let (v, len) = seq(g, tree, kids[0], Value::Int(scale.as_int() + 1));
                (
                    Value::Real(v.as_real() + b.as_real()),
                    Value::Int(len.as_int() + 1),
                )
            }
            "single" => (
                bit(g, tree, tree.node(n).children()[0], scale),
                Value::Int(1),
            ),
            other => unreachable!("not a Seq production: {other}"),
        }
    }
    fn bit(g: &Grammar, tree: &Tree, n: NodeId, scale: Value) -> Value {
        let prod = g.production(tree.node(n).production());
        match prod.name() {
            "zero" => Value::Real(0.0),
            "one" => Value::Real(2f64.powi(scale.as_int() as i32)),
            other => unreachable!("not a Bit production: {other}"),
        }
    }
    let root = tree.root();
    let kids = tree.node(root).children();
    match g.production(tree.node(root).production()).name() {
        "number" => seq(g, tree, kids[0], Value::Int(0)).0,
        "fraction" => {
            fn length(tree: &Tree, g: &Grammar, n: NodeId) -> i64 {
                match g.production(tree.node(n).production()).name() {
                    "pair" => 1 + length(tree, g, tree.node(n).children()[0]),
                    _ => 1,
                }
            }
            let (int, _) = seq(g, tree, kids[0], Value::Int(0));
            let len = length(tree, g, kids[1]);
            let (frac, _) = seq(g, tree, kids[1], Value::Int(-len));
            Value::Real(int.as_real() + frac.as_real())
        }
        other => unreachable!("not a Number production: {other}"),
    }
}

/// Hand-written evaluator for the desk grammar: environment threading with
/// a persistent map, mirroring exactly the data structures the generated
/// evaluator uses (so the measured gap is pure interpretation overhead).
pub fn handwritten_desk(g: &Grammar, tree: &Tree) -> i64 {
    use std::collections::BTreeMap;
    use std::rc::Rc;
    type Env = Rc<BTreeMap<String, i64>>;
    fn expr(g: &Grammar, tree: &Tree, n: NodeId, env: &Env) -> i64 {
        let node = tree.node(n);
        let kids = node.children();
        match g.production(node.production()).name() {
            "add" => expr(g, tree, kids[0], env).wrapping_add(expr(g, tree, kids[1], env)),
            "mul" => expr(g, tree, kids[0], env).wrapping_mul(expr(g, tree, kids[1], env)),
            "letx" => {
                let v = expr(g, tree, kids[0], env);
                let name = node.token().expect("let has a name").as_str().to_string();
                let mut m = (**env).clone();
                m.insert(name, v);
                expr(g, tree, kids[1], &Rc::new(m))
            }
            "var" => *env
                .get(node.token().expect("var has a name").as_str())
                .unwrap_or(&0),
            "lit" => node.token().expect("lit has a value").as_int(),
            other => unreachable!("not an Expr production: {other}"),
        }
    }
    let root = tree.root();
    let body = tree.node(root).children()[0];
    expr(g, tree, body, &Rc::new(BTreeMap::new()))
}

/// Hand-written mini-Pascal compiler over the corpus abstract trees: the
/// same semantics as the OLGA AG (identical P-code, identical label
/// numbering) *and the same basic data structures* — code and error lists
/// are combined functionally (fresh list per node, both operands copied),
/// exactly like the AG's `++`. The remaining gap to the generated
/// evaluator is then pure interpretation overhead — the paper's
/// "execution of the semantic rules" argument.
pub fn handwritten_minipascal(g: &Grammar, tree: &Tree) -> (Vec<String>, Vec<String>) {
    use std::collections::BTreeMap;
    type Env = BTreeMap<String, (i64, &'static str)>;
    type L = Vec<String>;

    fn cat(a: &L, b: &L) -> L {
        let mut v = Vec::with_capacity(a.len() + b.len());
        v.extend_from_slice(a);
        v.extend_from_slice(b);
        v
    }
    fn cat1(a: &L, s: String) -> L {
        let mut v = Vec::with_capacity(a.len() + 1);
        v.extend_from_slice(a);
        v.push(s);
        v
    }

    fn decls(g: &Grammar, tree: &Tree, n: NodeId, base: i64, env: &mut Env) -> i64 {
        let node = tree.node(n);
        match g.production(node.production()).name() {
            "decls_cons" => {
                let kids = node.children();
                let d = tree.node(kids[0]);
                let ty = match g.production(tree.node(d.children()[0]).production()).name() {
                    "tint" => "int",
                    _ => "bool",
                };
                env.insert(
                    d.token().expect("decl name").as_str().to_string(),
                    (base, ty),
                );
                1 + decls(g, tree, kids[1], base + 1, env)
            }
            _ => 0,
        }
    }

    fn expr(g: &Grammar, tree: &Tree, n: NodeId, env: &Env) -> (&'static str, L, L) {
        let node = tree.node(n);
        let kids = node.children();
        let prod = g.production(node.production()).name();
        let binop = |op: &str, want: &'static str, out: &'static str| {
            let (t1, c1, e1) = expr(g, tree, kids[0], env);
            let (t2, c2, e2) = expr(g, tree, kids[1], env);
            let mut errs = L::new();
            for t in [t1, t2] {
                if t != want && t != "?" {
                    errs = cat1(&errs, format!("{op}: expected {want}, got {t}"));
                }
            }
            let opc = match op {
                "+" => "ADD",
                "-" => "SUB",
                "*" => "MUL",
                "<" => "LT",
                _ => "EQ",
            };
            (
                out,
                cat1(&cat(&c1, &c2), opc.to_string()),
                cat(&cat(&errs, &e1), &e2),
            )
        };
        match prod {
            "eadd" => binop("+", "int", "int"),
            "esub" => binop("-", "int", "int"),
            "emul" => binop("*", "int", "int"),
            "elt" => binop("<", "int", "bool"),
            "eeq" => {
                let (t1, c1, e1) = expr(g, tree, kids[0], env);
                let (t2, c2, e2) = expr(g, tree, kids[1], env);
                let head = if t1 != t2 && t1 != "?" && t2 != "?" {
                    vec![format!("= applied to {t1} and {t2}")]
                } else {
                    L::new()
                };
                (
                    "bool",
                    cat1(&cat(&c1, &c2), "EQ".into()),
                    cat(&cat(&head, &e1), &e2),
                )
            }
            "enot" => {
                let (t, c, e) = expr(g, tree, kids[0], env);
                let head = if t != "bool" && t != "?" {
                    vec![format!("not: expected bool, got {t}")]
                } else {
                    L::new()
                };
                ("bool", cat1(&c, "NOT".into()), cat(&head, &e))
            }
            "elit" => (
                "int",
                vec![format!("LDC {}", node.token().expect("lit").as_int())],
                L::new(),
            ),
            "etrue" => ("bool", vec!["LDC 1".into()], L::new()),
            "efalse" => ("bool", vec!["LDC 0".into()], L::new()),
            "evar" => {
                let name = node.token().expect("var").as_str();
                match env.get(name) {
                    Some((a, t)) => (t, vec![format!("LOD {a}")], L::new()),
                    None => (
                        "?",
                        vec!["LOD 0".into()],
                        vec![format!("undeclared {name}")],
                    ),
                }
            }
            other => unreachable!("not an Expr production: {other}"),
        }
    }

    fn stmts(g: &Grammar, tree: &Tree, n: NodeId, env: &Env, lab: i64) -> (i64, L, L) {
        let node = tree.node(n);
        match g.production(node.production()).name() {
            "stmts_cons" => {
                let kids = node.children();
                let (lab, c1, e1) = stmt(g, tree, kids[0], env, lab);
                let (lab, c2, e2) = stmts(g, tree, kids[1], env, lab);
                (lab, cat(&c1, &c2), cat(&e1, &e2))
            }
            _ => (lab, L::new(), L::new()),
        }
    }

    fn stmt(g: &Grammar, tree: &Tree, n: NodeId, env: &Env, lab: i64) -> (i64, L, L) {
        let node = tree.node(n);
        let kids = node.children();
        match g.production(node.production()).name() {
            "assign" => {
                let name = node.token().expect("assign").as_str().to_string();
                let (t, c, e) = expr(g, tree, kids[0], env);
                let (addr, head) = match env.get(&name) {
                    Some((a, want)) => {
                        if t != *want && t != "?" {
                            (
                                *a,
                                vec![format!("assignment to {name}: expected {want}, got {t}")],
                            )
                        } else {
                            (*a, L::new())
                        }
                    }
                    None => (0, vec![format!("undeclared {name}")]),
                };
                (lab, cat1(&c, format!("STO {addr}")), cat(&head, &e))
            }
            "sif" => {
                let (t, c, e) = expr(g, tree, kids[0], env);
                let head = if t != "bool" && t != "?" {
                    vec![format!("if condition: expected bool, got {t}")]
                } else {
                    L::new()
                };
                let (l0, l1) = (lab, lab + 1);
                let (lab2, ct, et) = stmts(g, tree, kids[1], env, lab + 2);
                let (lab3, ce, ee) = stmts(g, tree, kids[2], env, lab2);
                let mut code = cat1(&c, format!("JPC L{l0}"));
                code = cat(&code, &ct);
                code = cat1(&code, format!("JMP L{l1}"));
                code = cat1(&code, format!("LAB L{l0}"));
                code = cat(&code, &ce);
                code = cat1(&code, format!("LAB L{l1}"));
                (lab3, code, cat(&cat(&head, &e), &cat(&et, &ee)))
            }
            "swhile" => {
                let (t, c, e) = expr(g, tree, kids[0], env);
                let head = if t != "bool" && t != "?" {
                    vec![format!("while condition: expected bool, got {t}")]
                } else {
                    L::new()
                };
                let (l0, l1) = (lab, lab + 1);
                let (lab2, cb, eb) = stmts(g, tree, kids[1], env, lab + 2);
                let mut code = vec![format!("LAB L{l0}")];
                code = cat(&code, &c);
                code = cat1(&code, format!("JPC L{l1}"));
                code = cat(&code, &cb);
                code = cat1(&code, format!("JMP L{l0}"));
                code = cat1(&code, format!("LAB L{l1}"));
                (lab2, code, cat(&cat(&head, &e), &eb))
            }
            "swrite" => {
                let (_, c, e) = expr(g, tree, kids[0], env);
                (lab, cat1(&c, "WRI".into()), e)
            }
            other => unreachable!("not a Stmt production: {other}"),
        }
    }

    let root = tree.root();
    let kids = tree.node(root).children();
    let mut env = BTreeMap::new();
    let count = decls(g, tree, kids[0], 0, &mut env);
    let (_, body, errs) = stmts(g, tree, kids[1], &env, 0);
    let mut code = vec![format!("ENT {count}")];
    code = cat(&code, &body);
    code = cat1(&code, "HLT".into());
    (code, errs)
}

/// Builds a large random desk-calculator tree (`2^depth` leaves-ish).
pub fn desk_tree(g: &Grammar, depth: usize) -> Tree {
    use fnc2::ag::TreeBuilder;
    fn grow(g: &Grammar, tb: &mut TreeBuilder, depth: usize, salt: i64) -> NodeId {
        if depth == 0 {
            if salt % 3 == 0 {
                tb.node_with_token(
                    g.production_by_name("var").unwrap(),
                    &[],
                    Some(Value::str(format!("v{}", salt % 7))),
                )
                .unwrap()
            } else {
                tb.node_with_token(
                    g.production_by_name("lit").unwrap(),
                    &[],
                    Some(Value::Int(salt % 100)),
                )
                .unwrap()
            }
        } else if salt % 5 == 0 {
            let bound = grow(g, tb, depth - 1, salt * 2 + 1);
            let body = grow(g, tb, depth - 1, salt * 2 + 2);
            tb.node_with_token(
                g.production_by_name("letx").unwrap(),
                &[bound, body],
                Some(Value::str(format!("v{}", salt % 7))),
            )
            .unwrap()
        } else {
            let a = grow(g, tb, depth - 1, salt * 2 + 1);
            let b = grow(g, tb, depth - 1, salt * 2 + 2);
            let op = if salt % 2 == 0 { "add" } else { "mul" };
            tb.op(op, &[a, b]).unwrap()
        }
    }
    let mut tb = TreeBuilder::new(g);
    let body = grow(g, &mut tb, depth, 1);
    let root = tb.op("prog", &[body]).unwrap();
    tb.finish_root(root).unwrap()
}

/// Builds a long random bit string (for binary-grammar workloads).
pub fn bit_string(len: usize, seed: u64) -> String {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut s = String::with_capacity(len + 1);
    s.push('1');
    for _ in 1..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.push(if x >> 62 & 1 == 0 { '0' } else { '1' });
    }
    s
}

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

/// Renders rows as a fixed-width table with a header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

// ---------------------------------------------------------------------------
// JSON table dumps (the perf trajectory)
// ---------------------------------------------------------------------------

/// Writes `BENCH_<name>.json` when `FNC2_BENCH_JSON` is set (to a
/// directory, or to `1` for the current directory), so table runs start
/// accumulating a machine-readable perf trajectory.
///
/// The document is `{"table": name, "headers": [...], "rows": [[...]]}`.
/// Returns the path written, or `None` when the env var is unset.
pub fn maybe_emit_json(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> Option<std::path::PathBuf> {
    let dest = std::env::var("FNC2_BENCH_JSON").ok()?;
    let dir = if dest == "1" {
        std::path::PathBuf::from(".")
    } else {
        std::path::PathBuf::from(dest)
    };
    let doc = fnc2_obs::Json::obj([
        ("table", fnc2_obs::Json::str(name)),
        (
            "headers",
            fnc2_obs::Json::Arr(headers.iter().map(|h| fnc2_obs::Json::str(*h)).collect()),
        ),
        (
            "rows",
            fnc2_obs::Json::Arr(
                rows.iter()
                    .map(|row| {
                        fnc2_obs::Json::Arr(
                            row.iter().map(|c| fnc2_obs::Json::str(c.clone())).collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = dir.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Timing harness (replaces the external bench framework; offline builds)
// ---------------------------------------------------------------------------

/// A minimal measurement harness for the `benches/` targets
/// (`harness = false`): fixed warmup, fixed sample count, median-of-samples
/// reporting. Dependency-free by construction — the workspace builds
/// offline.
pub mod harness {
    use std::hint::black_box;
    use std::time::Instant;

    /// One benchmark's result.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        /// Group/name label, e.g. `"evaluator/binary-1024/generated"`.
        pub name: String,
        /// Median nanoseconds per iteration.
        pub median_ns: f64,
        /// Minimum nanoseconds per iteration.
        pub min_ns: f64,
        /// Number of timed samples.
        pub samples: usize,
    }

    impl Measurement {
        /// `"name  median  (min)"` with µs/ms scaling.
        pub fn render(&self) -> String {
            format!(
                "{:<48} {:>12} (min {})",
                self.name,
                fmt_ns(self.median_ns),
                fmt_ns(self.min_ns)
            )
        }
    }

    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }

    /// Runs `f` for `warmup` untimed and `samples` timed iterations and
    /// prints the median. The closure's result is passed through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
        let samples = samples.max(3);
        let warmup = (samples / 4).max(1);
        for _ in 0..warmup {
            black_box(f());
        }
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let m = Measurement {
            name: name.to_string(),
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            samples,
        };
        println!("{}", m.render());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handwritten_binary_matches_generated() {
        let g = fnc2_corpus::binary();
        let compiled = fnc2::Pipeline::new().compile(g).unwrap();
        for text in ["1101", "110.01", "101010101010101"] {
            let tree = fnc2_corpus::binary_tree(&compiled.grammar, text);
            let (vals, _) = compiled.evaluate(&tree, &Default::default()).unwrap();
            let number = compiled.grammar.phylum_by_name("Number").unwrap();
            let value = compiled.grammar.attr_by_name(number, "value").unwrap();
            let want = match vals.get(&compiled.grammar, tree.root(), value).unwrap() {
                Value::Real(r) => *r,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(handwritten_binary(&compiled.grammar, &tree), want, "{text}");
        }
    }

    #[test]
    fn handwritten_desk_matches_generated() {
        let g = fnc2_corpus::desk();
        let compiled = fnc2::Pipeline::new().compile(g).unwrap();
        let tree = desk_tree(&compiled.grammar, 8);
        let (vals, _) = compiled.evaluate(&tree, &Default::default()).unwrap();
        let prog = compiled.grammar.phylum_by_name("Prog").unwrap();
        let value = compiled.grammar.attr_by_name(prog, "value").unwrap();
        assert_eq!(
            vals.get(&compiled.grammar, tree.root(), value),
            Some(&Value::Int(handwritten_desk(&compiled.grammar, &tree)))
        );
    }

    #[test]
    fn table_renders() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        assert!(t.contains("a"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn bit_strings_are_deterministic() {
        assert_eq!(bit_string(32, 7), bit_string(32, 7));
        assert_ne!(bit_string(32, 7), bit_string(32, 8));
        assert_eq!(bit_string(32, 7).len(), 32);
    }
}
