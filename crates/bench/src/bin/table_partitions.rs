//! Figure 1 / §2.1.1 — the long-inclusion transformation.
//!
//! Compares the classical SNC → l-ordered transformation (partition reuse
//! by equality) with FNC-2's long inclusion: partitions per non-terminal
//! (avg/max), number of generated visit-sequences, transformation time,
//! and the dynamic visit overhead partition replacement introduces.
//!
//! Paper claims: classical reuse yields >4 partitions per non-terminal on
//! AG 5 (avg 4.15, max 29) where long inclusion yields 1.03 (max 2); the
//! transformation's running time tracks the total partition count (almost
//! linear with long inclusion); and the visit-count increase from coarser
//! partitions stays under 2%.
//!
//! Run with `cargo run --release --bin table_partitions -p fnc2-bench`.

use std::time::Instant;

use fnc2::analysis::{snc_test, snc_to_l_ordered, Inclusion};
use fnc2::visit::{build_visit_seqs, Evaluator, RootInputs};
use fnc2_bench::render_table;
use fnc2_corpus as corpus;

fn main() {
    println!("Figure 1 / section 2.1.1: classical (equality) vs. long-inclusion transformation\n");
    let headers = [
        "AG",
        "strategy",
        "part/NT avg",
        "part/NT max",
        "visit-seqs",
        "transform time",
        "dyn. visits",
    ];
    let mut rows = Vec::new();

    let grammars: Vec<(String, fnc2::ag::Grammar)> = vec![
        ("binary".into(), corpus::binary()),
        ("blocks".into(), corpus::blocks()),
        ("minipascal".into(), corpus::minipascal().0),
        ("snc_only(AG5)".into(), corpus::snc_only()),
        (
            "synthAG5".into(),
            corpus::synthetic(&corpus::TABLE1_PROFILES[4]),
        ),
    ];
    for (name, g) in &grammars {
        let snc = snc_test(g);
        assert!(snc.is_snc(), "{name}");
        for (label, inc) in [("long", Inclusion::Long), ("equality", Inclusion::Equality)] {
            let t0 = Instant::now();
            let lo = snc_to_l_ordered(g, &snc, inc).expect("SNC grammars transform");
            let elapsed = t0.elapsed();
            // Dynamic visit count on a representative tree.
            let dyn_visits = match name.as_str() {
                "binary" => {
                    let seqs = build_visit_seqs(g, &lo);
                    let tree = corpus::binary_tree(g, &fnc2_bench::bit_string(64, 3));
                    let (_, s) = Evaluator::new(g, &seqs)
                        .evaluate(&tree, &RootInputs::new())
                        .expect("evaluates");
                    s.visits.to_string()
                }
                "blocks" => {
                    let seqs = build_visit_seqs(g, &lo);
                    let tree =
                        corpus::blocks_tree(g, "d:a u:a [ d:b u:b u:a [ u:b d:c u:c ] ] u:a");
                    let (_, s) = Evaluator::new(g, &seqs)
                        .evaluate(&tree, &RootInputs::new())
                        .expect("evaluates");
                    s.visits.to_string()
                }
                "minipascal" => {
                    let seqs = build_visit_seqs(g, &lo);
                    let tree =
                        corpus::parse_minipascal(g, &corpus::sample_program(6)).expect("parses");
                    let (_, s) = Evaluator::new(g, &seqs)
                        .evaluate(&tree, &RootInputs::new())
                        .expect("evaluates");
                    s.visits.to_string()
                }
                _ => "-".into(),
            };
            rows.push(vec![
                name.clone(),
                label.to_string(),
                format!("{:.2}", lo.stats.avg_partitions()),
                lo.stats.max_partitions().to_string(),
                lo.stats.plans.to_string(),
                format!("{elapsed:.2?}"),
                dyn_visits,
            ]);
        }
    }
    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table_partitions", &headers, &rows);
    println!("Expected shape: long inclusion never registers more partitions than equality,");
    println!("collapses to ~1 partition/NT on realistic AGs (max 2 on the AG5 shape), and");
    println!("the dynamic visit counts of the two strategies differ by <2%.");
}
