//! Table 3 — statistics gathered for the FNC-2 system (on modules).
//!
//! The paper's C1/F1 … C6/F6 are declaration/definition module pairs of
//! 86–3188 lines. The substitution generates well-typed OLGA modules of
//! exactly those sizes and runs the same phases: input (lex+parse), typing
//! (checking), translator (module-to-C), with the peak-allocation proxy
//! for the memory column.
//!
//! Run with `cargo run --release --bin table3 -p fnc2-bench`.

use std::time::{Duration, Instant};

use fnc2_bench::{render_table, CountingAlloc};
use fnc2_corpus::{module_source, TABLE3_MODULES};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn lines_per_min(lines: usize, d: Duration) -> String {
    if d.is_zero() {
        return "-".into();
    }
    format!("{:.0}", lines as f64 * 60.0 / d.as_secs_f64())
}

fn main() {
    println!("Table 3: statistics gathered for the FNC-2 system (on modules)");
    println!("(generated module sources at the paper's line counts)\n");
    let headers = [
        "module",
        "# lines",
        "input",
        "typing",
        "translator",
        "memory(KB)",
        "total",
        "l/mn",
    ];
    let mut rows = Vec::new();
    // Warm up lazy allocations/caches so the first row is not inflated.
    {
        let src = module_source("W0", 120);
        let _ = fnc2::olga::compile_modules(&src).expect("checks");
    }
    for (name, lines) in TABLE3_MODULES {
        let src = module_source(name, lines);
        let actual = src.lines().count();
        CountingAlloc::reset_peak();
        let t_total = Instant::now();

        let t0 = Instant::now();
        let units = fnc2::olga::parse_units(&src).expect("parses");
        let input = t0.elapsed();

        let t1 = Instant::now();
        let mut compiler = fnc2::olga::Compiler::new();
        let mut envs = Vec::new();
        for u in units {
            match u {
                fnc2::olga::ast::Unit::Module(m) => {
                    let name = m.name.clone();
                    compiler.add_module(m).expect("checks");
                    envs.push(name);
                }
                fnc2::olga::ast::Unit::Ag(_) => unreachable!("modules only"),
            }
        }
        let typing = t1.elapsed();

        let t2 = Instant::now();
        for n in &envs {
            let env = &compiler.module(n).expect("registered").env;
            let c = fnc2::codegen::module_to_c(env);
            std::hint::black_box(c.len());
        }
        let translator = t2.elapsed();

        let total = t_total.elapsed();
        rows.push(vec![
            name.to_string(),
            actual.to_string(),
            format!("{input:.2?}"),
            format!("{typing:.2?}"),
            format!("{translator:.2?}"),
            format!("{}", CountingAlloc::peak() / 1024),
            format!("{total:.2?}"),
            lines_per_min(actual, total),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table3", &headers, &rows);
    println!("Paper shape: module processing is roughly linear in lines (these phases are");
    println!("\"typical of a compiler-like application\"); small modules show constant");
    println!("overhead in the input phase; typing dominates.");
}
