//! Table 4 — source files in the FNC-2 system.
//!
//! The paper's modularity argument: the system's own sources split into
//! many small files ("if all this code was gathered in a single file, or
//! even one file per subsystem, it would be impossible to manage"). The
//! substitution organizes this reproduction's OLGA corpus — the embedded
//! AG sources plus generated module files — into subsystems and runs the
//! `mkfnc2` statistics over them, including the build order derived from
//! the import graph.
//!
//! Run with `cargo run --release --bin table4 -p fnc2-bench`.

use fnc2::tools::{analyze_project, render_stats, SourceFile};
use fnc2_corpus::{module_source, sized_ag_source, MINIPASCAL_OLGA, TABLE3_MODULES};

fn main() {
    println!("Table 4: source files in the reproduction's OLGA corpus\n");
    let mut files = Vec::new();
    // The mini-Pascal application: its helper module + AG, split like the
    // paper's per-subsystem organization.
    files.push(SourceFile {
        name: "minipascal.olga".into(),
        subsystem: "minipascal".into(),
        text: MINIPASCAL_OLGA.to_string(),
    });
    // Generated module pairs play the role of the system's own modules.
    for (name, lines) in TABLE3_MODULES {
        let sub = match &name[..1] {
            "C" => "decl-modules",
            _ => "defn-modules",
        };
        files.push(SourceFile {
            name: format!("{}.olga", name.to_lowercase()),
            subsystem: sub.into(),
            text: module_source(name, lines),
        });
    }
    // Sized AG sources as the "ag" subsystem.
    for (name, lines) in [("tc", 900), ("trans", 700), ("wd", 400)] {
        files.push(SourceFile {
            name: format!("{name}.olga"),
            subsystem: "ags".into(),
            text: sized_ag_source(name, lines),
        });
    }

    let project = analyze_project(&files).expect("corpus project is consistent");
    println!("{}", render_stats(&project.stats));
    let headers = ["subsystem", "files", "min", "avg", "max", "total"];
    let rows: Vec<Vec<String>> = project
        .stats
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.files.to_string(),
                s.min_lines.to_string(),
                s.avg_lines().to_string(),
                s.max_lines.to_string(),
                s.total_lines.to_string(),
            ]
        })
        .collect();
    fnc2_bench::maybe_emit_json("table4", &headers, &rows);
    println!(
        "{} units; build order: {}",
        project.units.len(),
        project.build_order.join(" -> ")
    );
    println!("\nPaper shape: many files, small average size, one much larger definition");
    println!("module (F2 = 3188 lines), totals in the tens of thousands of lines for the");
    println!("full system (29767 in the paper).");
}
