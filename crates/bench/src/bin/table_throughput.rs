//! Throughput scaling of the slot-compiled evaluator, sequentially and
//! under the work-stealing batch driver.
//!
//! Two tables, two claims:
//!
//! * **eval_hotpath** — the slot-compiled interpretation (dense frames,
//!   pre-resolved fetch descriptors, interned constants) against the
//!   retained reference interpretation (`Evaluator::evaluate_reference`:
//!   per-fetch `Arg` matching, hash-map local frames, constant clones) on
//!   the same evaluator instance, plus a **guarded** leg
//!   (`evaluate_guarded` with the default `EvalBudget`) whose overhead
//!   column is the price of the fnc2-guard budget meter on the hot path,
//!   plus a **profiled** leg (`evaluate_recorded` with the rule-cost
//!   profiler enabled) whose overhead column is the price of per-rule
//!   cost attribution when it is switched *on*. All legs are checked
//!   value-equal before timing — the speedup is never bought with a
//!   divergence.
//! * **throughput** — trees/sec over a batch of synthetic-corpus trees at
//!   1, 2, 4 and 8 worker threads sharing one `&Evaluator`, plus the steal
//!   counts the pool reports through `fnc2-obs`.
//! * **startup** — the generate-once/evaluate-many claim in miniature:
//!   loading a compiled-table artifact (`fnc2::artifact::load_tables`,
//!   which re-runs only the OLGA front end and deserializes the Figure-3
//!   cascade results) against rerunning the full generator cascade
//!   (`Pipeline::compile_olga`) on the same source.
//! * **incremental** — an edit-script replay over a deep env-threading
//!   chain, the hash-consed evaluator (O(1) identity cutoff + memoized
//!   semantic functions) against the same evaluator with interning off
//!   (`--no-intern`): the plain leg rebuilds and deep-compares an
//!   O(depth)-sized trace at every spine level (O(depth²) per wave), the
//!   interned leg answers each level from the memo cache in O(1) once the
//!   script's values have been seen. Both legs replay the same script and
//!   are checked for identical values *and* identical Changed/Unchanged
//!   wave statistics before timing.
//! * **checkpoint** — the crash-consistency tax: the same guarded batch
//!   with and without the append-only checkpoint journal
//!   (`batch_evaluate_checkpointed`: one checksummed 25-byte record per
//!   tree, unsynced appends, atomic compaction on completion). The
//!   overhead column is the whole journal life-cycle — create, appends,
//!   compact-and-rename — amortised over the batch; the per-index outcome
//!   digests are checked identical between the two legs before timing.
//! * **lint** — the price of the grammar-level static analyses
//!   (`fnc2_lint::lint_grammar` over the already-classified grammar)
//!   against the full cascade that embeds them: the share column gates
//!   the claim that linting rides along for free on every compile.
//!
//! Run with `cargo run --release --bin table_throughput -p fnc2-bench`.
//! Set `FNC2_BENCH_JSON` to also write `BENCH_eval_hotpath.json`,
//! `BENCH_throughput.json`, `BENCH_startup.json`,
//! `BENCH_incremental.json`, `BENCH_checkpoint.json` and
//! `BENCH_lint.json`.

use std::time::{Duration, Instant};

use fnc2::ag::{Grammar, GrammarBuilder, NodeId, Occ, Tree, TreeBuilder, Value};
use fnc2::guard::EvalBudget;
use fnc2::incremental::{Equality, IncrementalEvaluator, IncrementalStats};
use fnc2::visit::{Evaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_bench::{maybe_emit_json, render_table};
use fnc2_corpus::{
    sized_ag_source, synthetic, synthetic_tree, BLOCKS_OLGA_LIST, MINIPASCAL_OLGA, TABLE1_PROFILES,
};
use fnc2_par::{
    batch_evaluate, batch_evaluate_checkpointed, batch_evaluate_guarded, outcome_digest, Checkpoint,
};

/// Median of `n` individually-timed runs (after 3 warmups). A median, not
/// a mean: per-run times in the tens of microseconds are easily wrecked by
/// a single scheduler preemption, which a mean would smear over every leg.
fn time_n<F: FnMut()>(n: usize, mut f: F) -> Duration {
    for _ in 0..3 {
        f();
    }
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The edit-replay grammar: a unary chain threading a synthesized `trace`
/// list upward. Every level prepends its level number, so the trace at
/// level *n* has *n + 1* cells and two traces that differ only in the leaf
/// token differ in their **last** element — a plain structural comparison
/// scans the whole list before failing. A second synthesized `size`
/// attribute (the trace length) is recomputed on every wave but never
/// changes, so propagation cuts there — the table's cut-rate column.
fn replay_grammar() -> Grammar {
    let mut g = GrammarBuilder::new("replay-chain");
    let s = g.phylum("S");
    let e = g.phylum("E");
    let total = g.syn(s, "total");
    let trace = g.syn(e, "trace");
    let size = g.syn(e, "size");
    g.func("stepf", 1, |a| {
        let xs = a[0].as_list();
        let mut out = Vec::with_capacity(xs.len() + 1);
        out.push(Value::Int(xs.len() as i64));
        out.extend(xs.iter().cloned());
        Value::list(out)
    });
    g.func("lenf", 1, |a| Value::Int(a[0].as_list().len() as i64));
    let root = g.production("root", s, &[e]);
    g.copy(root, Occ::lhs(total), Occ::new(1, trace));
    let chain = g.production("chain", e, &[e]);
    g.call(chain, Occ::lhs(trace), "stepf", [Occ::new(1, trace).into()]);
    g.call(chain, Occ::lhs(size), "lenf", [Occ::new(1, trace).into()]);
    let leaf = g.production("leaf", e, &[]);
    g.copy(leaf, Occ::lhs(trace), fnc2::ag::Arg::Token);
    g.call(leaf, Occ::lhs(size), "lenf", [Occ::lhs(trace).into()]);
    g.finish().expect("replay grammar is well-defined")
}

/// A chain of `depth` `chain` nodes over one leaf carrying `tok`.
fn chain_tree(g: &Grammar, depth: usize, tok: i64) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let leaf = g.production_by_name("leaf").unwrap();
    let mut n = tb
        .node_with_token(leaf, &[], Some(Value::list([Value::Int(tok)])))
        .unwrap();
    for _ in 0..depth {
        n = tb.op("chain", &[n]).unwrap();
    }
    let root = tb.op("root", &[n]).unwrap();
    tb.finish_root(root).unwrap()
}

/// A single replacement leaf carrying `tok`.
fn leaf_sub(g: &Grammar, tok: i64) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let leaf = g.production_by_name("leaf").unwrap();
    let n = tb
        .node_with_token(leaf, &[], Some(Value::list([Value::Int(tok)])))
        .unwrap();
    tb.finish(n)
}

/// The (only) leaf of the current tree — re-found each wave, since subtree
/// replacement allocates a fresh node id.
fn find_leaf(inc: &IncrementalEvaluator<'_>) -> NodeId {
    inc.tree()
        .preorder()
        .find(|&(n, _)| inc.tree().node(n).children().is_empty())
        .map(|(n, _)| n)
        .expect("chain has a leaf")
}

/// Replays the toggle edit script: `waves` leaf replacements alternating
/// between two token values, so from the third wave on every value the
/// interned leg computes has been seen before. Returns the summed wave
/// statistics.
fn replay(inc: &mut IncrementalEvaluator<'_>, subs: &[Tree; 2], waves: usize) -> IncrementalStats {
    let mut total = IncrementalStats::default();
    for w in 0..waves {
        let at = find_leaf(inc);
        let s = inc
            .replace_subtree(at, &subs[w % 2])
            .expect("replay wave evaluates");
        total.reevaluated += s.reevaluated;
        total.changed += s.changed;
        total.cut += s.cut;
    }
    total
}

fn main() {
    // ---- Part 1: slot-compiled vs. reference interpretation. -----------
    println!("Hot path: slot-compiled vs. reference interpretation (per-run times)\n");
    let hot_headers = [
        "AG",
        "nodes",
        "reference",
        "compiled",
        "speedup",
        "guarded",
        "overhead",
        "profiled",
        "prof ovh",
    ];
    let mut hot_rows = Vec::new();
    let reps = 20;
    let budget = EvalBudget::default();
    for profile in &TABLE1_PROFILES {
        let g = synthetic(profile);
        let compiled = Pipeline::new()
            .compile(g)
            .expect("synthetic corpus compiles");
        let ev = Evaluator::new(&compiled.grammar, &compiled.seqs);
        let tree = synthetic_tree(&compiled.grammar, profile, 600, profile.seed ^ 0xbeef);
        let inputs = RootInputs::new();

        // Differential guard: the timed legs must agree everywhere.
        let (fast, _) = ev.evaluate(&tree, &inputs).expect("compiled leg");
        let (slow, _) = ev
            .evaluate_reference(&tree, &inputs)
            .expect("reference leg");
        let (metered, _) = ev
            .evaluate_guarded(&tree, &inputs, &budget, None)
            .expect("guarded leg");
        let mut obs = fnc2::obs::Obs::new();
        obs.enable_profile(fnc2::obs::DEFAULT_SAMPLE_EVERY);
        let (profiled, _) = ev
            .evaluate_recorded(&tree, &inputs, &mut obs)
            .expect("profiled leg");
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(&compiled.grammar, n);
            for &attr in compiled.grammar.phylum(ph).attrs() {
                assert_eq!(
                    fast.get(&compiled.grammar, n, attr),
                    slow.get(&compiled.grammar, n, attr),
                    "{}: reference and compiled paths diverge",
                    profile.name
                );
                assert_eq!(
                    fast.get(&compiled.grammar, n, attr),
                    metered.get(&compiled.grammar, n, attr),
                    "{}: guarded and compiled paths diverge",
                    profile.name
                );
                assert_eq!(
                    fast.get(&compiled.grammar, n, attr),
                    profiled.get(&compiled.grammar, n, attr),
                    "{}: profiled and compiled paths diverge",
                    profile.name
                );
            }
        }

        let t_ref = time_n(reps, || {
            std::hint::black_box(ev.evaluate_reference(&tree, &inputs).unwrap());
        });
        let t_fast = time_n(reps, || {
            std::hint::black_box(ev.evaluate(&tree, &inputs).unwrap());
        });
        let t_guard = time_n(reps, || {
            std::hint::black_box(ev.evaluate_guarded(&tree, &inputs, &budget, None).unwrap());
        });
        let t_prof = time_n(reps, || {
            std::hint::black_box(ev.evaluate_recorded(&tree, &inputs, &mut obs).unwrap());
        });
        hot_rows.push(vec![
            profile.name.to_string(),
            tree.size().to_string(),
            format!("{:.1}µs", t_ref.as_secs_f64() * 1e6),
            format!("{:.1}µs", t_fast.as_secs_f64() * 1e6),
            format!("{:.2}x", t_ref.as_secs_f64() / t_fast.as_secs_f64()),
            format!("{:.1}µs", t_guard.as_secs_f64() * 1e6),
            format!(
                "{:+.1}%",
                (t_guard.as_secs_f64() / t_fast.as_secs_f64() - 1.0) * 100.0
            ),
            format!("{:.1}µs", t_prof.as_secs_f64() * 1e6),
            format!(
                "{:+.1}%",
                (t_prof.as_secs_f64() / t_fast.as_secs_f64() - 1.0) * 100.0
            ),
        ]);
    }
    println!("{}", render_table(&hot_headers, &hot_rows));
    if let Some(p) = maybe_emit_json("eval_hotpath", &hot_headers, &hot_rows) {
        println!("wrote {}\n", p.display());
    }

    // ---- Part 2: batch throughput at 1..8 threads. ---------------------
    println!("Throughput: work-stealing batch evaluation (trees/sec)\n");
    let thr_headers = [
        "AG", "trees", "threads", "total", "trees/s", "speedup", "steals",
    ];
    let mut thr_rows = Vec::new();
    let batch_size = 256;
    for profile in [
        &TABLE1_PROFILES[0],
        &TABLE1_PROFILES[3],
        &TABLE1_PROFILES[6],
    ] {
        let g = synthetic(profile);
        let compiled = Pipeline::new()
            .compile(g)
            .expect("synthetic corpus compiles");
        let ev = Evaluator::new(&compiled.grammar, &compiled.seqs);
        let trees: Vec<_> = (0..batch_size)
            .map(|t| synthetic_tree(&compiled.grammar, profile, 400, profile.seed ^ t as u64))
            .collect();
        let inputs = RootInputs::new();
        let mut base = 0f64;
        for threads in [1usize, 2, 4, 8] {
            // Median of 5 runs: batch wall-clock is scheduler-noisy.
            let mut times = Vec::new();
            let mut steals = 0u64;
            for _ in 0..5 {
                let t0 = Instant::now();
                let (results, stats) = batch_evaluate(&ev, &trees, &inputs, threads);
                times.push(t0.elapsed().as_secs_f64());
                steals = stats.steals;
                assert!(results.iter().all(Result::is_ok), "batch evaluation failed");
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
            let dt = times[times.len() / 2];
            let tps = batch_size as f64 / dt;
            if threads == 1 {
                base = tps;
            }
            thr_rows.push(vec![
                profile.name.to_string(),
                batch_size.to_string(),
                threads.to_string(),
                format!("{:.2}ms", dt * 1e3),
                format!("{tps:.0}"),
                format!("{:.2}x", tps / base),
                steals.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&thr_headers, &thr_rows));
    if let Some(p) = maybe_emit_json("throughput", &thr_headers, &thr_rows) {
        println!("wrote {}\n", p.display());
    }

    // ---- Part 3: startup — full cascade vs. artifact load. -------------
    println!("Startup: full generator cascade vs. compiled-table artifact load\n");
    let start_headers = ["AG", "artifact", "full compile", "table load", "speedup"];
    let mut start_rows = Vec::new();
    let sized = sized_ag_source("s40", 2000);
    for (name, source) in [
        ("minipascal", MINIPASCAL_OLGA),
        ("blocks", BLOCKS_OLGA_LIST),
        ("sized-2000", sized.as_str()),
    ] {
        let pipeline = Pipeline::new();
        let compiled = pipeline.compile_olga(source).expect("corpus AG compiles");
        let bytes = fnc2::artifact::emit_tables(&compiled, &pipeline, source);
        // Differential guard: the artifact path must reproduce the cascade.
        let loaded =
            fnc2::artifact::load_tables(&bytes, source, &pipeline).expect("artifact loads");
        assert_eq!(
            loaded.report.class, compiled.report.class,
            "{name}: artifact load diverges from the full cascade"
        );
        let t_full = time_n(reps, || {
            std::hint::black_box(pipeline.compile_olga(source).unwrap());
        });
        let t_load = time_n(reps, || {
            std::hint::black_box(fnc2::artifact::load_tables(&bytes, source, &pipeline).unwrap());
        });
        start_rows.push(vec![
            name.to_string(),
            format!("{} B", bytes.len()),
            format!("{:.2}ms", t_full.as_secs_f64() * 1e3),
            format!("{:.2}ms", t_load.as_secs_f64() * 1e3),
            format!("{:.1}x", t_full.as_secs_f64() / t_load.as_secs_f64()),
        ]);
    }
    println!("{}", render_table(&start_headers, &start_rows));
    if let Some(p) = maybe_emit_json("startup", &start_headers, &start_rows) {
        println!("wrote {}\n", p.display());
    }

    // ---- Part 4: incremental edit replay — interned vs plain. ----------
    println!("Incremental: edit-script replay, hash-consed vs plain (per-replay times)\n");
    let inc_headers = [
        "AG",
        "instances",
        "waves",
        "plain",
        "interned",
        "speedup",
        "cut rate",
        "memo hits",
    ];
    let mut inc_rows = Vec::new();
    let g = replay_grammar();
    let waves = 4;
    for depth in [64usize, 128, 256] {
        let tree = chain_tree(&g, depth, 1);
        let mut interned =
            IncrementalEvaluator::new(&g, tree.clone(), Equality::default()).expect("evaluates");
        let mut plain = IncrementalEvaluator::with_inputs_guarded_interned(
            &g,
            tree,
            RootInputs::new(),
            Equality::default(),
            EvalBudget::default(),
            false,
        )
        .expect("evaluates");
        assert!(interned.interning() && !plain.interning());
        let subs = [leaf_sub(&g, 7), leaf_sub(&g, 8)];
        let instances = interned.instance_count();

        // Differential guard: both legs must march through the script with
        // identical values *and* identical Changed/Unchanged statistics —
        // the speedup is never bought with a divergence.
        let si = replay(&mut interned, &subs, waves);
        let sp = replay(&mut plain, &subs, waves);
        assert_eq!(si, sp, "depth {depth}: interned and plain waves diverge");
        let s_ph = interned.tree().root();
        let p_ph = plain.tree().root();
        let s = g.phylum_by_name("S").unwrap();
        let total_attr = g.attr_by_name(s, "total").unwrap();
        assert_eq!(
            interned.value(s_ph, total_attr),
            plain.value(p_ph, total_attr),
            "depth {depth}: interned and plain root values diverge"
        );

        let t_plain = time_n(reps, || {
            std::hint::black_box(replay(&mut plain, &subs, waves));
        });
        let t_int = time_n(reps, || {
            std::hint::black_box(replay(&mut interned, &subs, waves));
        });

        // One more recorded replay on the (now fully warm) interned leg for
        // the cut-rate and memo-hit columns.
        let mut obs = fnc2::obs::Obs::new();
        let mut warm = IncrementalStats::default();
        for w in 0..waves {
            let at = find_leaf(&interned);
            let s = interned
                .replace_subtrees_recorded(vec![(at, subs[w % 2].clone())], &mut obs)
                .expect("recorded wave evaluates");
            warm.reevaluated += s.reevaluated;
            warm.changed += s.changed;
            warm.cut += s.cut;
        }
        inc_rows.push(vec![
            format!("chain-{depth}"),
            instances.to_string(),
            waves.to_string(),
            format!("{:.1}µs", t_plain.as_secs_f64() * 1e6),
            format!("{:.1}µs", t_int.as_secs_f64() * 1e6),
            format!("{:.2}x", t_plain.as_secs_f64() / t_int.as_secs_f64()),
            format!("{:.3}", warm.cut as f64 / warm.reevaluated as f64),
            obs.metrics.counter("eval.memo_hits").to_string(),
        ]);
    }
    println!("{}", render_table(&inc_headers, &inc_rows));
    if let Some(p) = maybe_emit_json("incremental", &inc_headers, &inc_rows) {
        println!("wrote {}", p.display());
    }
    println!("Expected shape: the plain leg rebuilds and deep-compares an O(depth) trace at");
    println!("every spine level (O(depth²) per wave); once the toggle script's values have");
    println!("been seen, the interned leg serves each level from the memo cache and decides");
    println!("the cutoff by identity, so its replay time grows linearly with depth.\n");

    // ---- Part 5: checkpointed batch — the crash-consistency tax. -------
    println!("Checkpoint: guarded batch vs checkpointed batch (journal overhead)\n");
    let ckpt_headers = [
        "AG",
        "trees",
        "threads",
        "guarded",
        "checkpointed",
        "overhead",
        "journal",
    ];
    let mut ckpt_rows = Vec::new();
    let vfs = fnc2::vfs::RealVfs;
    // A RAM-backed journal when the platform has one: the gated overhead
    // column measures the driver's structural cost (digests, journaling,
    // compaction), not the device's fsync latency — which on a loaded VM
    // swings by an order of magnitude run to run. The real-disk per-batch
    // constant (two fsynced writes) is reported in EXPERIMENTS.md instead.
    let shm = std::path::Path::new("/dev/shm");
    let journal_dir = if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    let journal = journal_dir.join(format!(
        "fnc2-bench-checkpoint-{}.journal",
        std::process::id()
    ));
    for profile in [&TABLE1_PROFILES[0], &TABLE1_PROFILES[6]] {
        let g = synthetic(profile);
        let compiled = Pipeline::new()
            .compile(g)
            .expect("synthetic corpus compiles");
        let ev = Evaluator::new(&compiled.grammar, &compiled.seqs);
        let trees: Vec<_> = (0..batch_size)
            .map(|t| synthetic_tree(&compiled.grammar, profile, 400, profile.seed ^ t as u64))
            .collect();
        let inputs = RootInputs::new();
        let threads = 4;
        let fingerprint = 0xbe9c_0000 ^ profile.seed;

        // Differential guard: the journaled leg must classify every tree
        // exactly like the plain guarded leg — same class, same digest.
        let guarded = batch_evaluate_guarded(&ev, &trees, &inputs, threads, &budget, 0, None);
        let mut ckpt =
            Checkpoint::create(&vfs, &journal, fingerprint).expect("bench journal creates");
        let report = batch_evaluate_checkpointed(
            &ev, &trees, &inputs, threads, &budget, 0, None, 0, &vfs, &mut ckpt, 0,
        )
        .expect("checkpointed batch runs");
        assert_eq!(report.records.len(), trees.len(), "batch lost trees");
        assert_eq!(report.resumed, 0, "fresh journal resumed records");
        for (i, record) in report.records.iter().enumerate() {
            assert_eq!(
                record.digest,
                outcome_digest(&guarded.outcomes[i]),
                "{}: tree {i} diverges between guarded and checkpointed legs",
                profile.name
            );
        }
        let journal_bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);

        // Paired rounds, median-of-ratios: each round times the guarded and
        // the checkpointed leg back to back, so slow drift cancels inside a
        // round and a single scheduler-preempted round cannot move the
        // (gated) overhead cell past the median. The checkpointed leg
        // recreates the journal each round — a journaled tree is never
        // re-evaluated, so resuming a finished journal would measure
        // nothing. Create + appends + compaction are the overhead.
        let rounds = 7;
        let mut t_guards = Vec::with_capacity(rounds);
        let mut t_ckpts = Vec::with_capacity(rounds);
        let mut ratios = Vec::with_capacity(rounds);
        for round in 0..rounds + 2 {
            let t0 = Instant::now();
            std::hint::black_box(batch_evaluate_guarded(
                &ev, &trees, &inputs, threads, &budget, 0, None,
            ));
            let g = t0.elapsed();
            let t0 = Instant::now();
            let mut ckpt =
                Checkpoint::create(&vfs, &journal, fingerprint).expect("bench journal creates");
            std::hint::black_box(
                batch_evaluate_checkpointed(
                    &ev, &trees, &inputs, threads, &budget, 0, None, 0, &vfs, &mut ckpt, 0,
                )
                .expect("checkpointed batch runs"),
            );
            let c = t0.elapsed();
            if round < 2 {
                continue; // warmup
            }
            t_guards.push(g);
            t_ckpts.push(c);
            ratios.push(c.as_secs_f64() / g.as_secs_f64());
        }
        t_guards.sort();
        t_ckpts.sort();
        ratios.sort_by(f64::total_cmp);
        let t_guard = t_guards[rounds / 2];
        let t_ckpt = t_ckpts[rounds / 2];
        let ratio = ratios[rounds / 2];
        ckpt_rows.push(vec![
            profile.name.to_string(),
            batch_size.to_string(),
            threads.to_string(),
            format!("{:.2}ms", t_guard.as_secs_f64() * 1e3),
            format!("{:.2}ms", t_ckpt.as_secs_f64() * 1e3),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
            format!("{journal_bytes} B"),
        ]);
    }
    let _ = std::fs::remove_file(&journal);
    println!("{}", render_table(&ckpt_headers, &ckpt_rows));
    if let Some(p) = maybe_emit_json("checkpoint", &ckpt_headers, &ckpt_rows) {
        println!("wrote {}", p.display());
    }
    println!("Expected shape: the journal buffers 25-byte checksummed records and appends");
    println!("them in unsynced groups, compacting once at completion. The gap between the");
    println!("columns prices crash consistency: per-tree outcome digests (a few percent of");
    println!("evaluation, dominated by re-walking the decoration) plus a small per-batch");
    println!("constant — never a per-tree fsync.");

    // ---- Part 6: lint — the static-analysis pass priced. ---------------
    println!("\nLint: grammar-level static analyses vs. the full generator cascade\n");
    let lint_headers = ["AG", "findings", "full compile", "lint pass", "share"];
    let mut lint_rows = Vec::new();
    for (name, source) in [
        ("minipascal", MINIPASCAL_OLGA),
        ("blocks", BLOCKS_OLGA_LIST),
        ("sized-2000", sized.as_str()),
    ] {
        let pipeline = Pipeline::new();
        let compiled = pipeline.compile_olga(source).expect("corpus AG compiles");
        let findings = compiled.lint.diags.len();
        let t_full = time_n(reps, || {
            std::hint::black_box(pipeline.compile_olga(source).unwrap());
        });
        let t_lint = time_n(reps, || {
            std::hint::black_box(fnc2::lint::lint_grammar(
                &compiled.grammar,
                Some(&compiled.classification),
            ));
        });
        lint_rows.push(vec![
            name.to_string(),
            findings.to_string(),
            format!("{:.2}ms", t_full.as_secs_f64() * 1e3),
            format!("{:.3}ms", t_lint.as_secs_f64() * 1e3),
            format!(
                "{:+.1}%",
                100.0 * t_lint.as_secs_f64() / t_full.as_secs_f64()
            ),
        ]);
    }
    println!("{}", render_table(&lint_headers, &lint_rows));
    if let Some(p) = maybe_emit_json("lint", &lint_headers, &lint_rows) {
        println!("wrote {}", p.display());
    }
    println!("Expected shape: the lint re-walks every rule a handful of times (liveness");
    println!("fixpoint, usefulness fixpoints, copy graph) but runs no class test of its");
    println!("own — the circularity codes reuse the cascade's verdicts — so its share of");
    println!("the cascade stays in the low single digits.");
}
