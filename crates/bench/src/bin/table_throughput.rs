//! Throughput scaling of the slot-compiled evaluator, sequentially and
//! under the work-stealing batch driver.
//!
//! Two tables, two claims:
//!
//! * **eval_hotpath** — the slot-compiled interpretation (dense frames,
//!   pre-resolved fetch descriptors, interned constants) against the
//!   retained reference interpretation (`Evaluator::evaluate_reference`:
//!   per-fetch `Arg` matching, hash-map local frames, constant clones) on
//!   the same evaluator instance, plus a **guarded** leg
//!   (`evaluate_guarded` with the default `EvalBudget`) whose overhead
//!   column is the price of the fnc2-guard budget meter on the hot path,
//!   plus a **profiled** leg (`evaluate_recorded` with the rule-cost
//!   profiler enabled) whose overhead column is the price of per-rule
//!   cost attribution when it is switched *on*. All legs are checked
//!   value-equal before timing — the speedup is never bought with a
//!   divergence.
//! * **throughput** — trees/sec over a batch of synthetic-corpus trees at
//!   1, 2, 4 and 8 worker threads sharing one `&Evaluator`, plus the steal
//!   counts the pool reports through `fnc2-obs`.
//! * **startup** — the generate-once/evaluate-many claim in miniature:
//!   loading a compiled-table artifact (`fnc2::artifact::load_tables`,
//!   which re-runs only the OLGA front end and deserializes the Figure-3
//!   cascade results) against rerunning the full generator cascade
//!   (`Pipeline::compile_olga`) on the same source.
//!
//! Run with `cargo run --release --bin table_throughput -p fnc2-bench`.
//! Set `FNC2_BENCH_JSON` to also write `BENCH_eval_hotpath.json`,
//! `BENCH_throughput.json` and `BENCH_startup.json`.

use std::time::{Duration, Instant};

use fnc2::guard::EvalBudget;
use fnc2::visit::{Evaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_bench::{maybe_emit_json, render_table};
use fnc2_corpus::{
    sized_ag_source, synthetic, synthetic_tree, BLOCKS_OLGA_LIST, MINIPASCAL_OLGA, TABLE1_PROFILES,
};
use fnc2_par::batch_evaluate;

/// Median of `n` individually-timed runs (after 3 warmups). A median, not
/// a mean: per-run times in the tens of microseconds are easily wrecked by
/// a single scheduler preemption, which a mean would smear over every leg.
fn time_n<F: FnMut()>(n: usize, mut f: F) -> Duration {
    for _ in 0..3 {
        f();
    }
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    // ---- Part 1: slot-compiled vs. reference interpretation. -----------
    println!("Hot path: slot-compiled vs. reference interpretation (per-run times)\n");
    let hot_headers = [
        "AG",
        "nodes",
        "reference",
        "compiled",
        "speedup",
        "guarded",
        "overhead",
        "profiled",
        "prof ovh",
    ];
    let mut hot_rows = Vec::new();
    let reps = 20;
    let budget = EvalBudget::default();
    for profile in &TABLE1_PROFILES {
        let g = synthetic(profile);
        let compiled = Pipeline::new()
            .compile(g)
            .expect("synthetic corpus compiles");
        let ev = Evaluator::new(&compiled.grammar, &compiled.seqs);
        let tree = synthetic_tree(&compiled.grammar, profile, 600, profile.seed ^ 0xbeef);
        let inputs = RootInputs::new();

        // Differential guard: the timed legs must agree everywhere.
        let (fast, _) = ev.evaluate(&tree, &inputs).expect("compiled leg");
        let (slow, _) = ev
            .evaluate_reference(&tree, &inputs)
            .expect("reference leg");
        let (metered, _) = ev
            .evaluate_guarded(&tree, &inputs, &budget, None)
            .expect("guarded leg");
        let mut obs = fnc2::obs::Obs::new();
        obs.enable_profile(fnc2::obs::DEFAULT_SAMPLE_EVERY);
        let (profiled, _) = ev
            .evaluate_recorded(&tree, &inputs, &mut obs)
            .expect("profiled leg");
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(&compiled.grammar, n);
            for &attr in compiled.grammar.phylum(ph).attrs() {
                assert_eq!(
                    fast.get(&compiled.grammar, n, attr),
                    slow.get(&compiled.grammar, n, attr),
                    "{}: reference and compiled paths diverge",
                    profile.name
                );
                assert_eq!(
                    fast.get(&compiled.grammar, n, attr),
                    metered.get(&compiled.grammar, n, attr),
                    "{}: guarded and compiled paths diverge",
                    profile.name
                );
                assert_eq!(
                    fast.get(&compiled.grammar, n, attr),
                    profiled.get(&compiled.grammar, n, attr),
                    "{}: profiled and compiled paths diverge",
                    profile.name
                );
            }
        }

        let t_ref = time_n(reps, || {
            std::hint::black_box(ev.evaluate_reference(&tree, &inputs).unwrap());
        });
        let t_fast = time_n(reps, || {
            std::hint::black_box(ev.evaluate(&tree, &inputs).unwrap());
        });
        let t_guard = time_n(reps, || {
            std::hint::black_box(ev.evaluate_guarded(&tree, &inputs, &budget, None).unwrap());
        });
        let t_prof = time_n(reps, || {
            std::hint::black_box(ev.evaluate_recorded(&tree, &inputs, &mut obs).unwrap());
        });
        hot_rows.push(vec![
            profile.name.to_string(),
            tree.size().to_string(),
            format!("{:.1}µs", t_ref.as_secs_f64() * 1e6),
            format!("{:.1}µs", t_fast.as_secs_f64() * 1e6),
            format!("{:.2}x", t_ref.as_secs_f64() / t_fast.as_secs_f64()),
            format!("{:.1}µs", t_guard.as_secs_f64() * 1e6),
            format!(
                "{:+.1}%",
                (t_guard.as_secs_f64() / t_fast.as_secs_f64() - 1.0) * 100.0
            ),
            format!("{:.1}µs", t_prof.as_secs_f64() * 1e6),
            format!(
                "{:+.1}%",
                (t_prof.as_secs_f64() / t_fast.as_secs_f64() - 1.0) * 100.0
            ),
        ]);
    }
    println!("{}", render_table(&hot_headers, &hot_rows));
    if let Some(p) = maybe_emit_json("eval_hotpath", &hot_headers, &hot_rows) {
        println!("wrote {}\n", p.display());
    }

    // ---- Part 2: batch throughput at 1..8 threads. ---------------------
    println!("Throughput: work-stealing batch evaluation (trees/sec)\n");
    let thr_headers = [
        "AG", "trees", "threads", "total", "trees/s", "speedup", "steals",
    ];
    let mut thr_rows = Vec::new();
    let batch_size = 256;
    for profile in [
        &TABLE1_PROFILES[0],
        &TABLE1_PROFILES[3],
        &TABLE1_PROFILES[6],
    ] {
        let g = synthetic(profile);
        let compiled = Pipeline::new()
            .compile(g)
            .expect("synthetic corpus compiles");
        let ev = Evaluator::new(&compiled.grammar, &compiled.seqs);
        let trees: Vec<_> = (0..batch_size)
            .map(|t| synthetic_tree(&compiled.grammar, profile, 400, profile.seed ^ t as u64))
            .collect();
        let inputs = RootInputs::new();
        let mut base = 0f64;
        for threads in [1usize, 2, 4, 8] {
            // Median of 5 runs: batch wall-clock is scheduler-noisy.
            let mut times = Vec::new();
            let mut steals = 0u64;
            for _ in 0..5 {
                let t0 = Instant::now();
                let (results, stats) = batch_evaluate(&ev, &trees, &inputs, threads);
                times.push(t0.elapsed().as_secs_f64());
                steals = stats.steals;
                assert!(results.iter().all(Result::is_ok), "batch evaluation failed");
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
            let dt = times[times.len() / 2];
            let tps = batch_size as f64 / dt;
            if threads == 1 {
                base = tps;
            }
            thr_rows.push(vec![
                profile.name.to_string(),
                batch_size.to_string(),
                threads.to_string(),
                format!("{:.2}ms", dt * 1e3),
                format!("{tps:.0}"),
                format!("{:.2}x", tps / base),
                steals.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&thr_headers, &thr_rows));
    if let Some(p) = maybe_emit_json("throughput", &thr_headers, &thr_rows) {
        println!("wrote {}\n", p.display());
    }

    // ---- Part 3: startup — full cascade vs. artifact load. -------------
    println!("Startup: full generator cascade vs. compiled-table artifact load\n");
    let start_headers = ["AG", "artifact", "full compile", "table load", "speedup"];
    let mut start_rows = Vec::new();
    let sized = sized_ag_source("s40", 2000);
    for (name, source) in [
        ("minipascal", MINIPASCAL_OLGA),
        ("blocks", BLOCKS_OLGA_LIST),
        ("sized-2000", sized.as_str()),
    ] {
        let pipeline = Pipeline::new();
        let compiled = pipeline.compile_olga(source).expect("corpus AG compiles");
        let bytes = fnc2::artifact::emit_tables(&compiled, &pipeline, source);
        // Differential guard: the artifact path must reproduce the cascade.
        let loaded =
            fnc2::artifact::load_tables(&bytes, source, &pipeline).expect("artifact loads");
        assert_eq!(
            loaded.report.class, compiled.report.class,
            "{name}: artifact load diverges from the full cascade"
        );
        let t_full = time_n(reps, || {
            std::hint::black_box(pipeline.compile_olga(source).unwrap());
        });
        let t_load = time_n(reps, || {
            std::hint::black_box(fnc2::artifact::load_tables(&bytes, source, &pipeline).unwrap());
        });
        start_rows.push(vec![
            name.to_string(),
            format!("{} B", bytes.len()),
            format!("{:.2}ms", t_full.as_secs_f64() * 1e3),
            format!("{:.2}ms", t_load.as_secs_f64() * 1e3),
            format!("{:.1}x", t_full.as_secs_f64() / t_load.as_secs_f64()),
        ]);
    }
    println!("{}", render_table(&start_headers, &start_rows));
    if let Some(p) = maybe_emit_json("startup", &start_headers, &start_rows) {
        println!("wrote {}", p.display());
    }
}
