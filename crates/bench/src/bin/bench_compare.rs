//! Regression gate over the `BENCH_*.json` table dumps.
//!
//! Compares a fresh benchmark run (written by the table binaries when
//! `FNC2_BENCH_JSON` is set) against a committed baseline and fails —
//! nonzero exit — when the **median** per-row regression of any tracked
//! column exceeds the threshold (15% by default).
//!
//! By default only *ratio* columns are compared (`speedup`, `overhead`,
//! `prof ovh`, and anything else rendered as `N.NNx` or `±N.N%`): ratios
//! are computed from two legs of the *same* run on the *same* machine, so
//! they survive CI runners with wildly different absolute clock speeds.
//! `--absolute` additionally compares time columns (`µs`/`ms`/`s` cells)
//! for local, same-machine investigations.
//!
//! ```text
//! bench_compare [--threshold PCT] [--absolute] <baseline-dir> <fresh-dir> [table...]
//! ```
//!
//! With no explicit table names, every `BENCH_<table>.json` present in the
//! baseline directory is compared; a baseline with no matching fresh dump
//! is an error (the run script forgot a table). The medians-not-maxima
//! choice is deliberate: a single scheduler-preempted row should not gate
//! a merge, a systematic slowdown across rows should.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fnc2_obs::Json;

/// Default regression threshold, in percent.
const DEFAULT_THRESHOLD: f64 = 15.0;

/// One parsed `BENCH_*.json` document.
struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn load_table(path: &Path) -> Result<Table, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: bad JSON: {e}", path.display()))?;
    let name = doc
        .get("table")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{}: missing \"table\"", path.display()))?
        .to_string();
    let strings = |v: &Json| -> Option<Vec<String>> {
        v.as_arr()?
            .iter()
            .map(|c| c.as_str().map(str::to_string))
            .collect()
    };
    let headers = doc
        .get("headers")
        .and_then(&strings)
        .ok_or_else(|| format!("{}: missing \"headers\"", path.display()))?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing \"rows\"", path.display()))?
        .iter()
        .map(|r| strings(r).ok_or_else(|| format!("{}: non-string row cell", path.display())))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Table {
        name,
        headers,
        rows,
    })
}

/// How a column's cells are interpreted for comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Kind {
    /// `"3.41x"` — a speedup ratio; bigger is better.
    Ratio(f64),
    /// `"+1.3%"` — an overhead percentage; compared as the factor
    /// `1 + pct/100`, smaller is better.
    Overhead(f64),
    /// `"12.3µs"` / `"4.56ms"` / `"1.2 s"` — a wall-clock time in
    /// nanoseconds; smaller is better, but only compared with
    /// `--absolute` (cross-runner clock speeds differ).
    TimeNs(f64),
    /// Anything else (labels, counts): identity only.
    Label,
}

fn classify(cell: &str) -> Kind {
    let c = cell.trim();
    if let Some(n) = c.strip_suffix('x').and_then(|s| s.parse::<f64>().ok()) {
        return Kind::Ratio(n);
    }
    if let Some(n) = c.strip_suffix('%').and_then(|s| s.parse::<f64>().ok()) {
        return Kind::Overhead(n);
    }
    for (suffix, scale) in [("µs", 1e3), ("ms", 1e6), ("ns", 1.0), ("s", 1e9)] {
        if let Some(n) = c
            .strip_suffix(suffix)
            .and_then(|s| s.trim_end().parse::<f64>().ok())
        {
            return Kind::TimeNs(n * scale);
        }
    }
    Kind::Label
}

/// The per-row "badness" change factor for one cell pair, or `None` when
/// the column kind is not comparable under the current mode. `> 1` means
/// the fresh run is worse than the baseline.
fn change_factor(base: Kind, fresh: Kind, absolute: bool) -> Option<f64> {
    match (base, fresh) {
        (Kind::Ratio(b), Kind::Ratio(f)) if f > 0.0 => Some(b / f),
        (Kind::Overhead(b), Kind::Overhead(f)) => {
            let (b, f) = (1.0 + b / 100.0, 1.0 + f / 100.0);
            (b > 0.0).then(|| f / b)
        }
        (Kind::TimeNs(b), Kind::TimeNs(f)) if absolute && b > 0.0 => Some(f / b),
        _ => None,
    }
}

/// The median change factor. Non-finite factors (a `NaNx` cell in a
/// malformed dump would otherwise poison the sort and panic) are rejected
/// as a proper error, and even-length inputs take the mean of the two
/// middle elements — the true median, not the upper one.
fn median(mut xs: Vec<f64>) -> Result<f64, String> {
    if xs.is_empty() {
        return Err("median of an empty factor list".into());
    }
    if let Some(bad) = xs.iter().find(|x| !x.is_finite()) {
        return Err(format!("non-finite change factor {bad} in dump"));
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    Ok(if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    })
}

/// Compares one table pair; returns the list of regression messages.
fn compare(
    base: &Table,
    fresh: &Table,
    threshold: f64,
    absolute: bool,
) -> Result<Vec<String>, String> {
    if base.headers != fresh.headers {
        return Err(format!(
            "table `{}`: header mismatch (baseline {:?} vs fresh {:?}) — regenerate the baseline",
            base.name, base.headers, fresh.headers
        ));
    }
    if base.rows.len() != fresh.rows.len() {
        return Err(format!(
            "table `{}`: row count changed ({} vs {}) — regenerate the baseline",
            base.name,
            base.rows.len(),
            fresh.rows.len()
        ));
    }
    for (i, (b, f)) in base.rows.iter().zip(&fresh.rows).enumerate() {
        if b.first() != f.first() {
            return Err(format!(
                "table `{}` row {i}: key mismatch ({:?} vs {:?}) — regenerate the baseline",
                base.name,
                b.first(),
                f.first()
            ));
        }
    }
    // Every row must carry exactly one cell per header: a short row would
    // panic on indexing below, a long one would be silently ignored.
    for (which, t) in [("baseline", base), ("fresh", fresh)] {
        for (i, row) in t.rows.iter().enumerate() {
            if row.len() != t.headers.len() {
                return Err(format!(
                    "table `{}` {which} row {i} ({:?}): {} cells but {} headers — \
                     truncated or malformed dump",
                    t.name,
                    row.first(),
                    row.len(),
                    t.headers.len()
                ));
            }
        }
    }
    let mut regressions = Vec::new();
    for (col, header) in base.headers.iter().enumerate() {
        let mut factors = Vec::new();
        let mut worst: Option<(f64, usize)> = None;
        for (i, (b, f)) in base.rows.iter().zip(&fresh.rows).enumerate() {
            let (bc, fc) = (classify(&b[col]), classify(&f[col]));
            if let Some(factor) = change_factor(bc, fc, absolute) {
                if worst.is_none_or(|(w, _)| factor > w) {
                    worst = Some((factor, i));
                }
                factors.push(factor);
            }
        }
        if factors.is_empty() {
            continue;
        }
        let med =
            median(factors).map_err(|e| format!("table `{}` column `{header}`: {e}", base.name))?;
        let limit = 1.0 + threshold / 100.0;
        let verdict = if med > limit { "REGRESSION" } else { "ok" };
        let (w, wi) = worst.expect("factors nonempty");
        println!(
            "{:<14} {:<10} median {:+6.1}%  worst {:+6.1}% (row {}: {})  {}",
            base.name,
            header,
            (med - 1.0) * 100.0,
            (w - 1.0) * 100.0,
            wi,
            base.rows[wi][0],
            verdict
        );
        if med > limit {
            regressions.push(format!(
                "table `{}` column `{}`: median {:+.1}% worse than baseline (threshold {threshold}%)",
                base.name,
                header,
                (med - 1.0) * 100.0
            ));
        }
    }
    Ok(regressions)
}

fn usage() -> String {
    "usage: bench_compare [--threshold PCT] [--absolute] <baseline-dir> <fresh-dir> [table...]"
        .to_string()
}

fn run(args: &[String]) -> Result<Vec<String>, String> {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut absolute = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--threshold needs a number".to_string())?;
            }
            "--absolute" => absolute = true,
            "--help" | "-h" => return Err(usage()),
            _ => positional.push(a.clone()),
        }
    }
    if positional.len() < 2 {
        return Err(usage());
    }
    let base_dir = PathBuf::from(&positional[0]);
    let fresh_dir = PathBuf::from(&positional[1]);
    let tables: Vec<String> = if positional.len() > 2 {
        positional[2..].to_vec()
    } else {
        // Every baseline present gates the run.
        let mut names: Vec<String> = std::fs::read_dir(&base_dir)
            .map_err(|e| format!("cannot list {}: {e}", base_dir.display()))?
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                Some(
                    name.strip_prefix("BENCH_")?
                        .strip_suffix(".json")?
                        .to_string(),
                )
            })
            .collect();
        names.sort();
        names
    };
    if tables.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            base_dir.display()
        ));
    }
    let mut regressions = Vec::new();
    for t in &tables {
        let file = format!("BENCH_{t}.json");
        let base = load_table(&base_dir.join(&file))?;
        let fresh = load_table(&fresh_dir.join(&file))?;
        if base.name != fresh.name {
            return Err(format!(
                "{file}: table name mismatch ({} vs {})",
                base.name, fresh.name
            ));
        }
        regressions.extend(compare(&base, &fresh, threshold, absolute)?);
    }
    Ok(regressions)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(regressions) if regressions.is_empty() => {
            println!("bench_compare: no median regression beyond threshold");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            for r in &regressions {
                eprintln!("bench_compare: {r}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(name: &str, rows: &[&[&str]]) -> Table {
        Table {
            name: name.into(),
            headers: vec![
                "AG".into(),
                "compiled".into(),
                "speedup".into(),
                "overhead".into(),
            ],
            rows: rows
                .iter()
                .map(|r| r.iter().map(|c| c.to_string()).collect())
                .collect(),
        }
    }

    #[test]
    fn classifies_cells() {
        assert_eq!(classify("3.41x"), Kind::Ratio(3.41));
        assert_eq!(classify("+1.3%"), Kind::Overhead(1.3));
        assert_eq!(classify("-0.5%"), Kind::Overhead(-0.5));
        assert_eq!(classify("12.5µs"), Kind::TimeNs(12.5e3));
        assert_eq!(classify("2.00ms"), Kind::TimeNs(2e6));
        assert_eq!(classify("flat_wide"), Kind::Label);
        assert_eq!(classify("256"), Kind::Label);
    }

    #[test]
    fn ratio_regression_detected_by_median() {
        let base = table(
            "t",
            &[
                &["a", "10.0µs", "3.00x", "+1.0%"],
                &["b", "10.0µs", "3.00x", "+1.0%"],
                &["c", "10.0µs", "3.00x", "+1.0%"],
            ],
        );
        // One noisy row does not trip the gate …
        let noisy = table(
            "t",
            &[
                &["a", "10.0µs", "2.00x", "+1.0%"],
                &["b", "10.0µs", "3.00x", "+1.0%"],
                &["c", "10.0µs", "3.00x", "+1.0%"],
            ],
        );
        assert!(compare(&base, &noisy, 15.0, false).unwrap().is_empty());
        // … a systematic slowdown does.
        let slow = table(
            "t",
            &[
                &["a", "10.0µs", "2.00x", "+1.0%"],
                &["b", "10.0µs", "2.00x", "+1.0%"],
                &["c", "10.0µs", "2.00x", "+1.0%"],
            ],
        );
        let regs = compare(&base, &slow, 15.0, false).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("speedup"), "{regs:?}");
    }

    #[test]
    fn overhead_compared_as_factor() {
        let base = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        let worse = table("t", &[&["a", "10.0µs", "3.00x", "+25.0%"]]);
        let regs = compare(&base, &worse, 15.0, false).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("overhead"), "{regs:?}");
    }

    #[test]
    fn absolute_times_only_with_flag() {
        let base = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        let slow = table("t", &[&["a", "20.0µs", "3.00x", "+1.0%"]]);
        assert!(compare(&base, &slow, 15.0, false).unwrap().is_empty());
        assert_eq!(compare(&base, &slow, 15.0, true).unwrap().len(), 1);
    }

    #[test]
    fn median_averages_the_middle_pair_for_even_length() {
        // Old code returned the upper middle element (2.0 here), biasing
        // even-length columns pessimistically.
        assert_eq!(median(vec![1.0, 2.0]).unwrap(), 1.5);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
        assert_eq!(median(vec![3.0, 1.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn median_rejects_nan_instead_of_panicking() {
        let err = median(vec![1.0, f64::NAN, 2.0]).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        assert!(median(Vec::new()).is_err());
    }

    #[test]
    fn nan_cell_is_a_comparison_error_not_a_panic() {
        // A fresh overhead cell of NaN yields a NaN change factor; the old
        // code panicked inside median's sort comparator.
        let base = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        let bad = table("t", &[&["a", "10.0µs", "3.00x", "+NaN%"]]);
        let err = compare(&base, &bad, 15.0, false).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn short_row_is_an_error_not_a_panic() {
        // A fresh row missing trailing cells made the old code index out
        // of bounds; rows longer than the header list were silently
        // truncated. Both are now hard errors.
        let base = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        let mut short = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        short.rows[0].pop();
        let err = compare(&base, &short, 15.0, false).unwrap_err();
        assert!(err.contains("cells but"), "{err}");
        let mut long = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        long.rows[0].push("extra".into());
        assert!(compare(&base, &long, 15.0, false).is_err());
    }

    #[test]
    fn row_count_change_is_a_hard_error() {
        // rows.iter().zip(&fresh.rows) would silently drop the unmatched
        // tail without the explicit length check.
        let base = table(
            "t",
            &[
                &["a", "10.0µs", "3.00x", "+1.0%"],
                &["b", "10.0µs", "3.00x", "+1.0%"],
            ],
        );
        let dropped = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        let err = compare(&base, &dropped, 15.0, false).unwrap_err();
        assert!(err.contains("row count changed"), "{err}");
    }

    #[test]
    fn shape_mismatch_demands_regeneration() {
        let base = table("t", &[&["a", "10.0µs", "3.00x", "+1.0%"]]);
        let mut renamed = table("t", &[&["b", "10.0µs", "3.00x", "+1.0%"]]);
        assert!(compare(&base, &renamed, 15.0, false).is_err());
        renamed.rows.clear();
        assert!(compare(&base, &renamed, 15.0, false).is_err());
    }
}
