//! Table 2 — statistics gathered for the FNC-2 system (on AGs).
//!
//! The paper measures the bootstrapped system's phases on FNC-2's own AG
//! sources: "input" (scan, parse, initial tree construction), "typing"
//! (type- and well-definedness checking + abstract-AG construction, itself
//! a generated evaluator: AG 5), and "translator" (translation to C of the
//! non-AG parts: AG 7), plus memory and lines/minute. Our substitution
//! runs the same phases of this reproduction's OLGA pipeline on generated
//! AG sources of seven sizes.
//!
//! Run with `cargo run --release --bin table2 -p fnc2-bench`.

use std::time::{Duration, Instant};

use fnc2_bench::{render_table, CountingAlloc};
use fnc2_corpus::sized_ag_source;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn lines_per_min(lines: usize, d: Duration) -> String {
    if d.is_zero() {
        return "-".into();
    }
    format!("{:.0}", lines as f64 * 60.0 / d.as_secs_f64())
}

fn main() {
    println!("Table 2: statistics gathered for the FNC-2 system (on AGs)");
    println!("(generated OLGA AG sources; phases: input = lex+parse, typing = check,");
    println!(
        " translator = OLGA-to-C of the non-AG parts; evaluator generation included in total)\n"
    );

    let sizes = [
        ("AG1", 320),
        ("AG2", 520),
        ("AG3", 760),
        ("AG4", 1000),
        ("AG5", 1500),
        ("AG6", 440),
        ("AG7", 1150),
    ];
    let headers = [
        "AG",
        "# lines",
        "input",
        "typing",
        "translator",
        "generator",
        "memory(KB)",
        "total",
        "l/mn typing",
    ];
    let mut rows = Vec::new();
    // Warm up lazy allocations/caches so the first row is not inflated.
    {
        let src = fnc2_corpus::sized_ag_source("warmup", 120);
        let _ = fnc2::olga::parse_units(&src).expect("parses");
        let _ = fnc2::Pipeline::new().compile_olga(&src);
    }
    for (name, lines) in sizes {
        let src = sized_ag_source(&name.to_lowercase(), lines);
        let actual_lines = src.lines().count();
        CountingAlloc::reset_peak();
        let t_total = Instant::now();

        // input: lexing + parsing.
        let t0 = Instant::now();
        let units = fnc2::olga::parse_units(&src).expect("generated source parses");
        let input = t0.elapsed();

        // typing: checking modules and the AG (abstract-AG construction).
        let t1 = Instant::now();
        let mut compiler = fnc2::olga::Compiler::new();
        let mut ag = None;
        for u in units {
            match u {
                fnc2::olga::ast::Unit::Module(m) => compiler.add_module(m).expect("checks"),
                fnc2::olga::ast::Unit::Ag(a) => ag = Some(a),
            }
        }
        let checked = compiler.check_ag(ag.expect("AG present")).expect("checks");
        let (grammar, _) = fnc2::olga::lower(&checked).expect("lowers");
        let typing = t1.elapsed();

        // evaluator generation (the Table 2 runs include it in the total).
        let t2 = Instant::now();
        let compiled = fnc2::Pipeline::new().compile(grammar).expect("generates");
        let generator = t2.elapsed();

        // translator: OLGA to C.
        let t3 = Instant::now();
        let c_text = fnc2::codegen::to_c(&checked, &compiled.grammar, &compiled.seqs);
        let translator = t3.elapsed();
        std::hint::black_box(c_text.len());

        let total = t_total.elapsed();
        rows.push(vec![
            name.to_string(),
            actual_lines.to_string(),
            format!("{input:.2?}"),
            format!("{typing:.2?}"),
            format!("{translator:.2?}"),
            format!("{generator:.2?}"),
            format!("{}", CountingAlloc::peak() / 1024),
            format!("{total:.2?}"),
            lines_per_min(actual_lines, typing),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table2", &headers, &rows);
    println!("Paper shape: typing dominates input; the whole process is roughly linear in");
    println!("lines except the generator phase; memory grows with source size (the paper");
    println!("reports 1.3–1.4 KB/line on a Sun-3/60).");
}
