//! §4.1 dynamic claims — attribute storage cells.
//!
//! "Dynamic measures show a decrease of the number of attribute storage
//! cells by a factor of 4 to 8 in the execution of AG 5 on various source
//! texts." Runs the plain (tree-storage) evaluator and the space-optimized
//! evaluator on growing inputs and reports the high-water mark of live
//! storage cells, the reduction factor, and the runtime copy-elimination
//! volume.
//!
//! Run with `cargo run --release --bin table_space -p fnc2-bench`.

use fnc2::visit::RootInputs;
use fnc2::Pipeline;
use fnc2_bench::render_table;
use fnc2_corpus as corpus;

fn main() {
    println!("Section 4.1: dynamic attribute-storage cells, tree storage vs. optimized\n");
    let headers = [
        "AG",
        "input",
        "instances",
        "max live (opt)",
        "reduction",
        "copies skipped",
        "evals",
    ];
    let mut rows = Vec::new();

    // Binary on growing bit strings.
    let compiled = Pipeline::new().compile(corpus::binary()).expect("compiles");
    for len in [64usize, 256, 1024] {
        let tree = corpus::binary_tree(&compiled.grammar, &fnc2_bench::bit_string(len, 11));
        let (plain, _) = compiled.evaluate(&tree, &RootInputs::new()).expect("plain");
        let opt = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .expect("optimized");
        rows.push(vec![
            "binary".into(),
            format!("{len} bits"),
            plain.live_count().to_string(),
            opt.stats.max_live_cells.to_string(),
            format!(
                "{:.1}x",
                plain.live_count() as f64 / opt.stats.max_live_cells.max(1) as f64
            ),
            opt.stats.copies_skipped.to_string(),
            opt.stats.evals.to_string(),
        ]);
    }

    // Mini-Pascal on growing programs.
    let compiled = Pipeline::new()
        .compile(corpus::minipascal().0)
        .expect("compiles");
    for blocks in [4usize, 16, 64] {
        let src = corpus::sample_program(blocks);
        let tree = corpus::parse_minipascal(&compiled.grammar, &src).expect("parses");
        let (plain, _) = compiled.evaluate(&tree, &RootInputs::new()).expect("plain");
        let opt = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .expect("optimized");
        rows.push(vec![
            "minipascal".into(),
            format!("{} lines", src.lines().count()),
            plain.live_count().to_string(),
            opt.stats.max_live_cells.to_string(),
            format!(
                "{:.1}x",
                plain.live_count() as f64 / opt.stats.max_live_cells.max(1) as f64
            ),
            opt.stats.copies_skipped.to_string(),
            opt.stats.evals.to_string(),
        ]);
    }

    // The big synthetic AG 5 profile, as in the paper's claim.
    let p = &corpus::TABLE1_PROFILES[4];
    let compiled = Pipeline::new()
        .compile(corpus::synthetic(p))
        .expect("compiles");
    for target in [300usize, 1200, 4000] {
        let tree = corpus::synthetic_tree(&compiled.grammar, p, target, 5);
        let (plain, _) = compiled.evaluate(&tree, &RootInputs::new()).expect("plain");
        let opt = compiled
            .evaluate_optimized(&tree, &RootInputs::new())
            .expect("optimized");
        rows.push(vec![
            "synthAG5".into(),
            format!("{} nodes", tree.size()),
            plain.live_count().to_string(),
            opt.stats.max_live_cells.to_string(),
            format!(
                "{:.1}x",
                plain.live_count() as f64 / opt.stats.max_live_cells.max(1) as f64
            ),
            opt.stats.copies_skipped.to_string(),
            opt.stats.evals.to_string(),
        ]);
    }

    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table_space", &headers, &rows);
    println!("Paper claim: a 4-8x decrease in storage cells on AG 5 (dynamic measures).");
    println!("Reproduction: ~4x on the AG5-profile synthetic grammar, ~5x on binary, and");
    println!("11-16x on mini-Pascal — inside or beyond the paper's band. The EVAL-sinking");
    println!("schedule refinement (delay each EVAL to just before its first use) is what");
    println!("keeps lifetimes short enough for variables and stacks to dominate.");
}
