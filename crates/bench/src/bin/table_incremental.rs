//! §2.1.2 — incremental vs. exhaustive reevaluation.
//!
//! The DNC-based incremental evaluator limits reevaluation to affected
//! instances. This harness applies single-leaf edits, same-value edits and
//! multi-subtree replacements to growing trees, comparing instances
//! reevaluated against the exhaustive instance count.
//!
//! Run with `cargo run --release --bin table_incremental -p fnc2-bench`.

use fnc2::ag::{Grammar, GrammarBuilder, NodeId, Occ, TreeBuilder, Value};
use fnc2::incremental::{Equality, IncrementalEvaluator};
use fnc2_bench::render_table;

fn sum_grammar() -> Grammar {
    let mut g = GrammarBuilder::new("sum");
    let s = g.phylum("S");
    let e = g.phylum("E");
    let total = g.syn(s, "total");
    let depth = g.inh(e, "depth");
    let sum = g.syn(e, "sum");
    g.func("succ", 1, |v| Value::Int(v[0].as_int() + 1));
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    let root = g.production("root", s, &[e]);
    g.copy(root, Occ::lhs(total), Occ::new(1, sum));
    g.constant(root, Occ::new(1, depth), Value::Int(0));
    let fork = g.production("fork", e, &[e, e]);
    g.call(fork, Occ::new(1, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(fork, Occ::new(2, depth), "succ", [Occ::lhs(depth).into()]);
    g.call(
        fork,
        Occ::lhs(sum),
        "add",
        [Occ::new(1, sum).into(), Occ::new(2, sum).into()],
    );
    let leaf = g.production("leafe", e, &[]);
    g.copy(leaf, Occ::lhs(sum), fnc2::ag::Arg::Token);
    g.finish().expect("well-defined")
}

fn balanced(g: &Grammar, tb: &mut TreeBuilder, depth: usize, next: &mut i64) -> NodeId {
    if depth == 0 {
        *next += 1;
        tb.node_with_token(
            g.production_by_name("leafe").unwrap(),
            &[],
            Some(Value::Int(*next % 23)),
        )
        .unwrap()
    } else {
        let a = balanced(g, tb, depth - 1, next);
        let b = balanced(g, tb, depth - 1, next);
        tb.op("fork", &[a, b]).unwrap()
    }
}

fn leaf_sub(g: &Grammar, v: i64) -> fnc2::ag::Tree {
    let mut tb = TreeBuilder::new(g);
    let n = tb
        .node_with_token(
            g.production_by_name("leafe").unwrap(),
            &[],
            Some(Value::Int(v)),
        )
        .unwrap();
    tb.finish(n)
}

fn main() {
    println!("Section 2.1.2: incremental vs. exhaustive reevaluation\n");
    let headers = [
        "tree depth",
        "instances",
        "edit",
        "reevaluated",
        "changed",
        "cut",
        "fraction",
    ];
    let mut rows = Vec::new();
    let g = sum_grammar();

    for depth in [8usize, 11, 14] {
        let mut tb = TreeBuilder::new(&g);
        let mut next = 0;
        let body = balanced(&g, &mut tb, depth, &mut next);
        let root = tb.op("root", &[body]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        let mut inc = IncrementalEvaluator::new(&g, tree, Equality::default()).expect("evaluates");
        let instances = inc.instance_count();

        // One leaf, new value.
        let victim = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).children().is_empty())
            .map(|(n, _)| n)
            .unwrap();
        let stats = inc.replace_subtree(victim, &leaf_sub(&g, 999)).unwrap();
        rows.push(vec![
            depth.to_string(),
            instances.to_string(),
            "1 leaf, changed".into(),
            stats.reevaluated.to_string(),
            stats.changed.to_string(),
            stats.cut.to_string(),
            format!(
                "{:.3}%",
                100.0 * stats.reevaluated as f64 / instances as f64
            ),
        ]);

        // Same-value edit: propagation cut immediately.
        let victim = inc
            .tree()
            .preorder()
            .find(|&(n, _)| inc.tree().node(n).children().is_empty())
            .map(|(n, _)| n)
            .unwrap();
        let old = inc
            .tree()
            .node(victim)
            .token()
            .expect("leaf token")
            .as_int();
        let stats = inc.replace_subtree(victim, &leaf_sub(&g, old)).unwrap();
        rows.push(vec![
            depth.to_string(),
            instances.to_string(),
            "1 leaf, same value".into(),
            stats.reevaluated.to_string(),
            stats.changed.to_string(),
            stats.cut.to_string(),
            format!(
                "{:.3}%",
                100.0 * stats.reevaluated as f64 / instances as f64
            ),
        ]);

        // Multiple subtree replacements in one wave.
        let leaves: Vec<NodeId> = inc
            .tree()
            .preorder()
            .filter(|&(n, _)| inc.tree().node(n).children().is_empty())
            .map(|(n, _)| n)
            .take(4)
            .collect();
        let edits: Vec<(NodeId, fnc2::ag::Tree)> = leaves
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n, leaf_sub(&g, 500 + i as i64)))
            .collect();
        let stats = inc.replace_subtrees(edits).unwrap();
        rows.push(vec![
            depth.to_string(),
            instances.to_string(),
            "4 leaves, one wave".into(),
            stats.reevaluated.to_string(),
            stats.changed.to_string(),
            stats.cut.to_string(),
            format!(
                "{:.3}%",
                100.0 * stats.reevaluated as f64 / instances as f64
            ),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table_incremental", &headers, &rows);
    println!("Expected shape: reevaluation touches O(depth) instances per edit (the spine");
    println!("to the root), a vanishing fraction as the tree grows; equal-value edits cut");
    println!("immediately; multiple replacements share one propagation wave.");
}
