//! §4.2 — generated evaluators vs. hand-written equivalents.
//!
//! "Comparison between the hand-written version of the system and the
//! bootstrapped version shows that the latter is only between two and four
//! times slower on average"; the slowdown is attributed to the naïve
//! translation of semantic rules, not the visit-sequence walk. This
//! harness times hand-written Rust evaluators against the generated
//! visit-sequence interpreter (and the demand-driven evaluator as the
//! dynamic-scheduling straw man the paper ruled out).
//!
//! Run with `cargo run --release --bin table_evaluator -p fnc2-bench`.

use std::time::{Duration, Instant};

use fnc2::visit::{DynamicEvaluator, Evaluator, RootInputs};
use fnc2::Pipeline;
use fnc2_bench::{
    bit_string, desk_tree, handwritten_binary, handwritten_binary_boxed, handwritten_desk,
    handwritten_minipascal, render_table,
};
use fnc2_corpus as corpus;

fn time_n<F: FnMut()>(n: usize, mut f: F) -> Duration {
    // Warm up caches and lazy allocations before measuring.
    for _ in 0..3 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    t0.elapsed() / n as u32
}

fn main() {
    println!("Section 4.2: generated evaluator vs. hand-written (per-run times)\n");
    let headers = [
        "AG",
        "input",
        "hand(native)",
        "hand(boxed)",
        "generated",
        "ratio",
        "demand-driven",
        "dd ratio",
    ];
    let mut rows = Vec::new();
    let reps = 40;

    // Binary.
    let compiled = Pipeline::new().compile(corpus::binary()).expect("compiles");
    let generated = Evaluator::new(&compiled.grammar, &compiled.seqs);
    let demand = DynamicEvaluator::new(&compiled.grammar);
    for len in [256usize, 2048] {
        let tree = corpus::binary_tree(&compiled.grammar, &bit_string(len, 7));
        let hand = time_n(reps, || {
            std::hint::black_box(handwritten_binary(&compiled.grammar, &tree));
        });
        let boxed = time_n(reps, || {
            std::hint::black_box(handwritten_binary_boxed(&compiled.grammar, &tree));
        });
        let genr = time_n(reps, || {
            std::hint::black_box(generated.evaluate(&tree, &RootInputs::new()).unwrap());
        });
        let dynv = time_n(reps, || {
            std::hint::black_box(demand.evaluate(&tree, &RootInputs::new()).unwrap());
        });
        rows.push(vec![
            "binary".into(),
            format!("{len} bits"),
            format!("{hand:.2?}"),
            format!("{boxed:.2?}"),
            format!("{genr:.2?}"),
            format!("{:.1}x", genr.as_secs_f64() / boxed.as_secs_f64()),
            format!("{dynv:.2?}"),
            format!("{:.1}x", dynv.as_secs_f64() / boxed.as_secs_f64()),
        ]);
    }

    // Desk calculator.
    let compiled = Pipeline::new().compile(corpus::desk()).expect("compiles");
    let generated = Evaluator::new(&compiled.grammar, &compiled.seqs);
    let demand = DynamicEvaluator::new(&compiled.grammar);
    for depth in [10usize, 14] {
        let tree = desk_tree(&compiled.grammar, depth);
        let hand = time_n(reps, || {
            std::hint::black_box(handwritten_desk(&compiled.grammar, &tree));
        });
        let genr = time_n(reps, || {
            std::hint::black_box(generated.evaluate(&tree, &RootInputs::new()).unwrap());
        });
        let dynv = time_n(reps, || {
            std::hint::black_box(demand.evaluate(&tree, &RootInputs::new()).unwrap());
        });
        rows.push(vec![
            "desk".into(),
            format!("depth {depth}"),
            format!("{hand:.2?}"),
            "same".into(),
            format!("{genr:.2?}"),
            format!("{:.1}x", genr.as_secs_f64() / hand.as_secs_f64()),
            format!("{dynv:.2?}"),
            format!("{:.1}x", dynv.as_secs_f64() / hand.as_secs_f64()),
        ]);
    }

    // Mini-Pascal: the paper's point that "this slowdown must not be
    // attributed to the evaluator as such but to the execution of the
    // semantic rules" — with real rule work the gap collapses.
    let compiled = Pipeline::new()
        .compile(corpus::minipascal().0)
        .expect("compiles");
    let generated = Evaluator::new(&compiled.grammar, &compiled.seqs);
    let demand = DynamicEvaluator::new(&compiled.grammar);
    for blocks in [16usize, 64] {
        let src = corpus::sample_program(blocks);
        let tree = corpus::parse_minipascal(&compiled.grammar, &src).expect("parses");
        let hand = time_n(reps, || {
            std::hint::black_box(handwritten_minipascal(&compiled.grammar, &tree));
        });
        let genr = time_n(reps, || {
            std::hint::black_box(generated.evaluate(&tree, &RootInputs::new()).unwrap());
        });
        let dynv = time_n(reps, || {
            std::hint::black_box(demand.evaluate(&tree, &RootInputs::new()).unwrap());
        });
        rows.push(vec![
            "minipascal".into(),
            format!("{} lines", src.lines().count()),
            format!("{hand:.2?}"),
            "same".into(),
            format!("{genr:.2?}"),
            format!("{:.1}x", genr.as_secs_f64() / hand.as_secs_f64()),
            format!("{dynv:.2?}"),
            format!("{:.1}x", dynv.as_secs_f64() / hand.as_secs_f64()),
        ]);
    }

    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table_evaluator", &headers, &rows);
    println!("Paper shape: a small constant factor over hand-written code (2-4x in the");
    println!("paper), bracketed here: trivial-rule AGs pay the full interpretation");
    println!("overhead (~4-11x), while AGs whose semantic functions do real work (the");
    println!("mini-Pascal code generator) land at ~0.6-1.6x — confirming the paper's");
    println!("\"this slowdown must not be attributed to the evaluator as such but to the");
    println!("execution of the semantic rules\". Static scheduling beats demand-driven.");
}
