//! Table 1 — statistics gathered for the evaluator generator.
//!
//! Runs the full generator (class cascade, transformation, visit
//! sequences, space optimization) on the seven synthetic profiles standing
//! in for the paper's AG 1–7 and prints the paper's columns: sizes, the
//! smallest class, the storage-class proportions, packing results, copy
//! elimination rates, and the generator's CPU time.
//!
//! Run with `cargo run --release --bin table1`.

use std::time::Instant;

use fnc2::Pipeline;
use fnc2_bench::render_table;
use fnc2_corpus::{synthetic, TABLE1_PROFILES};

fn main() {
    println!("Table 1: statistics gathered for the evaluator generator");
    println!("(synthetic AGs matched to the paper's size/class profiles; see DESIGN.md)\n");

    let headers = [
        "AG",
        "phyla",
        "operators",
        "occ. attr.",
        "sem. rules",
        "class",
        "% vars",
        "% stacks",
        "% non-temp.",
        "# variables",
        "# stacks",
        "% elim./copy",
        "% elim./poss.",
        "time",
    ];
    let mut rows = Vec::new();
    let mut tot_occ = 0usize;
    let mut w_vars = 0.0f64;
    let mut w_stacks = 0.0f64;
    let mut w_node = 0.0f64;

    for profile in &TABLE1_PROFILES {
        let grammar = synthetic(profile);
        let t0 = Instant::now();
        let compiled = Pipeline::new()
            .compile(grammar)
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        let elapsed = t0.elapsed();
        let r = &compiled.report;
        let s = r.space.as_ref().expect("space stats");
        let occ = s.occ_total();
        tot_occ += occ;
        w_vars += s.pct_variables() * occ as f64;
        w_stacks += s.pct_stacks() * occ as f64;
        w_node += s.pct_node() * occ as f64;
        rows.push(vec![
            profile.name.to_string(),
            r.phyla.to_string(),
            r.operators.to_string(),
            r.occurrences.to_string(),
            r.rules.to_string(),
            r.class.to_string(),
            format!("{:.0}", s.pct_variables()),
            format!("{:.0}", s.pct_stacks()),
            format!("{:.0}", s.pct_node()),
            s.variables_after.to_string(),
            s.stacks_after.to_string(),
            format!("{:.0}", s.pct_eliminated_of_copies()),
            format!("{:.0}", s.pct_eliminated_of_possible()),
            format!("{:.2?}", elapsed),
        ]);
    }
    // Occurrence-weighted averages, like the paper's "ave." column.
    rows.push(vec![
        "ave.".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.0}", w_vars / tot_occ as f64),
        format!("{:.0}", w_stacks / tot_occ as f64),
        format!("{:.0}", w_node / tot_occ as f64),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("{}", render_table(&headers, &rows));
    fnc2_bench::maybe_emit_json("table1", &headers, &rows);
    println!("Paper shape: mostly-OAG(0) class column with one DNC, one not-OAG(k) (SNC),");
    println!("one OAG(1); storage dominated by variables+stacks (>80% of occurrences out");
    println!("of the tree); near-optimal elimination of the eliminable copy rules;");
    println!("generator time non-linear but far from exponential in AG size.");
}
