//! The attribute-grammar object model.
//!
//! A [`Grammar`] is the *abstract AG* of the paper (§3.1): abstract syntax
//! (phyla and operators), attribute declarations, and semantic rules with
//! their local dependencies. It is the interface between the OLGA front-end
//! and the evaluator generator.

use std::fmt;
use std::sync::Arc;

use crate::ids::{AttrId, FuncId, LocalId, ONode, Occ, PhylumId, ProductionId};
use crate::value::Value;

/// Whether an attribute flows down (inherited) or up (synthesized).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrKind {
    /// Computed at a node from its context; flows top-down.
    Inherited,
    /// Computed at a node from its subtree; flows bottom-up.
    Synthesized,
}

impl AttrKind {
    /// `"inh"` or `"syn"`.
    pub fn short(self) -> &'static str {
        match self {
            AttrKind::Inherited => "inh",
            AttrKind::Synthesized => "syn",
        }
    }
}

/// A phylum (non-terminal) and its attribute declarations.
#[derive(Clone, Debug)]
pub struct Phylum {
    pub(crate) name: String,
    /// All attributes declared on this phylum, in declaration order.
    pub(crate) attrs: Vec<AttrId>,
    /// Productions whose LHS is this phylum.
    pub(crate) productions: Vec<ProductionId>,
}

impl Phylum {
    /// The phylum's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attributes declared on this phylum, in declaration order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Productions deriving this phylum.
    pub fn productions(&self) -> &[ProductionId] {
        &self.productions
    }
}

/// An attribute declaration: name, kind, and owning phylum.
#[derive(Clone, Debug)]
pub struct AttrInfo {
    pub(crate) name: String,
    pub(crate) kind: AttrKind,
    pub(crate) phylum: PhylumId,
    /// Index of this attribute within its phylum's `attrs` list.
    pub(crate) offset: usize,
}

impl AttrInfo {
    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inherited or synthesized.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }

    /// The phylum this attribute is declared on.
    pub fn phylum(&self) -> PhylumId {
        self.phylum
    }

    /// Index of this attribute within its phylum's attribute list; useful
    /// for dense per-node side tables.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

/// An argument of a semantic rule.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// An attribute occurrence or production-local attribute.
    Node(ONode),
    /// An embedded constant.
    Const(Value),
    /// The lexical token value attached to the node the production is
    /// applied at (how `aic`-built trees carry scanned lexemes).
    Token,
}

impl From<Occ> for Arg {
    fn from(o: Occ) -> Self {
        Arg::Node(ONode::Attr(o))
    }
}

impl From<ONode> for Arg {
    fn from(n: ONode) -> Self {
        Arg::Node(n)
    }
}

/// The body of a semantic rule.
#[derive(Clone, Debug)]
pub enum RuleBody {
    /// `target := source` — a copy rule. Kept distinct because copy-rule
    /// elimination is central to the space optimizer (paper §2.2).
    Copy(Arg),
    /// `target := f(args…)`.
    Call {
        /// The applied semantic function.
        func: FuncId,
        /// Argument list.
        args: Vec<Arg>,
    },
}

/// A semantic rule `target := body` of one production.
#[derive(Clone, Debug)]
pub struct SemRule {
    pub(crate) target: ONode,
    pub(crate) body: RuleBody,
}

impl SemRule {
    /// The defined occurrence.
    pub fn target(&self) -> ONode {
        self.target
    }

    /// The rule's right-hand side.
    pub fn body(&self) -> &RuleBody {
        &self.body
    }

    /// True if this is a copy rule `x := y` between occurrences.
    pub fn is_copy(&self) -> bool {
        matches!(self.body, RuleBody::Copy(Arg::Node(_)))
    }

    /// The occurrences this rule reads.
    pub fn read_nodes(&self) -> impl Iterator<Item = ONode> + '_ {
        let args: &[Arg] = match &self.body {
            RuleBody::Copy(a) => std::slice::from_ref(a),
            RuleBody::Call { args, .. } => args,
        };
        args.iter().filter_map(|a| match a {
            Arg::Node(n) => Some(*n),
            _ => None,
        })
    }
}

/// A production-local attribute (paper §2.4: "a value local to a production
/// and depending on some attributes is hence a local attribute").
#[derive(Clone, Debug)]
pub struct LocalInfo {
    pub(crate) name: String,
}

impl LocalInfo {
    /// The local attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A production (operator): `lhs ::= rhs…`, with semantic rules.
#[derive(Clone, Debug)]
pub struct Production {
    pub(crate) name: String,
    pub(crate) lhs: PhylumId,
    pub(crate) rhs: Vec<PhylumId>,
    pub(crate) rules: Vec<SemRule>,
    pub(crate) locals: Vec<LocalInfo>,
}

impl Production {
    /// The operator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The left-hand-side phylum.
    pub fn lhs(&self) -> PhylumId {
        self.lhs
    }

    /// The right-hand-side phyla, left to right.
    pub fn rhs(&self) -> &[PhylumId] {
        &self.rhs
    }

    /// Number of RHS symbols.
    pub fn arity(&self) -> usize {
        self.rhs.len()
    }

    /// The semantic rules of this production.
    pub fn rules(&self) -> &[SemRule] {
        &self.rules
    }

    /// The production-local attributes.
    pub fn locals(&self) -> &[LocalInfo] {
        &self.locals
    }

    /// The phylum at occurrence position `pos` (0 = LHS).
    ///
    /// # Panics
    /// Panics if `pos > arity`.
    pub fn phylum_at(&self, pos: u16) -> PhylumId {
        if pos == 0 {
            self.lhs
        } else {
            self.rhs[pos as usize - 1]
        }
    }
}

/// A runtime failure reported by a semantic function.
///
/// Semantic functions are ordinary host-language closures; most are total,
/// but functions lowered from OLGA may abort (the `error` builtin, a partial
/// list accessor, …). Such failures surface as values of this type instead
/// of unwinding, so every evaluator can report them as diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl SemError {
    /// A semantic failure with the given message.
    pub fn new(message: impl Into<String>) -> SemError {
        SemError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SemError {}

/// The boxed implementation of a semantic function. `Send + Sync` so a
/// [`Grammar`] — and every evaluator borrowing it — can be shared across
/// the parallel batch driver's worker threads.
pub type SemFnImpl = Arc<dyn Fn(&[Value]) -> Result<Value, SemError> + Send + Sync>;

/// A registered semantic function.
#[derive(Clone)]
pub struct SemFn {
    pub(crate) name: String,
    pub(crate) arity: usize,
    pub(crate) f: SemFnImpl,
    /// Rough evaluation cost in abstract units; used by benches to model
    /// rule-heavy vs. tree-walk-heavy AGs. 1 for trivial functions.
    pub(crate) cost: u32,
}

impl SemFn {
    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The abstract evaluation cost declared at registration (used by the
    /// workload models in the benches).
    pub fn cost(&self) -> u32 {
        self.cost
    }

    /// Applies the function.
    ///
    /// # Errors
    /// Returns [`SemError`] when the function aborts at runtime (e.g. the
    /// OLGA `error` builtin or a partial accessor applied out of domain).
    ///
    /// # Panics
    /// May panic if the argument count or dynamic types are wrong; the
    /// grammar validator checks arity and the OLGA type checker types.
    pub fn apply(&self, args: &[Value]) -> Result<Value, SemError> {
        (self.f)(args)
    }
}

impl fmt::Debug for SemFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SemFn({}/{})", self.name, self.arity)
    }
}

/// A complete, validated attribute grammar.
///
/// Construct with [`GrammarBuilder`](crate::GrammarBuilder); a `Grammar` is
/// immutable and well-defined by construction (every output occurrence of
/// every production defined exactly once).
#[derive(Clone, Debug)]
pub struct Grammar {
    pub(crate) name: String,
    pub(crate) phyla: Vec<Phylum>,
    pub(crate) attrs: Vec<AttrInfo>,
    pub(crate) productions: Vec<Production>,
    pub(crate) functions: Vec<SemFn>,
    pub(crate) root: PhylumId,
}

impl Grammar {
    /// The grammar's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root (axiom) phylum.
    pub fn root(&self) -> PhylumId {
        self.root
    }

    /// All phyla.
    pub fn phyla(&self) -> impl ExactSizeIterator<Item = PhylumId> {
        (0..self.phyla.len() as u32).map(PhylumId::from_raw)
    }

    /// All productions.
    pub fn productions(&self) -> impl ExactSizeIterator<Item = ProductionId> {
        (0..self.productions.len() as u32).map(ProductionId::from_raw)
    }

    /// Number of phyla.
    pub fn phylum_count(&self) -> usize {
        self.phyla.len()
    }

    /// Number of productions.
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    /// Number of attribute declarations (attribute occurrences in the sense
    /// of Table 1: the sum over phyla of attributes attached to each).
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Total number of semantic rules.
    pub fn rule_count(&self) -> usize {
        self.productions.iter().map(|p| p.rules.len()).sum()
    }

    /// The phylum table entry.
    pub fn phylum(&self, id: PhylumId) -> &Phylum {
        &self.phyla[id.index()]
    }

    /// The production table entry.
    pub fn production(&self, id: ProductionId) -> &Production {
        &self.productions[id.index()]
    }

    /// The attribute table entry.
    pub fn attr(&self, id: AttrId) -> &AttrInfo {
        &self.attrs[id.index()]
    }

    /// The function table entry.
    pub fn function(&self, id: FuncId) -> &SemFn {
        &self.functions[id.index()]
    }

    /// Number of semantic functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Looks up a phylum by name.
    pub fn phylum_by_name(&self, name: &str) -> Option<PhylumId> {
        self.phyla
            .iter()
            .position(|p| p.name == name)
            .map(|i| PhylumId::from_raw(i as u32))
    }

    /// Looks up a production by name.
    pub fn production_by_name(&self, name: &str) -> Option<ProductionId> {
        self.productions
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProductionId::from_raw(i as u32))
    }

    /// Looks up an attribute of a phylum by name.
    pub fn attr_by_name(&self, phylum: PhylumId, name: &str) -> Option<AttrId> {
        self.phyla[phylum.index()]
            .attrs
            .iter()
            .copied()
            .find(|&a| self.attrs[a.index()].name == name)
    }

    /// Attributes of `phylum` of the given kind, in declaration order.
    pub fn attrs_of(&self, phylum: PhylumId, kind: AttrKind) -> impl Iterator<Item = AttrId> + '_ {
        self.phyla[phylum.index()]
            .attrs
            .iter()
            .copied()
            .filter(move |&a| self.attrs[a.index()].kind == kind)
    }

    /// Inherited attributes of `phylum`.
    pub fn inherited(&self, phylum: PhylumId) -> Vec<AttrId> {
        self.attrs_of(phylum, AttrKind::Inherited).collect()
    }

    /// Synthesized attributes of `phylum`.
    pub fn synthesized(&self, phylum: PhylumId) -> Vec<AttrId> {
        self.attrs_of(phylum, AttrKind::Synthesized).collect()
    }

    /// True if occurrence `occ` of production `p` is an *output* occurrence
    /// (defined by the production): synthesized on the LHS or inherited on a
    /// RHS symbol.
    pub fn is_output(&self, _p: ProductionId, occ: Occ) -> bool {
        let kind = self.attrs[occ.attr.index()].kind;
        (occ.is_lhs()) == (kind == AttrKind::Synthesized)
    }

    /// All attribute occurrences of production `p`: `(pos, attr)` for every
    /// position and every attribute of the phylum at that position.
    pub fn occurrences(&self, p: ProductionId) -> Vec<Occ> {
        let prod = &self.productions[p.index()];
        let mut out = Vec::new();
        for pos in 0..=prod.rhs.len() as u16 {
            let ph = prod.phylum_at(pos);
            for &a in &self.phyla[ph.index()].attrs {
                out.push(Occ::new(pos, a));
            }
        }
        out
    }

    /// Output occurrences (targets that must be defined) of production `p`,
    /// including locals.
    pub fn outputs(&self, p: ProductionId) -> Vec<ONode> {
        let prod = &self.productions[p.index()];
        let mut out: Vec<ONode> = self
            .occurrences(p)
            .into_iter()
            .filter(|&o| self.is_output(p, o))
            .map(ONode::Attr)
            .collect();
        out.extend((0..prod.locals.len() as u32).map(|i| ONode::Local(LocalId::from_raw(i))));
        out
    }

    /// The rule defining `target` in production `p`, if any.
    pub fn rule_for(&self, p: ProductionId, target: ONode) -> Option<&SemRule> {
        self.productions[p.index()]
            .rules
            .iter()
            .find(|r| r.target == target)
    }

    /// Display form of an occurrence, e.g. `Seq$1.scale`.
    pub fn occ_name(&self, p: ProductionId, node: ONode) -> String {
        match node {
            ONode::Attr(o) => {
                let prod = &self.productions[p.index()];
                let ph = prod.phylum_at(o.pos);
                let nth = (0..=o.pos).filter(|&q| prod.phylum_at(q) == ph).count();
                let total = (0..=prod.rhs.len() as u16)
                    .filter(|&q| prod.phylum_at(q) == ph)
                    .count();
                let phn = &self.phyla[ph.index()].name;
                let an = &self.attrs[o.attr.index()].name;
                if total > 1 {
                    format!("{phn}${nth}.{an}")
                } else {
                    format!("{phn}.{an}")
                }
            }
            ONode::Local(l) => {
                format!(
                    "local {}",
                    self.productions[p.index()].locals[l.index()].name
                )
            }
        }
    }

    /// Total number of copy rules in the grammar.
    pub fn copy_rule_count(&self) -> usize {
        self.productions
            .iter()
            .flat_map(|p| p.rules.iter())
            .filter(|r| r.is_copy())
            .count()
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "attribute grammar {} (root {})",
            self.name,
            self.phyla[self.root.index()].name
        )?;
        for p in self.productions() {
            let prod = self.production(p);
            let rhs: Vec<&str> = prod
                .rhs
                .iter()
                .map(|&x| self.phyla[x.index()].name.as_str())
                .collect();
            writeln!(
                f,
                "  {} : {} ::= {}",
                prod.name,
                self.phyla[prod.lhs.index()].name,
                rhs.join(" ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GrammarBuilder;
    use crate::ids::Occ;

    use super::*;

    fn tiny() -> Grammar {
        // S ::= A ; A ::= <leaf>
        let mut g = GrammarBuilder::new("tiny");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let v = g.syn(s, "v");
        let w = g.syn(a, "w");
        let i = g.inh(a, "i");
        let root = g.production("root", s, &[a]);
        let leaf = g.production("leaf", a, &[]);
        g.copy(root, Occ::lhs(v), Occ::new(1, w));
        g.constant(root, Occ::new(1, i), Value::Int(1));
        g.copy(leaf, Occ::lhs(w), Occ::lhs(i));
        g.finish().unwrap()
    }

    #[test]
    fn basic_lookups() {
        let g = tiny();
        assert_eq!(g.phylum_count(), 2);
        assert_eq!(g.production_count(), 2);
        assert_eq!(g.attr_count(), 3);
        assert_eq!(g.rule_count(), 3);
        let s = g.phylum_by_name("S").unwrap();
        let a = g.phylum_by_name("A").unwrap();
        assert_eq!(g.phylum(s).name(), "S");
        assert_eq!(g.synthesized(a).len(), 1);
        assert_eq!(g.inherited(a).len(), 1);
        assert!(g.phylum_by_name("Z").is_none());
    }

    #[test]
    fn occurrences_and_outputs() {
        let g = tiny();
        let root = g.production_by_name("root").unwrap();
        // S has 1 attr, A has 2 => 3 occurrences.
        assert_eq!(g.occurrences(root).len(), 3);
        // outputs: S.v (syn LHS), A.i (inh RHS)
        assert_eq!(g.outputs(root).len(), 2);
        let leaf = g.production_by_name("leaf").unwrap();
        assert_eq!(g.outputs(leaf).len(), 1);
    }

    #[test]
    fn occ_names() {
        let g = tiny();
        let root = g.production_by_name("root").unwrap();
        let a = g.phylum_by_name("A").unwrap();
        let w = g.attr_by_name(a, "w").unwrap();
        assert_eq!(g.occ_name(root, ONode::Attr(Occ::new(1, w))), "A.w");
    }

    #[test]
    fn copy_rule_count() {
        let g = tiny();
        assert_eq!(g.copy_rule_count(), 2);
    }

    #[test]
    fn grammar_display() {
        let g = tiny();
        let s = g.to_string();
        assert!(s.contains("attribute grammar tiny"));
        assert!(s.contains("root : S ::= A"));
    }
}
