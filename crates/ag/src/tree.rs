//! Attributed abstract trees and attribute-value stores.
//!
//! Trees are arena-allocated; nodes carry the applied production, their
//! children, and optionally a lexical token value (as attached by the
//! `aic`-style tree constructors, paper §3.3). Attribute values live in a
//! separate [`AttrValues`] store so that different evaluators (exhaustive,
//! space-optimized, incremental) can choose their own storage policy — the
//! whole point of paper §2.2.

use crate::error::TreeError;
use crate::grammar::Grammar;
use crate::ids::{AttrId, LocalId, NodeId, PhylumId, ProductionId};
use crate::value::Value;

/// A node of an attributed tree.
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) production: ProductionId,
    pub(crate) children: Vec<NodeId>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) token: Option<Value>,
}

impl Node {
    /// The production applied at this node.
    pub fn production(&self) -> ProductionId {
        self.production
    }

    /// Children, left to right.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// The parent, or `None` at the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The lexical token attached by the tree constructor, if any.
    pub fn token(&self) -> Option<&Value> {
        self.token.as_ref()
    }
}

/// An abstract syntax tree conforming to a [`Grammar`].
///
/// Build one with [`TreeBuilder`]; edit it with
/// [`replace_subtree`](Tree::replace_subtree) (the incremental evaluator's
/// edit operation, paper §2.1.2).
#[derive(Clone, Debug)]
pub struct Tree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
}

impl Tree {
    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node table entry.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of *live* nodes (reachable from the root).
    pub fn size(&self) -> usize {
        self.preorder().count()
    }

    /// Total arena capacity, including nodes detached by replacements.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// The phylum a node derives.
    pub fn phylum(&self, grammar: &Grammar, id: NodeId) -> PhylumId {
        grammar.production(self.node(id).production).lhs()
    }

    /// Preorder (node, depth) traversal from the root.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![(self.root, 0)],
        }
    }

    /// Replaces the subtree rooted at `at` by `replacement` (grafted into
    /// this arena). Returns the [`NodeId`] of the new subtree root.
    ///
    /// The old subtree's nodes stay in the arena but become unreachable.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::ReplacePhylum`] if the replacement derives a
    /// different phylum, or [`TreeError::RootPhylum`] when replacing the
    /// root with a tree of the wrong phylum.
    pub fn replace_subtree(
        &mut self,
        grammar: &Grammar,
        at: NodeId,
        replacement: &Tree,
    ) -> Result<NodeId, TreeError> {
        let want = self.phylum(grammar, at);
        let got = replacement.phylum(grammar, replacement.root());
        if want != got {
            return Err(TreeError::ReplacePhylum {
                expected: grammar.phylum(want).name().to_string(),
                found: grammar.phylum(got).name().to_string(),
            });
        }
        // Graft the replacement nodes, remapping ids.
        let base = self.nodes.len() as u32;
        for (i, n) in replacement.nodes.iter().enumerate() {
            let mut n = n.clone();
            n.children = n
                .children
                .iter()
                .map(|c| NodeId::from_raw(c.0 + base))
                .collect();
            n.parent = if i as u32 == replacement.root.0 {
                self.nodes[at.index()].parent
            } else {
                n.parent.map(|p| NodeId::from_raw(p.0 + base))
            };
            self.nodes.push(n);
        }
        let new_root = NodeId::from_raw(replacement.root.0 + base);
        match self.nodes[at.index()].parent {
            Some(parent) => {
                let slot = self.nodes[parent.index()]
                    .children
                    .iter()
                    .position(|&c| c == at)
                    .expect("parent lists child");
                self.nodes[parent.index()].children[slot] = new_root;
            }
            None => self.root = new_root,
        }
        Ok(new_root)
    }

    /// Replaces the production applied at `at` **in place**, keeping the
    /// node's children. The new production must derive the same phylum
    /// with the same RHS signature (the paper's operator-swap edit, e.g.
    /// exchanging `add` for `sub`); attribute stores shaped for the old
    /// production re-shape themselves on [`AttrValues::sync`] /
    /// [`LocalFrames::sync`].
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::ReplacePhylum`] when the LHS phylum
    /// differs, [`TreeError::ChildCount`] when the arity differs, or
    /// [`TreeError::ChildPhylum`] when an RHS phylum differs.
    pub fn replace_production(
        &mut self,
        grammar: &Grammar,
        at: NodeId,
        production: ProductionId,
    ) -> Result<(), TreeError> {
        let old = grammar.production(self.nodes[at.index()].production);
        let new = grammar.production(production);
        if old.lhs() != new.lhs() {
            return Err(TreeError::ReplacePhylum {
                expected: grammar.phylum(old.lhs()).name().to_string(),
                found: grammar.phylum(new.lhs()).name().to_string(),
            });
        }
        if old.arity() != new.arity() {
            return Err(TreeError::ChildCount {
                production: new.name().to_string(),
                expected: new.arity(),
                found: old.arity(),
            });
        }
        for (i, (&have, &want)) in old.rhs().iter().zip(new.rhs()).enumerate() {
            if have != want {
                return Err(TreeError::ChildPhylum {
                    production: new.name().to_string(),
                    pos: i + 1,
                    expected: grammar.phylum(want).name().to_string(),
                    found: grammar.phylum(have).name().to_string(),
                });
            }
        }
        self.nodes[at.index()].production = production;
        Ok(())
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent() {
            d += 1;
            cur = p;
        }
        d
    }

    /// The 1-based child position of `id` under its parent, or `None` at
    /// the root. This is the `j` of the paper's `VISIT i, j` instruction.
    pub fn child_index(&self, id: NodeId) -> Option<usize> {
        let parent = self.node(id).parent()?;
        self.node(parent)
            .children()
            .iter()
            .position(|&c| c == id)
            .map(|i| i + 1)
    }
}

/// Preorder traversal iterator over a [`Tree`], yielding `(node, depth)`.
#[derive(Debug)]
pub struct Preorder<'a> {
    tree: &'a Tree,
    stack: Vec<(NodeId, usize)>,
}

impl Iterator for Preorder<'_> {
    type Item = (NodeId, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let (id, depth) = self.stack.pop()?;
        let node = self.tree.node(id);
        for &c in node.children().iter().rev() {
            self.stack.push((c, depth + 1));
        }
        Some((id, depth))
    }
}

/// Reconstructs a [`Tree`] of `grammar` from an output-tree
/// [`Term`](crate::Term)
/// value — the glue of the paper's modularity scheme (§2.3): "each
/// evaluator takes as input a tree … and produces as output one or more
/// decorated trees", so one AG's output term becomes the next AG's input
/// tree. Term operators are resolved by production name; a term child that
/// is not itself a term becomes the node's lexical token (for leaf
/// productions carrying a scalar).
///
/// # Errors
///
/// Fails if an operator name is unknown, the child count mismatches the
/// production arity, or a child phylum is wrong.
pub fn term_to_tree(grammar: &Grammar, term: &crate::value::Term) -> Result<Tree, TreeError> {
    fn build(
        grammar: &Grammar,
        tb: &mut TreeBuilder,
        term: &crate::value::Term,
    ) -> Result<NodeId, TreeError> {
        let p = grammar
            .production_by_name(&term.op)
            .ok_or_else(|| TreeError::ChildCount {
                production: format!("<unknown `{}`>", term.op),
                expected: 0,
                found: term.children.len(),
            })?;
        let mut kids = Vec::new();
        let mut token = None;
        for c in &term.children {
            match c {
                Value::Term(t) => kids.push(build(grammar, tb, t)?),
                scalar => token = Some(scalar.clone()),
            }
        }
        tb.node_with_token(p, &kids, token)
    }
    let mut tb = TreeBuilder::new(grammar);
    let root = build(grammar, &mut tb, term)?;
    Ok(tb.finish(root))
}

/// Builds [`Tree`]s bottom-up, validating each node against the grammar.
#[derive(Debug)]
pub struct TreeBuilder<'g> {
    grammar: &'g Grammar,
    nodes: Vec<Node>,
}

impl<'g> TreeBuilder<'g> {
    /// Starts building a tree for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        TreeBuilder {
            grammar,
            nodes: Vec::new(),
        }
    }

    /// Creates a node applying `production` to `children`.
    ///
    /// # Errors
    ///
    /// Fails if the child count or a child's phylum does not match the
    /// production signature.
    pub fn node(
        &mut self,
        production: ProductionId,
        children: &[NodeId],
    ) -> Result<NodeId, TreeError> {
        self.node_with_token(production, children, None)
    }

    /// Like [`node`](Self::node) but attaches a lexical token value.
    pub fn node_with_token(
        &mut self,
        production: ProductionId,
        children: &[NodeId],
        token: Option<Value>,
    ) -> Result<NodeId, TreeError> {
        let prod = self.grammar.production(production);
        if prod.arity() != children.len() {
            return Err(TreeError::ChildCount {
                production: prod.name().to_string(),
                expected: prod.arity(),
                found: children.len(),
            });
        }
        for (i, (&c, &want)) in children.iter().zip(prod.rhs()).enumerate() {
            let got = self
                .grammar
                .production(self.nodes[c.index()].production)
                .lhs();
            if got != want {
                return Err(TreeError::ChildPhylum {
                    production: prod.name().to_string(),
                    pos: i + 1,
                    expected: self.grammar.phylum(want).name().to_string(),
                    found: self.grammar.phylum(got).name().to_string(),
                });
            }
        }
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(Node {
            production,
            children: children.to_vec(),
            parent: None,
            token,
        });
        for &c in children {
            self.nodes[c.index()].parent = Some(id);
        }
        Ok(id)
    }

    /// Shorthand: creates a node by production *name*.
    ///
    /// # Errors
    ///
    /// Fails if the name is unknown or the node is ill-formed.
    pub fn op(&mut self, name: &str, children: &[NodeId]) -> Result<NodeId, TreeError> {
        let p = self
            .grammar
            .production_by_name(name)
            .ok_or_else(|| TreeError::ChildCount {
                production: format!("<unknown `{name}`>"),
                expected: 0,
                found: children.len(),
            })?;
        self.node(p, children)
    }

    /// Finishes the tree with `root`. The root must derive a phylum; it need
    /// not be the grammar's axiom (subtrees are first-class for incremental
    /// replacement), but [`finish_root`](Self::finish_root) enforces the
    /// axiom when wanted.
    pub fn finish(self, root: NodeId) -> Tree {
        Tree {
            nodes: self.nodes,
            root,
        }
    }

    /// Finishes the tree, requiring `root` to derive the grammar's axiom.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::RootPhylum`] otherwise.
    pub fn finish_root(self, root: NodeId) -> Result<Tree, TreeError> {
        let got = self
            .grammar
            .production(self.nodes[root.index()].production)
            .lhs();
        if got != self.grammar.root() {
            return Err(TreeError::RootPhylum {
                expected: self.grammar.phylum(self.grammar.root()).name().to_string(),
                found: self.grammar.phylum(got).name().to_string(),
            });
        }
        Ok(self.finish(root))
    }
}

/// Dense per-node attribute storage: the "attributes at tree nodes" storage
/// class, and the baseline the space optimizer improves on.
///
/// Values live in a single flat arena (`cells`) addressed by a per-node base
/// offset plus the attribute's offset within its phylum — one contiguous
/// allocation instead of one `Vec` per node, so the slot-compiled evaluators
/// can turn an attribute fetch into two indexed loads.
#[derive(Clone, Debug, Default)]
pub struct AttrValues {
    /// The flat cell arena; node `n`'s block starts at `offsets[n]`.
    cells: Vec<Option<Value>>,
    /// Per-node base offset into `cells`.
    offsets: Vec<u32>,
    /// The production each node's block was shaped for, so [`sync`]
    /// detects in-place production swaps (see
    /// [`Tree::replace_production`]).
    ///
    /// [`sync`]: AttrValues::sync
    shaped: Vec<ProductionId>,
}

impl AttrValues {
    fn width(grammar: &Grammar, production: ProductionId) -> usize {
        let ph = grammar.production(production).lhs();
        grammar.phylum(ph).attrs().len()
    }

    /// Creates an empty store shaped for `tree` under `grammar`.
    pub fn new(grammar: &Grammar, tree: &Tree) -> Self {
        let mut vals = AttrValues::default();
        vals.sync(grammar, tree);
        vals
    }

    /// Re-shapes the store after a tree edit: grows it to cover nodes
    /// grafted after creation, and drops the stale cells of any node whose
    /// production changed in place (its attribute values are unknown again,
    /// paper §2.1.2) so a subsequent evaluation pass recomputes them.
    pub fn sync(&mut self, grammar: &Grammar, tree: &Tree) {
        for (i, node) in tree.nodes.iter().enumerate().take(self.shaped.len()) {
            if self.shaped[i] == node.production {
                continue;
            }
            // `Tree::replace_production` keeps the phylum, so the block
            // width cannot change.
            let w = Self::width(grammar, node.production);
            debug_assert_eq!(w, Self::width(grammar, self.shaped[i]));
            let base = self.offsets[i] as usize;
            for cell in &mut self.cells[base..base + w] {
                *cell = None;
            }
            self.shaped[i] = node.production;
        }
        for node in &tree.nodes[self.shaped.len()..] {
            self.offsets.push(self.cells.len() as u32);
            self.shaped.push(node.production);
            let w = Self::width(grammar, node.production);
            self.cells.extend(std::iter::repeat_with(|| None).take(w));
        }
    }

    /// The value of `attr` at `node`, if evaluated.
    #[inline]
    pub fn get(&self, grammar: &Grammar, node: NodeId, attr: AttrId) -> Option<&Value> {
        self.get_slot(node, grammar.attr(attr).offset())
    }

    /// Sets the value of `attr` at `node`, returning the previous value.
    #[inline]
    pub fn set(
        &mut self,
        grammar: &Grammar,
        node: NodeId,
        attr: AttrId,
        value: Value,
    ) -> Option<Value> {
        self.set_slot(node, grammar.attr(attr).offset(), value)
    }

    /// Clears the value of `attr` at `node`.
    #[inline]
    pub fn clear(&mut self, grammar: &Grammar, node: NodeId, attr: AttrId) -> Option<Value> {
        self.cells[self.offsets[node.index()] as usize + grammar.attr(attr).offset()].take()
    }

    /// The value in `node`'s block at pre-computed slot offset `off` (an
    /// attribute's offset within its phylum, resolved once at evaluator
    /// construction).
    #[inline]
    pub fn get_slot(&self, node: NodeId, off: usize) -> Option<&Value> {
        self.cells[self.offsets[node.index()] as usize + off].as_ref()
    }

    /// Sets the slot at pre-computed offset `off` in `node`'s block.
    #[inline]
    pub fn set_slot(&mut self, node: NodeId, off: usize, value: Value) -> Option<Value> {
        self.cells[self.offsets[node.index()] as usize + off].replace(value)
    }

    /// Number of currently stored (live) attribute values.
    pub fn live_count(&self) -> usize {
        self.cells.iter().filter(|v| v.is_some()).count()
    }

    /// All cells in dense arena order (node id order, each node's block
    /// in phylum attribute order). The order is a pure function of the
    /// tree shape, which makes it usable for deterministic digests
    /// without any per-cell grammar lookups.
    pub fn cells(&self) -> impl Iterator<Item = Option<&Value>> {
        self.cells.iter().map(Option::as_ref)
    }
}

/// Dense per-activation storage for production-local attributes, laid out as
/// one flat arena with a frame per tree node sized by the node's production.
/// Replaces the `(NodeId, LocalId)` hash map the evaluators used before slot
/// compilation.
#[derive(Clone, Debug, Default)]
pub struct LocalFrames {
    /// The flat cell arena; node `n`'s frame starts at `offsets[n]`.
    cells: Vec<Option<Value>>,
    /// Per-node frame base offset into `cells`.
    offsets: Vec<u32>,
    /// The production each frame was shaped for (see [`AttrValues::sync`]).
    shaped: Vec<ProductionId>,
}

impl LocalFrames {
    /// Creates empty frames shaped for `tree` under `grammar`.
    pub fn new(grammar: &Grammar, tree: &Tree) -> Self {
        let mut frames = LocalFrames::default();
        frames.sync(grammar, tree);
        frames
    }

    /// Re-shapes the frames after a tree edit: appends frames for grafted
    /// nodes and resets the frame of any node whose production changed in
    /// place. A production swap may change the frame width, in which case
    /// the arena is re-laid while keeping untouched frames.
    pub fn sync(&mut self, grammar: &Grammar, tree: &Tree) {
        let width = |p: ProductionId| grammar.production(p).locals().len();
        let relayout = tree
            .nodes
            .iter()
            .zip(&self.shaped)
            .any(|(n, &s)| n.production != s && width(n.production) != width(s));
        if relayout {
            let mut old = std::mem::take(self);
            for (i, node) in tree.nodes.iter().enumerate() {
                self.offsets.push(self.cells.len() as u32);
                self.shaped.push(node.production);
                if i < old.shaped.len() && old.shaped[i] == node.production {
                    let base = old.offsets[i] as usize;
                    self.cells.extend(
                        old.cells[base..base + width(node.production)]
                            .iter_mut()
                            .map(Option::take),
                    );
                } else {
                    self.cells
                        .extend(std::iter::repeat_with(|| None).take(width(node.production)));
                }
            }
            return;
        }
        for (i, node) in tree.nodes.iter().enumerate().take(self.shaped.len()) {
            if self.shaped[i] == node.production {
                continue;
            }
            let base = self.offsets[i] as usize;
            for cell in &mut self.cells[base..base + width(node.production)] {
                *cell = None;
            }
            self.shaped[i] = node.production;
        }
        for node in &tree.nodes[self.shaped.len()..] {
            self.offsets.push(self.cells.len() as u32);
            self.shaped.push(node.production);
            self.cells
                .extend(std::iter::repeat_with(|| None).take(width(node.production)));
        }
    }

    /// The value of `local` in `node`'s frame, if computed.
    #[inline]
    pub fn get(&self, node: NodeId, local: LocalId) -> Option<&Value> {
        self.cells[self.offsets[node.index()] as usize + local.index()].as_ref()
    }

    /// Sets `local` in `node`'s frame, returning the previous value.
    #[inline]
    pub fn set(&mut self, node: NodeId, local: LocalId, value: Value) -> Option<Value> {
        self.cells[self.offsets[node.index()] as usize + local.index()].replace(value)
    }

    /// Clears `local` in `node`'s frame.
    #[inline]
    pub fn clear(&mut self, node: NodeId, local: LocalId) -> Option<Value> {
        self.cells[self.offsets[node.index()] as usize + local.index()].take()
    }

    /// Number of currently stored (live) local values.
    pub fn live_count(&self) -> usize {
        self.cells.iter().filter(|v| v.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GrammarBuilder;
    use crate::ids::Occ;

    use super::*;

    fn list_grammar() -> Grammar {
        // S ::= L ; L ::= cons(L) | nil
        let mut g = GrammarBuilder::new("list");
        let s = g.phylum("S");
        let l = g.phylum("L");
        let n = g.syn(s, "n");
        let len = g.syn(l, "len");
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        let root = g.production("root", s, &[l]);
        let cons = g.production("cons", l, &[l]);
        // Same signature as `cons` — the in-place production-swap target.
        let cons2 = g.production("cons2", l, &[l]);
        let nil = g.production("nil", l, &[]);
        g.copy(root, Occ::lhs(n), Occ::new(1, len));
        g.call(cons, Occ::lhs(len), "succ", [Occ::new(1, len).into()]);
        g.copy(cons2, Occ::lhs(len), Occ::new(1, len));
        g.constant(nil, Occ::lhs(len), Value::Int(0));
        g.finish().unwrap()
    }

    fn chain(g: &Grammar, k: usize) -> Tree {
        let mut b = TreeBuilder::new(g);
        let mut cur = b.op("nil", &[]).unwrap();
        for _ in 0..k {
            cur = b.op("cons", &[cur]).unwrap();
        }
        let root = b.op("root", &[cur]).unwrap();
        b.finish_root(root).unwrap()
    }

    #[test]
    fn build_and_traverse() {
        let g = list_grammar();
        let t = chain(&g, 3);
        assert_eq!(t.size(), 5);
        let kinds: Vec<usize> = t.preorder().map(|(_, d)| d).collect();
        assert_eq!(kinds, vec![0, 1, 2, 3, 4]);
        let (deepest, _) = t.preorder().last().unwrap();
        assert_eq!(t.depth(deepest), 4);
        assert_eq!(t.child_index(t.root()), None);
    }

    #[test]
    fn bad_children_rejected() {
        let g = list_grammar();
        let mut b = TreeBuilder::new(&g);
        let nil = b.op("nil", &[]).unwrap();
        assert!(matches!(
            b.op("root", &[nil, nil]),
            Err(TreeError::ChildCount { .. })
        ));
        let root = b.op("root", &[nil]).unwrap();
        // root derives S, but cons wants L.
        assert!(matches!(
            b.op("cons", &[root]),
            Err(TreeError::ChildPhylum { pos: 1, .. })
        ));
    }

    #[test]
    fn finish_root_checks_axiom() {
        let g = list_grammar();
        let mut b = TreeBuilder::new(&g);
        let nil = b.op("nil", &[]).unwrap();
        assert!(matches!(
            b.finish_root(nil),
            Err(TreeError::RootPhylum { .. })
        ));
    }

    #[test]
    fn replace_subtree_grafts() {
        let g = list_grammar();
        let mut t = chain(&g, 2);
        // replace the innermost `nil` subtree's parent (a cons chain of 1)
        let target = t
            .preorder()
            .find(|&(id, _)| g.production(t.node(id).production()).name() == "cons")
            .map(|(id, _)| id)
            .unwrap();
        let mut b = TreeBuilder::new(&g);
        let nil = b.op("nil", &[]).unwrap();
        let c1 = b.op("cons", &[nil]).unwrap();
        let c2 = b.op("cons", &[c1]).unwrap();
        let c3 = b.op("cons", &[c2]).unwrap();
        let sub = b.finish(c3);
        let before = t.size();
        let new_root = t.replace_subtree(&g, target, &sub).unwrap();
        assert_eq!(t.size(), before + 1); // replaced 3-node subtree by 4-node subtree
        assert_eq!(t.child_index(new_root), Some(1));
        // Phylum mismatch rejected.
        let mut b = TreeBuilder::new(&g);
        let nil = b.op("nil", &[]).unwrap();
        let s_root = b.op("root", &[nil]).unwrap();
        let s_tree = b.finish(s_root);
        assert!(matches!(
            t.replace_subtree(&g, new_root, &s_tree),
            Err(TreeError::ReplacePhylum { .. })
        ));
    }

    #[test]
    fn replace_at_root() {
        let g = list_grammar();
        let mut t = chain(&g, 1);
        let sub = chain(&g, 4);
        let new_root = t.replace_subtree(&g, t.root(), &sub).unwrap();
        assert_eq!(t.root(), new_root);
        assert_eq!(t.size(), 6);
        assert!(t.node(t.root()).parent().is_none());
    }

    #[test]
    fn attr_values_store() {
        let g = list_grammar();
        let t = chain(&g, 1);
        let l = g.phylum_by_name("L").unwrap();
        let len = g.attr_by_name(l, "len").unwrap();
        let mut vals = AttrValues::new(&g, &t);
        let leaf = t.preorder().last().unwrap().0;
        assert_eq!(vals.get(&g, leaf, len), None);
        assert_eq!(vals.set(&g, leaf, len, Value::Int(0)), None);
        assert_eq!(vals.set(&g, leaf, len, Value::Int(5)), Some(Value::Int(0)));
        assert_eq!(vals.get(&g, leaf, len), Some(&Value::Int(5)));
        assert_eq!(vals.live_count(), 1);
        assert_eq!(vals.clear(&g, leaf, len), Some(Value::Int(5)));
        assert_eq!(vals.live_count(), 0);
    }

    #[test]
    fn replace_production_validates_signature() {
        let g = list_grammar();
        let mut t = chain(&g, 2);
        let target = t
            .preorder()
            .find(|&(id, _)| g.production(t.node(id).production()).name() == "cons")
            .map(|(id, _)| id)
            .unwrap();
        // Wrong LHS phylum (root derives S, node is an L).
        let root_p = g.production_by_name("root").unwrap();
        assert!(matches!(
            t.replace_production(&g, target, root_p),
            Err(TreeError::ReplacePhylum { .. })
        ));
        // Wrong arity (nil has no children).
        let nil_p = g.production_by_name("nil").unwrap();
        assert!(matches!(
            t.replace_production(&g, target, nil_p),
            Err(TreeError::ChildCount { .. })
        ));
        // Same signature is accepted.
        let cons2 = g.production_by_name("cons2").unwrap();
        t.replace_production(&g, target, cons2).unwrap();
        assert_eq!(g.production(t.node(target).production()).name(), "cons2");
    }

    #[test]
    fn sync_reshapes_swapped_productions() {
        let g = list_grammar();
        let mut t = chain(&g, 2);
        let l = g.phylum_by_name("L").unwrap();
        let len = g.attr_by_name(l, "len").unwrap();
        let mut vals = AttrValues::new(&g, &t);
        let target = t
            .preorder()
            .find(|&(id, _)| g.production(t.node(id).production()).name() == "cons")
            .map(|(id, _)| id)
            .unwrap();
        let leaf = t.preorder().last().unwrap().0;
        vals.set(&g, target, len, Value::Int(2));
        vals.set(&g, leaf, len, Value::Int(0));
        let cons2 = g.production_by_name("cons2").unwrap();
        t.replace_production(&g, target, cons2).unwrap();
        vals.sync(&g, &t);
        // The swapped node's stale cells were cleared; untouched nodes survive.
        assert_eq!(vals.get(&g, target, len), None);
        assert_eq!(vals.get(&g, leaf, len), Some(&Value::Int(0)));
        assert_eq!(vals.live_count(), 1);
        // A second sync with no edits is a no-op.
        vals.sync(&g, &t);
        assert_eq!(vals.get(&g, leaf, len), Some(&Value::Int(0)));
    }
}
