//! # fnc2-ag — the attribute-grammar object model
//!
//! Core data structures of the FNC-2 reproduction: grammars (phyla,
//! operators/productions, inherited & synthesized attributes, semantic
//! rules, production-local attributes), local dependency graphs, attributed
//! trees, and the dynamic value model of semantic functions.
//!
//! This is the *abstract AG* interface of the paper (§3.1): the OLGA
//! front-end (`fnc2-olga`) produces a [`Grammar`], and the evaluator
//! generator (`fnc2-analysis`, `fnc2-visit`, `fnc2-space`) consumes it.
//!
//! ## Example
//!
//! Knuth's binary-number grammar, the canonical AG example:
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = GrammarBuilder::new("binary");
//! let number = g.phylum("Number");
//! let seq = g.phylum("Seq");
//! let bit = g.phylum("Bit");
//!
//! let n_value = g.syn(number, "value");
//! let s_value = g.syn(seq, "value");
//! let s_len = g.syn(seq, "length");
//! let s_scale = g.inh(seq, "scale");
//! let b_value = g.syn(bit, "value");
//! let b_scale = g.inh(bit, "scale");
//!
//! g.func("add", 2, |a| Value::Real(a[0].as_real() + a[1].as_real()));
//! g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
//! g.func("pow2", 1, |a| Value::Real(2f64.powi(a[0].as_int() as i32)));
//!
//! let number_p = g.production("number", number, &[seq]);
//! g.copy(number_p, Occ::lhs(n_value), Occ::new(1, s_value));
//! g.constant(number_p, Occ::new(1, s_scale), Value::Int(0));
//!
//! let pair = g.production("pair", seq, &[seq, bit]);
//! g.call(pair, Occ::lhs(s_value), "add",
//!        [Occ::new(1, s_value).into(), Occ::new(2, b_value).into()]);
//! g.call(pair, Occ::lhs(s_len), "succ", [Occ::new(1, s_len).into()]);
//! g.call(pair, Occ::new(1, s_scale), "succ", [Occ::lhs(s_scale).into()]);
//! g.copy(pair, Occ::new(2, b_scale), Occ::lhs(s_scale));
//!
//! let single = g.production("single", seq, &[bit]);
//! g.copy(single, Occ::lhs(s_value), Occ::new(1, b_value));
//! g.constant(single, Occ::lhs(s_len), Value::Int(1));
//! g.copy(single, Occ::new(1, b_scale), Occ::lhs(s_scale));
//!
//! let zero = g.production("zero", bit, &[]);
//! g.constant(zero, Occ::lhs(b_value), Value::Real(0.0));
//!
//! let one = g.production("one", bit, &[]);
//! g.call(one, Occ::lhs(b_value), "pow2", [Occ::lhs(b_scale).into()]);
//!
//! let grammar = g.finish()?;
//! assert_eq!(grammar.attr_count(), 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod deps;
mod error;
mod grammar;
mod ids;
pub mod intern;
mod tree;
mod value;

pub use builder::GrammarBuilder;
pub use deps::DepGraph;
pub use error::{GrammarError, TreeError};
pub use grammar::{
    Arg, AttrInfo, AttrKind, Grammar, LocalInfo, Phylum, Production, RuleBody, SemError, SemFn,
    SemRule,
};
pub use ids::{AttrId, FuncId, LocalId, NodeId, ONode, Occ, PhylumId, ProductionId};
pub use intern::{InternStats, Interner, MemoCache, MemoKey, SharedInterner};
pub use tree::{term_to_tree, AttrValues, LocalFrames, Node, Preorder, Tree, TreeBuilder};
pub use value::{Term, Value, ValueIdent};
